//! # amnesiac-flooding
//!
//! Facade crate for the reproduction of *"On Termination of a Flooding
//! Process"* (Hussak & Trehan, PODC 2019).
//!
//! This crate re-exports the workspace members so that examples and
//! integration tests can use a single dependency:
//!
//! * [`graph`] — the graph substrate ([`af_graph`]): compact undirected
//!   graphs, generators, BFS/eccentricity/bipartiteness/double-cover.
//! * [`engine`] — synchronous and adversarial-asynchronous message-passing
//!   simulators ([`af_engine`]), plus fault injection and non-termination
//!   certification.
//! * [`core`] — the paper's contribution ([`af_core`]): Amnesiac Flooding,
//!   the exact-time theory oracle, the k-memory ladder, spanning-tree
//!   extraction, arbitrary-configuration analysis, baselines and topology
//!   detection.
//! * [`analysis`] — the experiment harness ([`af_analysis`]), experiments
//!   E1–E17.
//!
//! The `amnesiac` command-line tool (crate `af-cli`) exposes the same
//! functionality over edge-list and graph6 files.
//!
//! # Quickstart
//!
//! ```
//! use amnesiac_flooding::core::AmnesiacFlooding;
//! use amnesiac_flooding::graph::generators;
//!
//! // Figure 3 of the paper: an even cycle C6 terminates in D = 3 rounds.
//! let g = generators::cycle(6);
//! let run = AmnesiacFlooding::single_source(&g, 0.into()).run();
//! assert!(run.terminated());
//! assert_eq!(run.termination_round(), Some(3));
//! ```

pub use af_analysis as analysis;
pub use af_core as core;
pub use af_engine as engine;
pub use af_graph as graph;
