//! Section 4 / Figure 5: the asynchronous adversary that keeps a triangle
//! flooding forever — with a machine-checked non-termination certificate.
//!
//! The adversary generalizes the paper's schedule: whenever two messages
//! converge on one node (which is what annihilates an amnesiac flood), it
//! holds all but one of them back. On any cyclic topology the wave then
//! circulates forever; the run revisits a configuration, and that lasso
//! *proves* non-termination. On trees, every schedule still terminates.
//!
//! ```text
//! cargo run --example async_adversary
//! ```

use amnesiac_flooding::core::{trace, AmnesiacFloodingProtocol};
use amnesiac_flooding::engine::adversary::{DeliverAll, PerHeadThrottle};
use amnesiac_flooding::engine::{certify, AsyncEngine, Certificate};
use amnesiac_flooding::graph::generators;

fn main() {
    // --- Watch the first ticks of the Figure 5 schedule. ----------------
    let g = generators::cycle(3);
    let mut engine = AsyncEngine::new(
        &g,
        AmnesiacFloodingProtocol,
        PerHeadThrottle,
        [1.into()], // the paper floods from b
    );
    println!("=== Figure 5: asynchronous AF on the triangle, source b ===");
    println!(
        "tick 0: {}",
        trace::render_configuration(&g, engine.in_flight())
    );
    for _ in 0..8 {
        engine.step().expect("deterministic adversary");
        println!(
            "tick {}: {}",
            engine.tick(),
            trace::render_configuration(&g, engine.in_flight())
        );
    }
    println!("(the flood never dies; configurations repeat)");

    // --- Certify it. -----------------------------------------------------
    let cert = certify(
        &g,
        AmnesiacFloodingProtocol,
        PerHeadThrottle,
        [1.into()],
        10_000,
    )
    .expect("deterministic adversary");
    match &cert {
        Certificate::NonTerminating(lasso) => println!(
            "\ncertificate: configuration at tick {} recurs at tick {} \
             (period {}) -> provably non-terminating",
            lasso.first_visit_tick(),
            lasso.repeat_tick(),
            lasso.period()
        ),
        other => panic!("expected a lasso on the triangle, got {other:?}"),
    }

    // --- The same graph under the synchronous schedule terminates. -------
    let sync = certify(&g, AmnesiacFloodingProtocol, DeliverAll, [1.into()], 10_000)
        .expect("deterministic adversary");
    println!("without delays: {sync:?} (Theorem 3.1 in action)");

    // --- Trees terminate under ANY schedule. ------------------------------
    let tree = generators::binary_tree(3);
    let cert = certify(
        &tree,
        AmnesiacFloodingProtocol,
        PerHeadThrottle,
        [0.into()],
        100_000,
    )
    .expect("deterministic adversary");
    println!("\nbinary tree under the same adversary: {cert:?}");
    assert!(matches!(cert, Certificate::Terminated { .. }));

    // --- Larger cycles lasso too. ----------------------------------------
    println!("\nlassos across cycle sizes:");
    for n in [3usize, 4, 5, 6, 9, 12] {
        let g = generators::cycle(n);
        let cert = certify(
            &g,
            AmnesiacFloodingProtocol,
            PerHeadThrottle,
            [0.into()],
            100_000,
        )
        .expect("deterministic adversary");
        match cert {
            Certificate::NonTerminating(l) => {
                println!(
                    "  C{n}: lasso (prefix {}, period {})",
                    l.first_visit_tick(),
                    l.period()
                );
            }
            Certificate::Terminated { last_active_tick } => {
                println!("  C{n}: terminated at tick {last_active_tick}");
            }
            Certificate::Unresolved { ticks_executed } => {
                println!("  C{n}: unresolved after {ticks_executed} ticks");
            }
        }
    }
}
