//! Fault injection: why the paper's "no messages are lost in transit"
//! assumption is load-bearing.
//!
//! Amnesiac flooding dies when waves collide (a node that receives from
//! all directions has nothing left to forward to). Dropping one of the
//! colliding messages revives the survivor — exactly what the Section-4
//! adversary achieves with delays — so message loss can push a flood far
//! past the fault-free `2D + 1` bound on any cyclic topology. Trees are
//! immune: a wave can never turn back without a cycle.
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use amnesiac_flooding::core::{theory, AmnesiacFloodingProtocol};
use amnesiac_flooding::engine::faults::{Crash, FaultySyncEngine};
use amnesiac_flooding::graph::generators;

fn main() {
    // --- Loss on a cyclic graph: the bound breaks. -----------------------
    let g = generators::grid(8, 8);
    let bound = theory::upper_bound(&g).expect("connected");
    println!("8x8 grid: fault-free flooding bound = {bound} rounds");
    println!("with 10% message loss (20 seeds):");
    let mut beyond = 0;
    let mut capped = 0;
    for seed in 0..20 {
        let mut e = FaultySyncEngine::new(&g, AmnesiacFloodingProtocol, [0.into()], 0.1, seed);
        match e.run(2000).termination_round() {
            Some(t) if t > bound => {
                beyond += 1;
                if beyond == 1 {
                    println!(
                        "  seed {seed}: terminated at round {t} — {}x the bound",
                        t / bound
                    );
                }
            }
            Some(_) => {}
            None => capped += 1,
        }
    }
    println!("  {beyond} seeds exceeded the fault-free bound; {capped} hit the 2000-round cap");
    println!("  (a dropped message splits colliding waves, like the §4 adversary)");

    // --- Trees shrug loss off. -------------------------------------------
    let tree = generators::binary_tree(5);
    println!("\ncomplete binary tree (63 nodes) under 30% loss (20 seeds):");
    let mut all_terminated = true;
    let mut worst = 0;
    for seed in 0..20 {
        let mut e = FaultySyncEngine::new(&tree, AmnesiacFloodingProtocol, [0.into()], 0.3, seed);
        match e.run(10_000).termination_round() {
            Some(t) => worst = worst.max(t),
            None => all_terminated = false,
        }
    }
    println!("  all terminated: {all_terminated}; worst round: {worst} (no cycle, no escape)");

    // --- Crash faults: coverage, not termination. -------------------------
    let g = generators::cycle(12);
    println!("\nC12 with node 1 crashed from round 1:");
    let mut e = FaultySyncEngine::new(&g, AmnesiacFloodingProtocol, [0.into()], 0.0, 0);
    e.schedule_crash(Crash {
        node: 1.into(),
        round: 1,
    });
    let out = e.run(1000);
    println!(
        "  terminated: {} after {:?} rounds; informed {} / 12 \
         (the message detours the long way around)",
        out.is_terminated(),
        out.termination_round(),
        e.informed_count()
    );
}
