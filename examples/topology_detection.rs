//! The application the paper suggests: using the flood itself to *detect*
//! whether the network is bipartite.
//!
//! A node that hears the message twice has witnessed an odd closed walk —
//! flooding doubles as a distributed non-bipartiteness test with zero
//! extra protocol state. This example runs both detectors (the local
//! double-receipt rule and the global timing rule) across a zoo of
//! topologies and checks them against the graph-algorithmic ground truth.
//!
//! ```text
//! cargo run --example topology_detection
//! ```

use amnesiac_flooding::core::detect::{detect_bipartiteness, detect_by_timing, TopologyVerdict};
use amnesiac_flooding::graph::{algo, generators, Graph};

fn main() {
    let zoo: Vec<(&str, Graph)> = vec![
        ("path(10)", generators::path(10)),
        ("cycle(12)", generators::cycle(12)),
        ("cycle(13)", generators::cycle(13)),
        ("complete(8)", generators::complete(8)),
        ("K(3,5)", generators::complete_bipartite(3, 5)),
        ("petersen", generators::petersen()),
        ("wheel(9)", generators::wheel(9)),
        ("grid(4,7)", generators::grid(4, 7)),
        ("hypercube(5)", generators::hypercube(5)),
        ("barbell(6)", generators::barbell(6)),
        ("random tree", generators::random_tree(40, 7)),
        ("sparse+cycles", generators::sparse_connected(40, 30, 7)),
    ];

    println!(
        "{:<16} {:>14} {:>16} {:>14}",
        "graph", "ground truth", "double-receipt", "timing rule"
    );
    let mut all_agree = true;
    for (name, g) in &zoo {
        let truth = algo::is_bipartite(g);
        let by_receipt = detect_bipartiteness(g, 0.into());
        let by_timing = detect_by_timing(g, 0.into()).expect("zoo graphs are connected");
        let fmt = |b: bool| if b { "bipartite" } else { "NON-bipartite" };
        println!(
            "{:<16} {:>14} {:>16} {:>14}",
            name,
            fmt(truth),
            fmt(by_receipt.is_bipartite()),
            fmt(by_timing.is_bipartite())
        );
        if let TopologyVerdict::NonBipartite { witness, rounds } = &by_receipt {
            println!(
                "  -> witness: node {witness} heard the message at rounds {} and {} \
                 (opposite parities = odd closed walk)",
                rounds.0, rounds.1
            );
        }
        all_agree &= truth == by_receipt.is_bipartite() && truth == by_timing.is_bipartite();
    }
    assert!(all_agree, "both detectors are exact on connected graphs");
    println!(
        "\nboth flooding-based detectors agreed with the ground truth on all {} graphs",
        zoo.len()
    );
}
