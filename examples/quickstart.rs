//! Quickstart: flood a few graphs, read off everything the paper talks
//! about.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use amnesiac_flooding::core::{flood, theory, AmnesiacFlooding};
use amnesiac_flooding::graph::{algo, generators};

fn main() {
    // --- 1. The paper's headline: amnesiac flooding terminates. ---------
    let g = generators::petersen();
    let run = flood(&g, 0.into());
    println!("Petersen graph, flood from node 0:");
    println!("  terminated: {}", run.terminated());
    println!("  termination round: {:?}", run.termination_round());
    println!("  messages delivered: {}", run.total_messages());

    // --- 2. Bipartite graphs finish in e(source) <= D rounds. -----------
    let g = generators::grid(4, 6);
    let source = 0.into();
    let run = flood(&g, source);
    let ecc = algo::eccentricity(&g, source).expect("grid is connected");
    println!("\n4x6 grid (bipartite), flood from a corner:");
    println!(
        "  termination round: {:?} (source eccentricity: {ecc})",
        run.termination_round()
    );
    println!("  diameter bound:    {:?}", algo::diameter(&g));

    // --- 3. Non-bipartite graphs pay more, but never beyond 2D + 1. -----
    let g = generators::cycle(9);
    let run = flood(&g, 0.into());
    let d = algo::diameter(&g).expect("cycle is connected");
    println!("\nodd cycle C9 (non-bipartite):");
    println!(
        "  termination round: {:?} = 2D + 1 with D = {d}",
        run.termination_round()
    );
    println!(
        "  every node heard the message {} time(s) at most",
        run.max_receive_count()
    );

    // --- 4. The theory oracle predicts runs without simulating. ---------
    let g = generators::barbell(6);
    let pred = theory::predict(&g, [0.into()]);
    let run = flood(&g, 0.into());
    println!("\nbarbell(6): oracle vs simulation:");
    println!(
        "  oracle says round {}, simulation says {:?}",
        pred.termination_round(),
        run.termination_round()
    );
    assert_eq!(Some(pred.termination_round()), run.termination_round());

    // --- 5. Multi-source floods work the same way. ----------------------
    let g = generators::cycle(12);
    let run = AmnesiacFlooding::multi_source(&g, [0.into(), 3.into()]).run();
    println!("\nC12 flooded from {{0, 3}} simultaneously:");
    println!("  termination round: {:?}", run.termination_round());
    println!("  round sets: {:?}", run.round_sets().len());
}
