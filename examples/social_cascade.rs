//! The introduction's motivating story: "the node behaves like an
//! aggressive social media (say, WhatsApp) user that has a compulsion to
//! forward every message but does not want to annoy those who have just
//! sent it the message it's forwarding."
//!
//! This example floods a synthetic social network (preferential
//! attachment — hubs and long tails) and reports what the theory promises
//! about such cascades: they die out on their own, nobody sees the message
//! more than twice, and the total traffic is bounded by twice the number
//! of relationships.
//!
//! ```text
//! cargo run --example social_cascade
//! ```

use amnesiac_flooding::analysis::Summary;
use amnesiac_flooding::core::{flood, theory};
use amnesiac_flooding::graph::{algo, generators};

fn main() {
    let n = 2_000;
    let g = generators::preferential_attachment(n, 3, 2026);
    println!(
        "synthetic social network: {} users, {} relationships",
        g.node_count(),
        g.edge_count()
    );
    println!("max degree (biggest hub): {}", g.max_degree());
    println!("bipartite: {}", algo::is_bipartite(&g));

    // The rumour starts at the biggest hub.
    let hub = g
        .nodes()
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty network");
    let run = flood(&g, hub);

    println!("\nrumour started by the biggest hub (node {hub}):");
    println!(
        "  cascade died after round {:?}",
        run.termination_round().expect("Theorem 3.1")
    );
    println!(
        "  bound from the paper: 2D + 1 = {}",
        theory::upper_bound(&g).expect("connected")
    );
    println!("  users reached: {} / {}", run.informed_count(), n);
    println!(
        "  total forwards: {} (2m = {})",
        run.total_messages(),
        2 * g.edge_count()
    );
    println!(
        "  max times any user saw the rumour: {}",
        run.max_receive_count()
    );

    let per_round = Summary::of(run.messages_per_round().iter().copied()).expect("non-empty");
    println!("  per-round traffic: {per_round}");

    // Everyone hears it, nobody is spammed: the amnesiac rule caps
    // per-user deliveries at 2 without any user remembering anything.
    assert!(run.max_receive_count() <= 2);
    assert_eq!(run.informed_count(), n);

    // Start it instead from a peripheral user: slower, same guarantees.
    let peripheral = g
        .nodes()
        .max_by_key(|&v| algo::bfs(&g, hub).distance(v).unwrap_or(0))
        .expect("non-empty network");
    let run2 = flood(&g, peripheral);
    println!("\nsame rumour from a peripheral user (node {peripheral}):");
    println!(
        "  cascade died after round {:?}",
        run2.termination_round().expect("Theorem 3.1")
    );
    println!("  users reached: {} / {}", run2.informed_count(), n);
}
