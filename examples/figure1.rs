//! Figure 1 of the paper: amnesiac flooding on the line graph a–b–c–d,
//! initiated at b, terminates in 2 rounds — *before* reaching-everything
//! time-bounds would suggest (the diameter is 3).

use amnesiac_flooding::core::AmnesiacFlooding;
use amnesiac_flooding::graph::generators;

fn main() {
    // Nodes 0..4 are the paper's a, b, c, d.
    let g = generators::path(4);
    let run = AmnesiacFlooding::single_source(&g, 1.into()).run();

    println!("Figure 1: flooding P4 = a-b-c-d from b");
    for round in 1..=run.termination_round().unwrap_or(0) {
        let receivers: Vec<String> = run
            .round_set(round)
            .iter()
            .map(|v| ((b'a' + v.index() as u8) as char).to_string())
            .collect();
        println!(
            "  round {round}: {} receive the message",
            receivers.join(", ")
        );
    }
    println!(
        "  terminated after {} rounds (diameter is {})",
        run.termination_round().unwrap(),
        3
    );
    assert_eq!(run.termination_round(), Some(2));
}
