//! Replicates the paper's figures as round-by-round traces.
//!
//! * Figure 1 — amnesiac flooding over a line network from node `b`,
//!   terminating in 2 rounds (less than the diameter, 3);
//! * Figure 2 — the triangle from `b`: both `a` and `c` send `M` to each
//!   other in round 2 and to `b` in round 3, terminating in `2D + 1` = 3;
//! * Figure 3 — the even cycle C6, terminating in `D` = 3 rounds;
//! * plus the per-node receive schedules, which is the raw content of the
//!   Lemma 2.1 "parallel BFS" claim.
//!
//! ```text
//! cargo run --example replicate_figures
//! ```

use amnesiac_flooding::core::{flood, trace};
use amnesiac_flooding::graph::generators;

fn main() {
    // Figure 1: line a-b-c-d, source b.
    let g = generators::path(4);
    let run = flood(&g, 1.into());
    println!("=== Figure 1: line a-b-c-d, flooding from b ===");
    print!("{}", trace::render_run(&g, &run));
    println!("receive schedule:");
    print!("{}", trace::render_receipts(&g, &run));
    assert_eq!(run.termination_round(), Some(2), "Figure 1 shows 2 rounds");

    // Figure 2: triangle a-b-c, source b.
    let g = generators::cycle(3);
    let run = flood(&g, 1.into());
    println!("\n=== Figure 2: triangle (odd cycle / clique), flooding from b ===");
    print!("{}", trace::render_run(&g, &run));
    println!("receive schedule:");
    print!("{}", trace::render_receipts(&g, &run));
    assert_eq!(
        run.termination_round(),
        Some(3),
        "Figure 2 shows 2D+1 = 3 rounds"
    );

    // Figure 3: even cycle C6.
    let g = generators::cycle(6);
    let run = flood(&g, 0.into());
    println!("\n=== Figure 3: even cycle C6 (bipartite) ===");
    print!("{}", trace::render_run(&g, &run));
    println!("receive schedule:");
    print!("{}", trace::render_receipts(&g, &run));
    assert_eq!(
        run.termination_round(),
        Some(3),
        "Figure 3 shows D = 3 rounds"
    );

    println!("\nall three figures reproduced exactly");
}
