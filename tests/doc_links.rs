//! Documentation link check, delegated to `af-audit`'s consistency layer
//! (`af_audit::docs`): every relative Markdown link in the top-level docs
//! must point at a file that exists, and every `#anchor` fragment at a
//! heading that exists in the target file. The same pass runs inside the
//! full `af-audit` binary and the workspace self-audit test; keeping this
//! thin delegate preserves the historical tier-1 entry point (CI's docs
//! job invokes this test by name).

use std::fs;
use std::path::PathBuf;

/// The repository root (this integration test runs with the workspace
/// root as its working directory via CARGO_MANIFEST_DIR).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn relative_markdown_links_resolve() {
    let findings = af_audit::docs::check_links(&repo_root());
    assert!(
        findings.is_empty(),
        "broken doc links:\n{}",
        findings
            .iter()
            .map(af_audit::Finding::to_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn readme_points_at_architecture() {
    let readme = fs::read_to_string(repo_root().join("README.md")).unwrap();
    assert!(
        readme.contains("](ARCHITECTURE.md"),
        "README must link the architecture doc"
    );
    let arch = fs::read_to_string(repo_root().join("ARCHITECTURE.md")).unwrap();
    for needle in [
        "af-graph",
        "FrontierFlooding",
        "ShardedFlooding",
        "FastFlooding",
    ] {
        assert!(arch.contains(needle), "ARCHITECTURE.md lost '{needle}'");
    }
}

#[test]
fn slugs_follow_github_rules() {
    use af_audit::docs::slug;
    assert_eq!(
        slug("## The three engines, and when each wins"),
        "the-three-engines-and-when-each-wins"
    );
    assert_eq!(slug("# Quickstart"), "quickstart");
    assert_eq!(
        slug("### The `BENCH_flooding.json` schema (version 3)"),
        "the-bench_floodingjson-schema-version-3"
    );
}
