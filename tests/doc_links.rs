//! Documentation link check: every relative Markdown link in the
//! repository's top-level docs (README.md, ARCHITECTURE.md, PAPER.md, …)
//! must point at a file that exists, and every `#anchor` fragment at a
//! heading that exists in the target file. This is what keeps the
//! README ⇄ ARCHITECTURE.md cross-references from rotting; CI runs it in
//! the dedicated docs job.

use std::fs;
use std::path::{Path, PathBuf};

/// The repository root (this integration test runs with the workspace
/// root as its working directory via CARGO_MANIFEST_DIR).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Top-level Markdown files under link checking (vendor/README.md rides
/// along because the root README points at it).
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files: Vec<PathBuf> = fs::read_dir(&root)
        .expect("repo root readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    files.push(root.join("vendor/README.md"));
    files.sort();
    files.retain(|p| p.is_file());
    assert!(files.len() >= 5, "expected the top-level docs: {files:?}");
    files
}

/// Extracts `[label](target)` links outside fenced code blocks.
fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            links.push(tail[..close].trim().to_string());
            rest = &tail[close + 1..];
        }
    }
    links
}

/// GitHub-style anchor slug of a Markdown heading.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors of a Markdown file (fenced blocks excluded).
fn anchors(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            out.push(slug(line));
        }
    }
    out
}

#[test]
fn relative_markdown_links_resolve() {
    let mut failures = Vec::new();
    for file in doc_files() {
        let text = fs::read_to_string(&file).expect("doc file readable");
        let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
        for link in extract_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.is_empty()
            {
                continue;
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                failures.push(format!("{}: broken link '{link}'", file.display()));
                continue;
            }
            if let Some(a) = anchor {
                let target_text = if path_part.is_empty() {
                    text.clone()
                } else {
                    fs::read_to_string(&target).unwrap_or_default()
                };
                if target.extension().is_some_and(|e| e == "md")
                    && !anchors(&target_text).contains(&a)
                {
                    failures.push(format!(
                        "{}: anchor '#{a}' not found in {}",
                        file.display(),
                        target.display()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "broken doc links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn readme_points_at_architecture() {
    let readme = fs::read_to_string(repo_root().join("README.md")).unwrap();
    assert!(
        readme.contains("](ARCHITECTURE.md"),
        "README must link the architecture doc"
    );
    let arch = fs::read_to_string(repo_root().join("ARCHITECTURE.md")).unwrap();
    for needle in [
        "af-graph",
        "FrontierFlooding",
        "ShardedFlooding",
        "FastFlooding",
    ] {
        assert!(arch.contains(needle), "ARCHITECTURE.md lost '{needle}'");
    }
}

#[test]
fn slugs_follow_github_rules() {
    assert_eq!(
        slug("## The three engines, and when each wins"),
        "the-three-engines-and-when-each-wins"
    );
    assert_eq!(slug("# Quickstart"), "quickstart");
    assert_eq!(
        slug("### The `BENCH_flooding.json` schema (version 3)"),
        "the-bench_floodingjson-schema-version-3"
    );
}
