//! Property tests pinning the dynamic-graph engine's zero-churn anchor:
//! under an **empty** churn schedule, [`DynamicFlooding`] must be
//! **bit-identical** to [`FrontierFlooding`] on the static graph —
//! round-sets, receive rounds, per-round and total message counts, for
//! random connected graphs and the source-set ladder `{1, 2, 3, ⌈√n⌉}`.
//! Plus determinism and sanity properties for nonzero churn, where
//! termination is a measurement rather than a theorem.

use amnesiac_flooding::core::{AmnesiacFlooding, DynamicFlooding, FloodEngine, FrontierFlooding};
use amnesiac_flooding::graph::dynamic::{ChurnKind, ChurnSchedule, ChurnSpec};
use amnesiac_flooding::graph::{generators, Graph, NodeId};
use proptest::prelude::*;

mod common;
use common::source_set_for;

/// Lock-step bit-identity: in-flight arc sets before every round, step
/// results, per-round message counts, totals, and per-node receipt logs.
fn assert_bit_identical(g: &Graph, sources: &[NodeId]) -> Result<(), TestCaseError> {
    let mut dynamic = DynamicFlooding::new(g, sources.iter().copied(), ChurnSchedule::empty());
    let mut frontier = FrontierFlooding::new(g, sources.iter().copied());
    loop {
        prop_assert_eq!(
            dynamic.in_flight(),
            frontier.in_flight(),
            "in-flight arcs at round {}",
            dynamic.round()
        );
        let a = dynamic.step();
        let b = frontier.step();
        prop_assert_eq!(a, b);
        if a.is_none() {
            break;
        }
        prop_assert!(dynamic.round() <= 2 * g.node_count() as u32 + 2, "runaway");
    }
    prop_assert_eq!(dynamic.total_messages(), frontier.total_messages());
    prop_assert_eq!(dynamic.messages_per_round(), frontier.messages_per_round());
    prop_assert_eq!(dynamic.messages_lost(), 0);
    prop_assert_eq!(dynamic.informed_count(), frontier.informed_count());
    for v in g.nodes() {
        prop_assert_eq!(dynamic.receipts(v), frontier.receipts(v), "node {}", v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The acceptance anchor: a dynamic flood under an empty schedule is
    /// bit-identical to the static frontier engine, across random
    /// connected graphs and the multi-source ladder.
    #[test]
    fn empty_schedule_is_bit_identical_to_frontier(
        (n, extra_frac, seed) in (2usize..=192, 0usize..150, any::<u64>()),
        selector in 0usize..4,
        set_seed in any::<u64>(),
    ) {
        let g = generators::sparse_connected(n, n * extra_frac / 100, seed);
        let sources = source_set_for(g.node_count(), selector, set_seed);
        assert_bit_identical(&g, &sources)?;
    }

    /// The same anchor through the driver surface: a `FloodEngine::Dynamic`
    /// run with the zero-rate spec produces the identical `FloodingRun`
    /// record (round-sets, receive rounds, message counts) as the default
    /// frontier engine.
    #[test]
    fn zero_rate_spec_reproduces_the_frontier_record(
        (n, seed) in (2usize..=128, any::<u64>()),
        selector in 0usize..4,
        set_seed in any::<u64>(),
    ) {
        let g = generators::sparse_connected(n, n / 2, seed);
        let sources = source_set_for(g.node_count(), selector, set_seed);
        let frontier = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let dynamic = AmnesiacFlooding::multi_source(&g, sources.iter().copied())
            .with_engine(FloodEngine::Dynamic { churn: ChurnSpec::NONE })
            .run();
        prop_assert_eq!(&frontier, &dynamic);
        prop_assert_eq!(frontier.round_sets(), dynamic.round_sets());
    }

    /// Churned floods are deterministic in the spec and internally
    /// consistent: identical reruns, receipt rounds within the executed
    /// range, message conservation per round, and a node count that only
    /// ever grows.
    #[test]
    fn churned_floods_are_deterministic_and_consistent(
        (n, seed) in (4usize..=96, any::<u64>()),
        rate_pm in 1u32..=250,
        kind_sel in 0usize..3,
        churn_seed in any::<u64>(),
    ) {
        let g = generators::sparse_connected(n, n / 2, seed);
        let kind = [ChurnKind::Edge, ChurnKind::Nodes, ChurnKind::Mix][kind_sel];
        let churn = ChurnSpec { kind, rate_pm, seed: churn_seed };
        let cap = 2 * g.node_count() as u32 + 2;
        let schedule = ChurnSchedule::generate(&g, churn, cap);

        let mut a = DynamicFlooding::new(&g, [NodeId::new(0)], schedule.clone());
        let outcome_a = a.run(cap);
        let mut b = DynamicFlooding::new(&g, [NodeId::new(0)], schedule);
        let outcome_b = b.run(cap);
        prop_assert_eq!(outcome_a, outcome_b);
        prop_assert_eq!(a.total_messages(), b.total_messages());
        prop_assert_eq!(a.messages_lost(), b.messages_lost());

        // Internal consistency.
        let rounds = outcome_a.rounds_executed();
        prop_assert_eq!(a.messages_per_round().len(), rounds as usize);
        let sum: u64 = a.messages_per_round().iter().sum();
        prop_assert_eq!(sum, a.total_messages());
        prop_assert!(a.node_count() >= g.node_count(), "ids never shrink");
        for v in (0..a.node_count()).map(NodeId::new) {
            for &r in a.receipts(v) {
                prop_assert!(r >= 1 && r <= rounds, "{} received at {}", v, r);
            }
        }
    }
}

#[test]
fn reset_between_churned_floods_is_reproducible() {
    // The batch contract: reset restores the pristine base graph, so the
    // same schedule replays to the same record.
    let g = generators::sparse_connected(48, 24, 11);
    let churn = ChurnSpec {
        kind: ChurnKind::Mix,
        rate_pm: 120,
        seed: 3,
    };
    let cap = 2 * g.node_count() as u32 + 2;
    let schedule = ChurnSchedule::generate(&g, churn, cap);
    let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], schedule);
    let first = (sim.run(cap), sim.total_messages(), sim.messages_lost());
    sim.reset([NodeId::new(0)]);
    let second = (sim.run(cap), sim.total_messages(), sim.messages_lost());
    assert_eq!(first, second);
}
