//! Cross-crate integration tests: every headline claim of the paper,
//! asserted end-to-end through the facade crate.

use amnesiac_flooding::analysis::experiments;
use amnesiac_flooding::core::{flood, theory, AmnesiacFlooding, AmnesiacFloodingProtocol};
use amnesiac_flooding::engine::adversary::{DeliverAll, PerHeadThrottle};
use amnesiac_flooding::engine::{certify, Certificate, SyncEngine};
use amnesiac_flooding::graph::{algo, generators};

// ---------------------------------------------------------------- figures

#[test]
fn figure1_line_from_b_two_rounds() {
    let g = generators::path(4);
    let run = flood(&g, 1.into());
    assert_eq!(run.termination_round(), Some(2));
    // "terminates at the ends of the graph": the last receivers are leaves.
    assert_eq!(run.round_set(2), &[3.into()]);
    // "takes only 2 rounds, which is less than the diameter" (3).
    assert!(2 < algo::diameter(&g).unwrap());
}

#[test]
fn figure2_triangle_three_rounds() {
    let g = generators::cycle(3);
    let run = flood(&g, 1.into());
    // "termination takes 2D + 1 time (D = diameter = 1)".
    assert_eq!(run.termination_round(), Some(3));
    // "Both node a and c send M to each other in round 2 and to b in round 3."
    assert_eq!(run.round_set(2), &[0.into(), 2.into()]);
    assert_eq!(run.round_set(3), &[1.into()]);
}

#[test]
fn figure3_even_cycle_diameter_rounds() {
    let g = generators::cycle(6);
    for v in g.nodes() {
        let run = flood(&g, v);
        assert_eq!(run.termination_round(), Some(3), "from {v}");
    }
}

// ---------------------------------------------------------- lemma 2.1 etc

#[test]
fn lemma_2_1_bipartite_termination_equals_eccentricity() {
    for g in [
        generators::path(9),
        generators::cycle(10),
        generators::grid(4, 7),
        generators::hypercube(5),
        generators::complete_bipartite(4, 9),
        generators::binary_tree(4),
        generators::random_tree(60, 5),
    ] {
        for v in g.nodes() {
            let run = flood(&g, v);
            assert_eq!(
                run.termination_round(),
                algo::eccentricity(&g, v),
                "{g} from {v}"
            );
        }
    }
}

#[test]
fn corollary_2_2_bipartite_within_diameter() {
    let g = generators::grid(5, 5);
    let d = algo::diameter(&g).unwrap();
    for v in g.nodes() {
        assert!(flood(&g, v).termination_round().unwrap() <= d);
    }
}

#[test]
fn lemma_2_1_flood_is_parallel_bfs() {
    // "Nodes at a distance i from a receive the message at the same time in
    // round i."
    let g = generators::hypercube(4);
    let source = 3.into();
    let run = flood(&g, source);
    let bfs = algo::bfs(&g, source);
    for v in g.nodes() {
        if v == source {
            assert!(run.receive_rounds(v).is_empty());
        } else {
            assert_eq!(run.receive_rounds(v), &[bfs.distance(v).unwrap()][..]);
        }
    }
}

// --------------------------------------------------------- theorem 3.1/3.3

#[test]
fn theorem_3_1_termination_on_assorted_graphs() {
    for g in [
        generators::petersen(),
        generators::wheel(11),
        generators::barbell(7),
        generators::lollipop(5, 9),
        generators::torus(3, 7),
        generators::complete(20),
        generators::sparse_connected(200, 150, 3),
        generators::preferential_attachment(300, 2, 3),
    ] {
        let run = flood(&g, 0.into());
        assert!(run.terminated(), "{g}");
    }
}

#[test]
fn theorem_3_3_non_bipartite_bound_two_d_plus_one() {
    for g in [
        generators::cycle(11),
        generators::petersen(),
        generators::wheel(8),
        generators::complete(9),
        generators::barbell(5),
    ] {
        let d = algo::diameter(&g).unwrap();
        for v in g.nodes() {
            let t = flood(&g, v).termination_round().unwrap();
            assert!(t <= 2 * d + 1, "{g} from {v}: {t} > {}", 2 * d + 1);
            assert!(t > algo::eccentricity(&g, v).unwrap(), "{g} from {v}");
        }
    }
}

#[test]
fn theorem_3_1_proof_invariant_re_is_empty() {
    use amnesiac_flooding::core::roundsets;
    for g in [
        generators::petersen(),
        generators::complete(8),
        generators::cycle(9),
        generators::sparse_connected(50, 40, 11),
    ] {
        for v in g.nodes().take(10) {
            let run = flood(&g, v);
            let analysis = roundsets::analyze(&run);
            assert!(analysis.even_sequences_empty(), "{g} from {v}");
            assert!(analysis.max_occurrences() <= 2, "{g} from {v}");
        }
    }
}

// ------------------------------------------------------------- section 4

#[test]
fn section_4_adversary_forces_non_termination_on_triangle() {
    let g = generators::cycle(3);
    let cert = certify(
        &g,
        AmnesiacFloodingProtocol,
        PerHeadThrottle,
        [1.into()],
        10_000,
    )
    .expect("deterministic adversary");
    let lasso = cert.lasso().expect("Figure 5: non-terminating");
    assert!(lasso.period() > 0);
}

#[test]
fn section_4_without_delays_everything_terminates() {
    for g in [
        generators::cycle(3),
        generators::petersen(),
        generators::complete(6),
    ] {
        let cert = certify(&g, AmnesiacFloodingProtocol, DeliverAll, [0.into()], 10_000)
            .expect("deterministic adversary");
        assert!(matches!(cert, Certificate::Terminated { .. }), "{g}");
    }
}

// ----------------------------------------------------- engine equivalence

#[test]
fn generic_engine_and_facade_agree() {
    let g = generators::petersen();
    let mut engine = SyncEngine::new(&g, AmnesiacFloodingProtocol, [0.into()]);
    let outcome = engine.run(1000);
    let run = flood(&g, 0.into());
    assert_eq!(outcome.termination_round(), run.termination_round());
    assert_eq!(engine.total_messages(), run.total_messages());
    for v in g.nodes() {
        assert_eq!(engine.receipts(v), run.receive_rounds(v));
    }
}

// ------------------------------------------------------------ experiments

#[test]
fn experiment_tables_regenerate_with_correct_shapes() {
    // E1-E3: measured == paper.
    let figures = experiments::figures::run();
    for row in figures.rows() {
        assert_eq!(row[6], row[7]);
    }
    // E8: triangle row certified non-terminating under the throttle.
    let async_table = experiments::asynchronous::run();
    assert!(async_table.rows()[0][2].contains("NON-TERMINATING"));
    // E10: detection exact.
    let detection = experiments::detection::run();
    for row in detection.rows() {
        assert_eq!(row[1], row[2]);
    }
}

#[test]
fn oracle_predicts_multi_source_runs() {
    let g = generators::torus(4, 6);
    let sources = [0.into(), 7.into(), 13.into()];
    let run = AmnesiacFlooding::multi_source(&g, sources).run();
    let pred = theory::predict(&g, sources);
    assert_eq!(run.termination_round(), Some(pred.termination_round()));
    for v in g.nodes() {
        assert_eq!(run.receive_rounds(v), pred.receive_rounds(v));
    }
}
