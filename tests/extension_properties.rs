//! Property tests for the extension modules: arbitrary configurations,
//! spanning trees, the k-memory ladder, fault injection, and the
//! asynchronous adversaries.

use amnesiac_flooding::core::arbitrary::{classify_configuration, SyncFate};
use amnesiac_flooding::core::spanning::spanning_tree;
use amnesiac_flooding::core::{AmnesiacFloodingProtocol, KMemoryFlooding};
use amnesiac_flooding::engine::adversary::PerHeadThrottle;
use amnesiac_flooding::engine::faults::FaultySyncEngine;
use amnesiac_flooding::engine::{certify, Certificate, SyncEngine};
use amnesiac_flooding::graph::{algo, generators, ArcId, Graph, NodeId};
use proptest::prelude::*;

prop_compose! {
    fn connected_graph()(
        (n, extra, seed) in (2usize..32, 0usize..40, any::<u64>())
    ) -> Graph {
        generators::sparse_connected(n, extra, seed)
    }
}

prop_compose! {
    fn tree_graph()((n, seed) in (2usize..40, any::<u64>())) -> Graph {
        generators::random_tree(n, seed)
    }
}

prop_compose! {
    fn graph_and_source()(g in connected_graph(), raw in any::<u32>()) -> (Graph, NodeId) {
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary-configuration classification always resolves, and the
    /// node-initiated configurations always land in the terminating class
    /// (Theorem 3.1 restated through the classifier).
    #[test]
    fn node_initiated_configurations_always_terminate((g, s) in graph_and_source()) {
        let arcs: Vec<ArcId> = g
            .neighbors(s)
            .iter()
            .map(|&w| g.arc_between(s, w).expect("neighbour"))
            .collect();
        let fate = classify_configuration(&g, arcs);
        prop_assert!(fate.terminates(), "{g} from {s}: {fate:?}");
    }

    /// On trees, EVERY random arc configuration terminates.
    #[test]
    fn tree_configurations_always_terminate(g in tree_graph(), mask in any::<u64>()) {
        let arcs = g.arcs().filter(|a| mask >> (a.index() % 64) & 1 == 1);
        let fate = classify_configuration(&g, arcs);
        prop_assert!(fate.terminates(), "{g}: {fate:?}");
    }

    /// A lone arc on any cycle graph orbits forever with period n.
    #[test]
    fn lone_arc_on_cycle_orbits(n in 3usize..40, start in any::<u32>()) {
        let g = generators::cycle(n);
        let u = NodeId::new(start as usize % n);
        let v = NodeId::new((start as usize + 1) % n);
        let arc = g.arc_between(u, v).expect("cycle edge");
        match classify_configuration(&g, [arc]) {
            SyncFate::Cycles { period, .. } => prop_assert_eq!(period as usize, n),
            other => return Err(TestCaseError::fail(format!("expected orbit, got {other:?}"))),
        }
    }

    /// The flooding-extracted spanning tree is a BFS tree on every
    /// connected instance.
    #[test]
    fn spanning_tree_is_always_bfs((g, s) in graph_and_source()) {
        let tree = spanning_tree(&g, s);
        prop_assert!(tree.is_bfs_tree_of(&g));
        prop_assert_eq!(tree.len(), g.node_count());
        // Path lengths equal BFS distances.
        let bfs = algo::bfs(&g, s);
        for v in g.nodes() {
            let path = tree.path_to_root(v).expect("connected");
            prop_assert_eq!(path.len() as u32 - 1, bfs.distance(v).expect("connected"));
        }
    }

    /// k = 1 memory flooding is amnesiac flooding, run for run.
    #[test]
    fn k1_is_af((g, s) in graph_and_source()) {
        let mut af = SyncEngine::new(&g, AmnesiacFloodingProtocol, [s]);
        let mut k1 = SyncEngine::new(&g, KMemoryFlooding::new(1), [s]);
        let (a, b) = (af.run(10_000), k1.run(10_000));
        prop_assert_eq!(a, b);
        prop_assert_eq!(af.total_messages(), k1.total_messages());
    }

    /// Memory is monotone: messages never increase with k (on terminating
    /// windows k >= 1).
    #[test]
    fn memory_ladder_is_monotone((g, s) in graph_and_source()) {
        let mut prev = u64::MAX;
        for k in 1..=4usize {
            let mut e = SyncEngine::new(&g, KMemoryFlooding::new(k), [s]);
            e.set_trace_enabled(false);
            let out = e.run(10_000);
            prop_assert!(out.is_terminated(), "{g} k={k}");
            prop_assert!(e.total_messages() <= prev, "{g} k={k}");
            prev = e.total_messages();
        }
    }

    /// Lossy floods on trees terminate for every rate and seed, and inform
    /// no more nodes than the lossless run.
    #[test]
    fn lossy_tree_floods_terminate(
        g in tree_graph(),
        rate in 0.0f64..=1.0,
        seed in any::<u64>()
    ) {
        let mut e = FaultySyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(0)], rate, seed);
        let out = e.run(100_000);
        prop_assert!(out.is_terminated());
        prop_assert!(e.informed_count() <= g.node_count());
        if rate == 0.0 {
            prop_assert_eq!(e.informed_count(), g.node_count());
        }
    }

    /// Crashing every node at round 1 silences the network after the first
    /// exchange, whatever the topology.
    #[test]
    fn total_crash_silences_everything((g, s) in graph_and_source()) {
        use amnesiac_flooding::engine::faults::Crash;
        let mut e = FaultySyncEngine::new(&g, AmnesiacFloodingProtocol, [s], 0.0, 0);
        for v in g.nodes() {
            e.schedule_crash(Crash { node: v, round: 1 });
        }
        let out = e.run(1000);
        prop_assert!(out.is_terminated());
        prop_assert_eq!(e.delivered_messages(), 0);
    }

    /// The throttle adversary certifies non-termination on every cycle
    /// C_n — the generalized Figure 5.
    #[test]
    fn throttle_lassoes_every_cycle(n in 3usize..24, start in any::<u32>()) {
        let g = generators::cycle(n);
        let s = NodeId::new(start as usize % n);
        let cert = certify(&g, AmnesiacFloodingProtocol, PerHeadThrottle, [s], 1_000_000)
            .expect("deterministic adversary");
        prop_assert!(cert.is_non_terminating(), "C{n} from {s}: {cert:?}");
    }

    /// The same adversary cannot keep a random tree alive.
    #[test]
    fn throttle_cannot_sustain_trees(g in tree_graph(), raw in any::<u32>()) {
        let s = NodeId::new(raw as usize % g.node_count());
        let cert = certify(&g, AmnesiacFloodingProtocol, PerHeadThrottle, [s], 1_000_000)
            .expect("deterministic adversary");
        prop_assert!(matches!(cert, Certificate::Terminated { .. }), "{g}: {cert:?}");
    }
}

#[test]
fn classification_is_deterministic() {
    let g = generators::petersen();
    let arcs: Vec<ArcId> = g.arcs().step_by(3).collect();
    let a = classify_configuration(&g, arcs.iter().copied());
    let b = classify_configuration(&g, arcs.iter().copied());
    assert_eq!(a, b);
}

#[test]
fn spanning_tree_via_cli_formats_roundtrip() {
    // The tree survives a graph6 round-trip of its host graph.
    let g = generators::grid(4, 4);
    let text = amnesiac_flooding::graph::io::to_graph6(&g);
    let back = amnesiac_flooding::graph::io::from_graph6(&text).unwrap();
    let t1 = spanning_tree(&g, 0.into());
    let t2 = spanning_tree(&back, 0.into());
    assert_eq!(t1, t2);
}
