//! Property tests pinning the frontier-sparse engine to the theory oracle:
//! on random bipartite and non-bipartite graphs up to n = 512, the
//! per-round received-sets produced by [`FrontierFlooding`] must equal the
//! round-sets predicted by `theory::predict` via the bipartite double
//! cover — two implementations that share no flooding code.

use amnesiac_flooding::core::{theory, FloodBatch, FrontierFlooding};
use amnesiac_flooding::graph::{algo, generators, Graph, NodeId};
use proptest::prelude::*;

mod common;
use common::source_set_for;

/// Runs the frontier engine to termination and returns its round-sets
/// `R_1..=R_T` as sorted node lists (index 0 = round 1).
fn frontier_round_sets(g: &Graph, sources: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut sim = FrontierFlooding::new(g, sources.iter().copied());
    let outcome = sim.run(2 * g.node_count() as u32 + 2);
    assert!(outcome.is_terminated(), "Theorem 3.1: floods terminate");
    let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); outcome.rounds_executed() as usize];
    for v in g.nodes() {
        for &r in sim.receipts(v) {
            sets[r as usize - 1].push(v);
        }
    }
    // Node-order iteration already yields each set sorted.
    sets
}

/// The oracle's round-sets over the same convention.
fn predicted_round_sets(g: &Graph, sources: &[NodeId]) -> Vec<Vec<NodeId>> {
    let pred = theory::predict(g, sources.iter().copied());
    let t = pred.termination_round();
    let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); t as usize];
    for v in g.nodes() {
        for &r in pred.receive_rounds(v) {
            sets[r as usize - 1].push(v);
        }
    }
    sets
}

fn check_round_sets(g: &Graph, sources: &[NodeId]) -> Result<(), TestCaseError> {
    let simulated = frontier_round_sets(g, sources);
    let predicted = predicted_round_sets(g, sources);
    prop_assert_eq!(simulated, predicted, "{} from {:?}", g, sources);
    Ok(())
}

prop_compose! {
    /// Random non-bipartite-leaning connected graphs up to n = 512.
    fn connected_graph_and_source()(
        (n, extra_frac, seed) in (2usize..=512, 0usize..200, any::<u64>()),
        raw in any::<u32>()
    ) -> (Graph, NodeId) {
        let extra = n * extra_frac / 100;
        let g = generators::sparse_connected(n, extra, seed);
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

prop_compose! {
    /// Random bipartite graphs up to n = 512 (not necessarily connected;
    /// the correspondence must hold regardless).
    fn bipartite_graph_and_source()(
        (a, b, seed) in (1usize..=256, 1usize..=256, any::<u64>()),
        p in 0.002f64..0.2,
        raw in any::<u32>()
    ) -> (Graph, NodeId) {
        let g = generators::random_bipartite(a, b, p, seed);
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Frontier round-sets == oracle round-sets on (mostly non-bipartite)
    /// connected graphs.
    #[test]
    fn frontier_matches_oracle_on_random_graphs((g, s) in connected_graph_and_source()) {
        check_round_sets(&g, &[s])?;
    }

    /// The same on genuinely bipartite graphs, where Lemma 2.1 additionally
    /// forces every reached node to receive exactly once.
    #[test]
    fn frontier_matches_oracle_on_bipartite_graphs((g, s) in bipartite_graph_and_source()) {
        prop_assume!(algo::is_bipartite(&g));
        check_round_sets(&g, &[s])?;
        let mut sim = FrontierFlooding::new(&g, [s]);
        sim.run(2 * g.node_count() as u32 + 2);
        for v in g.nodes() {
            prop_assert!(sim.receipts(v).len() <= 1, "bipartite receive-once at {v}");
        }
    }

    /// Multi-source floods agree too (the oracle generalizes per-source).
    #[test]
    fn frontier_matches_oracle_multi_source(
        (g, s) in connected_graph_and_source(),
        raw2 in any::<u32>()
    ) {
        let s2 = NodeId::new(raw2 as usize % g.node_count());
        check_round_sets(&g, &[s, s2])?;
    }

    /// The whole source-set size ladder `|S| ∈ {1, 2, 3, ⌈√n⌉}`: the
    /// frontier engine reproduces the multi-source oracle's round-sets for
    /// every size class.
    #[test]
    fn frontier_matches_oracle_on_source_set_ladder(
        (g, _) in connected_graph_and_source(),
        selector in 0usize..4,
        set_seed in any::<u64>()
    ) {
        let sources = source_set_for(g.node_count(), selector, set_seed);
        check_round_sets(&g, &sources)?;
    }

    /// The batched runner reports exactly what the oracle predicts, source
    /// after source — allocation reuse must never leak state between
    /// floods.
    #[test]
    fn flood_batch_matches_oracle_across_sources((g, _) in connected_graph_and_source()) {
        let mut batch = FloodBatch::new(&g);
        let step = (g.node_count() / 8).max(1);
        for s in g.nodes().step_by(step) {
            let stats = batch.run_from([s]);
            let pred = theory::predict(&g, [s]);
            prop_assert_eq!(stats.termination_round(), Some(pred.termination_round()));
            prop_assert_eq!(stats.total_messages(), pred.total_messages());
        }
    }

    /// One batch runner fed floods of *mixed* source-set sizes (√n-sized
    /// sets interleaved with singletons) still matches the oracle flood
    /// for flood: `reset` must fully erase larger previous seeds.
    #[test]
    fn flood_batch_matches_oracle_across_mixed_set_sizes(
        (g, _) in connected_graph_and_source(),
        set_seed in any::<u64>()
    ) {
        let mut batch = FloodBatch::new(&g);
        for (i, selector) in [3usize, 0, 2, 1, 3, 0].into_iter().enumerate() {
            let sources = source_set_for(g.node_count(), selector, set_seed ^ i as u64);
            let stats = batch.run_from(sources.iter().copied());
            let pred = theory::predict(&g, sources.iter().copied());
            prop_assert_eq!(
                stats.termination_round(),
                Some(pred.termination_round()),
                "flood {} (|S| = {})",
                i,
                sources.len()
            );
            prop_assert_eq!(stats.total_messages(), pred.total_messages());
        }
    }
}
