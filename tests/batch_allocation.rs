//! Regression test for the batched flood runner's allocation contract:
//! after a warm-up pass, [`FloodBatch`] must execute further floods —
//! *including floods whose source-set sizes differ from each other and
//! from the warm-up's* — without touching the global allocator. This is
//! the property that makes per-flood cost the intrinsic `O(messages)`
//! work in the throughput benchmark.
//!
//! The test installs a counting `#[global_allocator]` (this file is its
//! own test binary, so the hook is invisible to every other suite) and
//! asserts the allocation counter does not move across the second pass.

use amnesiac_flooding::core::obs::{NdjsonTraceWriter, NoopProbe, SharedProbe};
use amnesiac_flooding::core::{FloodBatch, FloodEngine, FloodStats};
use amnesiac_flooding::graph::{generators, NodeId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

mod common;
use common::source_set_for;

/// System allocator wrapper counting every `alloc`/`realloc` call.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_flood_batch_is_allocation_free_across_mixed_set_sizes() {
    let g = generators::sparse_connected(600, 900, 42);

    // Mixed source-set sizes off the shared ladder: sqrt(n)-sized sets
    // (selector 3) interleaved with singletons, triples, and pairs.
    let source_sets: Vec<Vec<NodeId>> = [3usize, 0, 2, 3, 1, 0, 3]
        .into_iter()
        .enumerate()
        .map(|(i, selector)| source_set_for(g.node_count(), selector, 42 ^ i as u64))
        .collect();

    let mut batch = FloodBatch::new(&g);

    // Pass 1 (warm-up): grows every internal buffer to its high-water
    // mark and records the expected per-flood results.
    let mut expected = Vec::with_capacity(source_sets.len());
    for set in &source_sets {
        expected.push(batch.run_from(set.iter().copied()));
    }

    // Pass 2: identical floods, zero allocator traffic allowed.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut mismatches = 0usize;
    for (set, want) in source_sets.iter().zip(&expected) {
        let got = batch.run_from(set.iter().copied());
        if got != *want {
            mismatches += 1;
        }
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert_eq!(mismatches, 0, "reused batch diverged from warm-up results");
    assert_eq!(
        delta, 0,
        "FloodBatch::reset allocated {delta} times across mixed source-set sizes"
    );

    // Sanity: the floods did real work and the counter is live.
    assert!(expected.iter().all(FloodStats::terminated));
    assert!(expected.iter().all(|s| s.total_messages() > 0));
    let probe: Vec<u8> = vec![1, 2, 3];
    assert!(ALLOCATIONS.load(Ordering::SeqCst) > before, "{probe:?}");
}

/// PR-8 observability contract: attaching a probe must not change the
/// allocation story. A warm flood with the no-op probe — the "probe
/// slot occupied but nobody listening" configuration — stays
/// allocation-free.
#[test]
fn warm_flood_with_noop_probe_is_allocation_free() {
    let g = generators::sparse_connected(600, 900, 42);
    let source_sets: Vec<Vec<NodeId>> = [3usize, 0, 2, 1]
        .into_iter()
        .enumerate()
        .map(|(i, selector)| source_set_for(g.node_count(), selector, 7 ^ i as u64))
        .collect();

    let mut batch = FloodBatch::new(&g);
    let probe: SharedProbe = Rc::new(RefCell::new(NoopProbe));
    batch.set_probe(Some(probe));

    // Pass 1 (warm-up) with the probe attached throughout.
    let mut expected = Vec::with_capacity(source_sets.len());
    for set in &source_sets {
        expected.push(batch.run_from(set.iter().copied()));
    }

    // Pass 2: zero allocator traffic allowed.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for (set, want) in source_sets.iter().zip(&expected) {
        let got = batch.run_from(set.iter().copied());
        assert_eq!(&got, want, "probed batch diverged from warm-up");
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(delta, 0, "no-op probe allocated {delta} times when warm");
}

/// The full tracing configuration: a warm flood writing complete NDJSON
/// traces into a pre-opened `Vec<u8>` sink allocates nothing — the sink
/// and the writer's line buffer reach their high-water marks during
/// warm-up and are reused byte-for-byte afterwards.
#[test]
fn warm_traced_flood_is_allocation_free_and_deterministic() {
    let g = generators::sparse_connected(600, 900, 42);
    let source_sets: Vec<Vec<NodeId>> = [3usize, 0, 2, 1]
        .into_iter()
        .enumerate()
        .map(|(i, selector)| source_set_for(g.node_count(), selector, 9 ^ i as u64))
        .collect();

    let mut batch = FloodBatch::new(&g);
    let writer = Rc::new(RefCell::new(NdjsonTraceWriter::new(Vec::new())));
    batch.set_probe(Some(writer.clone()));

    // Pass 1 (warm-up): floods trace into the growing sink.
    let mut expected = Vec::with_capacity(source_sets.len());
    for set in &source_sets {
        expected.push(batch.run_from(set.iter().copied()));
    }
    let warm_trace = {
        let mut w = writer.borrow_mut();
        let bytes = w.sink_mut().clone();
        // Keep the sink's capacity, drop its contents: the "pre-opened
        // sink" a long-lived tracing session reuses.
        w.sink_mut().clear();
        bytes
    };
    assert!(!warm_trace.is_empty(), "warm-up floods produced traces");

    // Pass 2: identical floods, identical trace bytes, zero allocations.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for (set, want) in source_sets.iter().zip(&expected) {
        let got = batch.run_from(set.iter().copied());
        assert_eq!(&got, want, "traced batch diverged from warm-up");
    }
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(delta, 0, "warm traced flood allocated {delta} times");
    assert_eq!(
        writer.borrow_mut().sink_mut().as_slice(),
        warm_trace.as_slice(),
        "the second pass traced byte-identically"
    );
}

#[test]
fn warm_bitlane_batch_is_allocation_free_across_mixed_set_sizes() {
    let g = generators::sparse_connected(600, 900, 42);

    // 70 mixed-size sets: more than one 64-lane word, so the second pass
    // exercises a full chunk AND the 6-lane tail through the chunked
    // bit-parallel runner.
    let source_sets: Vec<Vec<NodeId>> = (0..70)
        .map(|i| source_set_for(g.node_count(), [3usize, 0, 2, 1][i % 4], 42 ^ i as u64))
        .collect();

    let mut batch = FloodBatch::with_engine(&g, FloodEngine::BitLane);

    // Pass 1 (warm-up): grows every internal buffer — lane words, active
    // lists, receipt scratch — to its high-water mark.
    let mut expected = Vec::with_capacity(source_sets.len());
    batch.run_many_into(&source_sets, &mut expected);

    // Pass 2: identical floods into a pre-sized output vector, zero
    // allocator traffic allowed.
    let mut got = Vec::with_capacity(source_sets.len());
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    batch.run_many_into(&source_sets, &mut got);
    let delta = ALLOCATIONS.load(Ordering::SeqCst) - before;

    assert_eq!(got, expected, "reused bitlane batch diverged from warm-up");
    assert_eq!(
        delta, 0,
        "bitlane FloodBatch allocated {delta} times across mixed source-set sizes"
    );

    // Sanity: real floods, and the bitlane engine agrees with the
    // frontier engine on every one of them.
    assert!(expected.iter().all(FloodStats::terminated));
    assert!(expected.iter().all(|s| s.total_messages() > 0));
    let mut frontier = FloodBatch::new(&g);
    let reference: Vec<_> = frontier.run_many(&source_sets);
    assert_eq!(expected, reference);
}
