//! The engine-string contract: every [`FloodEngine`] value survives a
//! round trip through its canonical string form, `parse(display(e)) == e`.
//!
//! The canonical strings are load-bearing in three places that must never
//! drift apart: the CLI's `--engine` flag, the `engine_spec` column of
//! `BENCH_flooding.json` (schema v6), and the `engine` field of the
//! `af-serve` wire protocol. One `FromStr`/`Display` pair in `af_core`
//! serves all three, and this suite pins the pair as mutually inverse
//! over the whole value space — so any recorded spec replays verbatim
//! through any entry point.

use amnesiac_flooding::core::FloodEngine;
use amnesiac_flooding::graph::dynamic::{ChurnKind, ChurnSpec};
use amnesiac_flooding::graph::PartitionStrategy;
use proptest::prelude::*;

/// Every engine value, over the full parameter space: arbitrary shard
/// counts (including ones the partitioner would clamp — the *spec*
/// records the request), every partition strategy, and churn specs across
/// every kind, the full parse-accepted rate range, and arbitrary seeds.
///
/// The zero-rate churn case is generated as [`ChurnSpec::NONE`] exactly:
/// a rate-0 spec *displays* as `"none"` whatever its kind and seed, so
/// `NONE` is the canonical representative of that equivalence class —
/// the same normalization every string-borne spec has already been
/// through.
fn engine_strategy() -> impl Strategy<Value = FloodEngine> {
    let strategy = prop_oneof![
        Just(PartitionStrategy::Contiguous),
        Just(PartitionStrategy::RoundRobin),
        Just(PartitionStrategy::Bfs),
    ];
    let kind = prop_oneof![
        Just(ChurnKind::Edge),
        Just(ChurnKind::Nodes),
        Just(ChurnKind::Mix),
    ];
    let churn = prop_oneof![
        Just(ChurnSpec::NONE),
        (kind, 1u32..=1000, any::<u64>()).prop_map(|(kind, rate_pm, seed)| ChurnSpec {
            kind,
            rate_pm,
            seed,
        }),
    ];
    prop_oneof![
        Just(FloodEngine::Frontier),
        Just(FloodEngine::Fast),
        Just(FloodEngine::BitLane),
        (1usize..10_000, strategy)
            .prop_map(|(threads, strategy)| FloodEngine::Sharded { threads, strategy }),
        churn.prop_map(|churn| FloodEngine::Dynamic { churn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `FromStr` inverts `Display` on every engine value.
    #[test]
    fn parse_inverts_display(engine in engine_strategy()) {
        let spec = engine.to_string();
        let back: FloodEngine = spec.parse().unwrap_or_else(|e| {
            panic!("canonical spec '{spec}' failed to parse: {e}")
        });
        prop_assert_eq!(back, engine, "spec '{}'", spec);
    }

    /// Display is idempotent through the round trip: re-displaying the
    /// parsed value reproduces the string, so canonical specs are fixed
    /// points (no second normalization step exists).
    #[test]
    fn display_is_a_fixed_point(engine in engine_strategy()) {
        let spec = engine.to_string();
        let back: FloodEngine = spec.parse().unwrap();
        prop_assert_eq!(back.to_string(), spec);
    }
}

/// The shorthand forms (`sharded`, `sharded:2`, `dynamic`) normalize to
/// their canonical expansions, and the canonical string of every
/// shorthand re-parses onto the same engine — the wire and the bench
/// JSON only ever carry fixed points.
#[test]
fn shorthands_normalize_onto_fixed_points() {
    for (shorthand, canonical) in [
        ("sharded", "sharded:4:bfs"),
        ("sharded:2", "sharded:2:bfs"),
        ("dynamic", "dynamic:none"),
        ("frontier", "frontier"),
        ("fast", "fast"),
        ("bitlane", "bitlane"),
        ("dynamic:mix:50:7", "dynamic:mix:50:7"),
    ] {
        let engine: FloodEngine = shorthand.parse().unwrap();
        assert_eq!(engine.to_string(), canonical, "{shorthand}");
        let reparsed: FloodEngine = canonical.parse().unwrap();
        assert_eq!(reparsed, engine, "{shorthand}");
    }
}
