//! Property tests that span crates: the asynchronous engine under
//! `DeliverAll` must replay the synchronous engine exactly; certified
//! verdicts must be consistent with capped runs; serialization round-trips
//! through the facade.

use amnesiac_flooding::core::{flood, AmnesiacFloodingProtocol, FloodingRun};
use amnesiac_flooding::engine::adversary::{BoundedDelay, DeliverAll, RandomDelay};
use amnesiac_flooding::engine::{AsyncEngine, AsyncOutcome, SyncEngine};
use amnesiac_flooding::graph::{generators, Graph, NodeId};
use proptest::prelude::*;

prop_compose! {
    fn connected_graph_and_source()(
        (n, extra, seed) in (2usize..32, 0usize..40, any::<u64>()),
        raw in any::<u32>()
    ) -> (Graph, NodeId) {
        let g = generators::sparse_connected(n, extra, seed);
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Async with no delays == sync, tick for tick.
    #[test]
    fn deliver_all_replays_the_synchronous_run((g, s) in connected_graph_and_source()) {
        let mut sync = SyncEngine::new(&g, AmnesiacFloodingProtocol, [s]);
        let mut asy = AsyncEngine::new(&g, AmnesiacFloodingProtocol, DeliverAll, [s]);
        loop {
            let sync_arcs: Vec<_> = sync.in_flight().to_vec();
            let async_arcs: Vec<_> = asy.in_flight().iter().map(|m| m.arc).collect();
            prop_assert_eq!(sync_arcs, async_arcs);
            let a = sync.step();
            let b = asy.step().unwrap();
            prop_assert_eq!(a.is_none(), b.is_none());
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(sync.total_messages(), asy.total_messages());
    }

    /// A uniform k-tick delay stretches time by exactly (k + 1).
    #[test]
    fn bounded_delay_stretches_time_uniformly(
        (g, s) in connected_graph_and_source(),
        k in 0u32..4
    ) {
        let mut sync = SyncEngine::new(&g, AmnesiacFloodingProtocol, [s]);
        let sync_out = sync.run(100_000);
        let mut asy = AsyncEngine::new(&g, AmnesiacFloodingProtocol, BoundedDelay::new(k), [s]);
        let asy_out = asy.run(1_000_000).unwrap();
        let t = u64::from(sync_out.termination_round().unwrap());
        prop_assert_eq!(
            asy_out,
            AsyncOutcome::Terminated { last_active_tick: t * u64::from(k + 1) }
        );
        prop_assert_eq!(sync.total_messages(), asy.total_messages());
    }

    /// Random (but fair-ish) delays never create messages out of thin air:
    /// the run either terminates or keeps at most 2m arcs in flight, and
    /// per-node state stays amnesiac (empty).
    #[test]
    fn random_delay_runs_are_sane(
        (g, s) in connected_graph_and_source(),
        p in 0.0f64..0.9,
        seed in any::<u64>()
    ) {
        let adv = RandomDelay::new(p, seed);
        let mut asy = AsyncEngine::new(&g, AmnesiacFloodingProtocol, adv, [s]);
        let _ = asy.run(5_000).unwrap();
        prop_assert!(asy.in_flight().len() <= g.arc_count());
    }

    /// FloodingRun serializes and deserializes losslessly.
    #[test]
    fn flooding_run_serde_roundtrip((g, s) in connected_graph_and_source()) {
        let run = flood(&g, s);
        let json = serde_json::to_string(&run).unwrap();
        let back: FloodingRun = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(run, back);
    }

    /// Graphs serialize through the facade too (substrate sanity).
    #[test]
    fn graph_serde_roundtrip((g, _) in connected_graph_and_source()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }
}
