//! The strongest empirical form of the paper's ∀-claims: check every
//! claim on EVERY connected labelled graph of small order, from every
//! source.
//!
//! `n ≤ 5` runs in the default suite; `n = 6` (26 704 graphs, 160 224
//! flood runs, ~7 s in debug) runs too — it is the headline verification
//! of the reproduction. `n = 7` is available behind `--ignored` for
//! release-mode sessions.

use amnesiac_flooding::analysis::exhaustive::{verify_all_connected, verify_bitlane, verify_one};
use amnesiac_flooding::graph::enumerate::{connected_graph_count, connected_graphs};
use amnesiac_flooding::graph::generators;

#[test]
fn all_connected_graphs_up_to_n5_satisfy_all_claims() {
    for n in 1..=5 {
        let report = verify_all_connected(n);
        assert!(
            report.all_claims_hold(),
            "n = {n}: first violations: {:?}",
            &report.violations()[..report.violations().len().min(3)]
        );
        assert_eq!(Some(report.graphs_checked()), connected_graph_count(n));
    }
}

#[test]
fn all_26704_connected_six_node_graphs_satisfy_all_claims() {
    let report = verify_all_connected(6);
    assert_eq!(report.graphs_checked(), 26_704);
    assert_eq!(report.runs_checked(), 160_224);
    assert!(
        report.all_claims_hold(),
        "first violations: {:?}",
        &report.violations()[..report.violations().len().min(3)]
    );
    // The slowest 6-node flood: C5 plus a pendant... in any case ≤ 2D+1 ≤ 11.
    assert!(report.max_termination_round() <= 11);
}

/// The same exhaustive sweep through the bit-parallel engine: for every
/// connected graph on `n ≤ 6` nodes, ALL sources flood at once as lanes
/// of one `u64` word, and every lane must reproduce the oracle's exact
/// receive schedule. This closes the gap where only the baseline/frontier
/// engines got exhaustive coverage.
#[test]
fn bitlane_engine_is_lane_exact_on_all_graphs_up_to_n6() {
    let mut graphs = 0u64;
    for n in 1..=6 {
        for g in connected_graphs(n) {
            graphs += 1;
            let violations = verify_bitlane(&g);
            assert!(
                violations.is_empty(),
                "n = {n}: {:?}",
                &violations[..violations.len().min(3)]
            );
        }
    }
    // The sweep saw every enumerated graph (26 704 of them at n = 6).
    let expected: u64 = (1..=6)
        .map(|n| connected_graph_count(n).expect("tabulated"))
        .sum();
    assert_eq!(graphs, expected);
}

#[test]
#[ignore = "run with --ignored in release mode (~9M flood runs)"]
fn all_connected_seven_node_graphs_satisfy_all_claims() {
    let report = verify_all_connected(7);
    assert_eq!(Some(report.graphs_checked()), connected_graph_count(7));
    assert!(report.all_claims_hold());
}

#[test]
fn enumeration_and_spot_checks_are_consistent() {
    // The enumerator agrees with a direct spot check on a named instance.
    let mut found_triangle = false;
    for g in connected_graphs(3) {
        if g.edge_count() == 3 {
            found_triangle = true;
            assert!(verify_one(&g, 0.into()).is_empty());
        }
    }
    assert!(found_triangle);
    // And verify_one flags nothing on a couple of bigger graphs.
    assert!(verify_one(&generators::petersen(), 4.into()).is_empty());
    assert!(verify_one(&generators::grid(3, 3), 4.into()).is_empty());
}
