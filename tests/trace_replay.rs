//! Differential suite for the observability layer: an NDJSON trace
//! captured by [`NdjsonTraceWriter`] must replay — through the
//! `af_analysis::tracecheck` checker, which re-derives round-sets,
//! receive rounds, per-round message counts, and the termination round
//! from nothing but the trace text — to **exactly** the engine's own
//! [`FloodingRun`] record, for all five engines across the shared
//! source-set ladder. This is what makes traces a correctness artifact
//! rather than best-effort logging: any drift between what an engine
//! does and what it reports is a hard failure here.

use std::cell::RefCell;
use std::rc::Rc;

use amnesiac_flooding::analysis::tracecheck::{check_trace, parse_trace};
use amnesiac_flooding::core::obs::NdjsonTraceWriter;
use amnesiac_flooding::core::{AmnesiacFlooding, FloodEngine, FloodingRun};
use amnesiac_flooding::graph::dynamic::ChurnSpec;
use amnesiac_flooding::graph::{generators, Graph, NodeId, PartitionStrategy};
use proptest::prelude::*;

mod common;
use common::source_set_for;

/// All five engines, in a configuration that exercises each one's
/// distinct probe path (multi-shard exchange, churn-capable overlay,
/// bit-lane sweep).
fn all_engines() -> [FloodEngine; 5] {
    [
        FloodEngine::Frontier,
        FloodEngine::Fast,
        FloodEngine::Sharded {
            threads: 3,
            strategy: PartitionStrategy::Bfs,
        },
        FloodEngine::Dynamic {
            churn: ChurnSpec::NONE,
        },
        FloodEngine::BitLane,
    ]
}

/// Runs one flood with a trace writer attached and returns the run
/// record together with the captured NDJSON text.
fn traced_run(g: &Graph, engine: FloodEngine, sources: &[NodeId]) -> (FloodingRun, String) {
    let writer = Rc::new(RefCell::new(NdjsonTraceWriter::new(Vec::new())));
    let run = AmnesiacFlooding::multi_source(g, sources.iter().copied())
        .with_engine(engine)
        .with_probe(writer.clone())
        .run();
    let text = String::from_utf8(writer.borrow_mut().take_sink()).expect("traces are UTF-8");
    (run, text)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for every engine and every rung of the
    /// source-set ladder (1, 2, 3, ⌈√n⌉ sources), the NDJSON trace
    /// replays to the engine's exact round-sets, receive rounds,
    /// message counts, and termination round.
    #[test]
    fn traces_replay_to_the_exact_run_record(
        (n, extra, seed) in (2usize..40, 0usize..50, any::<u64>()),
        selector in 0usize..4,
    ) {
        let g = generators::sparse_connected(n, extra, seed);
        let sources = source_set_for(g.node_count(), selector, seed ^ 0x9e37);
        for engine in all_engines() {
            let (run, text) = traced_run(&g, engine, &sources);
            let parsed = check_trace(&text, &run)
                .map_err(|e| TestCaseError::fail(format!("{} failed: {e}", engine.family())))?;
            prop_assert_eq!(parsed.engine.as_str(), engine.family());
            prop_assert_eq!(parsed.nodes, g.node_count());
        }
    }

    /// Engines differ in notes and internals but must agree on the
    /// physics: the five traces of the same flood parse to identical
    /// round-sets and receive rounds, trace-to-trace.
    #[test]
    fn all_five_traces_of_one_flood_agree(
        (n, extra, seed) in (2usize..32, 0usize..40, any::<u64>()),
        selector in 0usize..4,
    ) {
        let g = generators::sparse_connected(n, extra, seed);
        let sources = source_set_for(g.node_count(), selector, seed);
        let reference = {
            let (_, text) = traced_run(&g, FloodEngine::Frontier, &sources);
            parse_trace(&text).expect("frontier trace parses")
        };
        for engine in all_engines().into_iter().skip(1) {
            let (_, text) = traced_run(&g, engine, &sources);
            let parsed = parse_trace(&text).expect("trace parses");
            prop_assert_eq!(parsed.round_sets(), reference.round_sets(), "{}", engine.family());
            prop_assert_eq!(
                parsed.receive_rounds(),
                reference.receive_rounds(),
                "{}",
                engine.family()
            );
            prop_assert_eq!(parsed.end(), reference.end(), "{}", engine.family());
        }
    }
}

/// The dynamic engine under *real* churn still traces honestly: lost
/// deliveries and churn edits appear in the round lines, and the trace
/// replays to the run record exactly.
#[test]
fn dynamic_churn_traces_replay_and_note_the_edits() {
    let g = generators::sparse_connected(120, 200, 9);
    let spec: ChurnSpec = "mix:80:3".parse().expect("valid churn spec");
    let sources = source_set_for(g.node_count(), 3, 17);
    let (run, text) = traced_run(&g, FloodEngine::Dynamic { churn: spec }, &sources);
    let parsed = check_trace(&text, &run).expect("churned trace replays");
    assert_eq!(parsed.engine, "dynamic");
    assert!(
        text.lines().any(|l| l.contains("\"note\":\"churn\"")),
        "an 80‰ mix schedule must edit at least one round: {text}"
    );
}

/// The sharded engine's exchange notes account for every message that
/// crossed a shard boundary, and shard count never changes the trace.
#[test]
fn sharded_traces_are_shard_count_invariant() {
    let g = generators::sparse_connected(300, 450, 5);
    let sources = source_set_for(g.node_count(), 3, 23);
    let mut round_sets = Vec::new();
    for threads in [1usize, 2, 4] {
        let engine = FloodEngine::Sharded {
            threads,
            strategy: PartitionStrategy::Bfs,
        };
        let (run, text) = traced_run(&g, engine, &sources);
        let parsed = check_trace(&text, &run).expect("sharded trace replays");
        round_sets.push(parsed.round_sets());
    }
    assert_eq!(round_sets[0], round_sets[1]);
    assert_eq!(round_sets[0], round_sets[2]);
}
