//! Property tests pinning the sharded multicore engine to both independent
//! implementations of the theory: on random graphs up to `n = 512`, for
//! **every** partition strategy and shard counts `k ∈ {1, 2, 3, 8}`,
//! [`ShardedFlooding`] must reproduce — bit for bit — the round-sets,
//! per-node receive rounds, and message counts of the `theory::predict`
//! double-cover oracle *and* of the serial [`FrontierFlooding`] engine.
//!
//! This is the determinism contract of the sharded subsystem: thread
//! interleaving, partition shape, and shard count are not allowed to leak
//! into any observable of a flood.

use amnesiac_flooding::core::{theory, FloodBatch, FloodEngine, FrontierFlooding, ShardedFlooding};
use amnesiac_flooding::graph::{generators, Graph, NodeId, PartitionStrategy};
use proptest::prelude::*;

mod common;
use common::source_set_for;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Runs the sharded engine to termination and returns its full observable
/// record: outcome, per-node receive rounds, per-round message counts.
fn sharded_record(
    g: &Graph,
    sources: &[NodeId],
    strategy: PartitionStrategy,
    k: usize,
) -> (Option<u32>, Vec<Vec<u32>>, Vec<u64>, u64) {
    let mut sim = ShardedFlooding::with_strategy(g, strategy, k, sources.iter().copied());
    let outcome = sim.run(2 * g.node_count() as u32 + 2);
    let receipts = g.nodes().map(|v| sim.receipts(v).to_vec()).collect();
    (
        outcome.termination_round(),
        receipts,
        sim.messages_per_round().to_vec(),
        sim.total_messages(),
    )
}

fn check_against_both_references(
    g: &Graph,
    sources: &[NodeId],
    strategy: PartitionStrategy,
    k: usize,
) -> Result<(), TestCaseError> {
    // Reference 1: the serial frontier engine.
    let mut frontier = FrontierFlooding::new(g, sources.iter().copied());
    let frontier_outcome = frontier.run(2 * g.node_count() as u32 + 2);
    prop_assert!(frontier_outcome.is_terminated(), "Theorem 3.1");

    // Reference 2: the double-cover oracle (no simulation code shared).
    let pred = theory::predict(g, sources.iter().copied());

    let (term, receipts, per_round, total) = sharded_record(g, sources, strategy, k);

    prop_assert_eq!(
        term,
        frontier_outcome.termination_round(),
        "termination vs frontier ({} {} k={})",
        g,
        strategy,
        k
    );
    prop_assert_eq!(
        term,
        Some(pred.termination_round()),
        "termination vs oracle ({} {} k={})",
        g,
        strategy,
        k
    );
    prop_assert_eq!(total, pred.total_messages(), "message count vs oracle");
    prop_assert_eq!(
        per_round.iter().sum::<u64>(),
        total,
        "per-round counts sum to the total"
    );
    prop_assert_eq!(
        &per_round,
        frontier.messages_per_round(),
        "per-round counts vs frontier"
    );
    for v in g.nodes() {
        prop_assert_eq!(
            receipts[v.index()].as_slice(),
            pred.receive_rounds(v),
            "receive rounds of {} vs oracle",
            v
        );
        prop_assert_eq!(
            receipts[v.index()].as_slice(),
            frontier.receipts(v),
            "receive rounds of {} vs frontier",
            v
        );
    }
    Ok(())
}

prop_compose! {
    /// Random connected graphs up to n = 512 with a random source.
    fn connected_graph_and_source()(
        (n, extra_frac, seed) in (2usize..=512, 0usize..200, any::<u64>()),
        raw in any::<u32>()
    ) -> (Graph, NodeId) {
        let extra = n * extra_frac / 100;
        let g = generators::sparse_connected(n, extra, seed);
        let s = NodeId::new(raw as usize % g.node_count());
        (g, s)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-source floods: every partitioner and shard count reproduces
    /// the oracle and the frontier engine exactly.
    #[test]
    fn sharded_matches_oracle_and_frontier((g, s) in connected_graph_and_source()) {
        for strategy in PartitionStrategy::all() {
            for k in SHARD_COUNTS {
                check_against_both_references(&g, &[s], strategy, k)?;
            }
        }
    }

    /// Multi-source floods agree too.
    #[test]
    fn sharded_matches_references_multi_source(
        (g, s) in connected_graph_and_source(),
        raw2 in any::<u32>()
    ) {
        let s2 = NodeId::new(raw2 as usize % g.node_count());
        for strategy in PartitionStrategy::all() {
            check_against_both_references(&g, &[s, s2], strategy, 3)?;
        }
    }

    /// The whole source-set size ladder `|S| ∈ {1, 2, 3, ⌈√n⌉}`, crossed
    /// with every partitioner and `k ∈ {1, 2, 8}`: shard count and
    /// partition shape must be unobservable for any source-set size.
    #[test]
    fn sharded_matches_references_on_source_set_ladder(
        (g, _) in connected_graph_and_source(),
        selector in 0usize..4,
        set_seed in any::<u64>()
    ) {
        let sources = source_set_for(g.node_count(), selector, set_seed);
        for strategy in PartitionStrategy::all() {
            for k in [1, 2, 8] {
                check_against_both_references(&g, &sources, strategy, k)?;
            }
        }
    }

    /// The batched sharded backend across *mixed* source-set sizes:
    /// shard-state reset must fully erase a √n-sized seed before a
    /// singleton flood and vice versa.
    #[test]
    fn sharded_batch_matches_oracle_across_mixed_set_sizes(
        (g, _) in connected_graph_and_source(),
        set_seed in any::<u64>()
    ) {
        let mut batch = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded { threads: 4, strategy: PartitionStrategy::Bfs },
        );
        for (i, selector) in [3usize, 0, 1, 3].into_iter().enumerate() {
            let sources = source_set_for(g.node_count(), selector, set_seed ^ i as u64);
            let stats = batch.run_from(sources.iter().copied());
            let pred = theory::predict(&g, sources.iter().copied());
            prop_assert_eq!(
                stats.termination_round(),
                Some(pred.termination_round()),
                "flood {} (|S| = {})",
                i,
                sources.len()
            );
            prop_assert_eq!(stats.total_messages(), pred.total_messages());
        }
    }

    /// The batched sharded backend reports exactly what the oracle
    /// predicts, source after source — shard-state reuse must never leak
    /// between floods.
    #[test]
    fn sharded_batch_matches_oracle_across_sources((g, _) in connected_graph_and_source()) {
        let mut batch = FloodBatch::with_engine(
            &g,
            FloodEngine::Sharded { threads: 4, strategy: PartitionStrategy::Bfs },
        );
        let step = (g.node_count() / 8).max(1);
        for s in g.nodes().step_by(step) {
            let stats = batch.run_from([s]);
            let pred = theory::predict(&g, [s]);
            prop_assert_eq!(stats.termination_round(), Some(pred.termination_round()));
            prop_assert_eq!(stats.total_messages(), pred.total_messages());
        }
    }

    /// Repeating one flood at every shard count gives byte-identical
    /// records — the shard count is pure implementation detail.
    #[test]
    fn shard_count_is_unobservable((g, s) in connected_graph_and_source()) {
        let strategy = PartitionStrategy::RoundRobin;
        let base = sharded_record(&g, &[s], strategy, 1);
        for k in [2, 3, 8] {
            let other = sharded_record(&g, &[s], strategy, k);
            prop_assert_eq!(&base, &other, "k={} differs from k=1", k);
        }
    }
}
