//! Differential property suite for the bit-parallel engine: every bit
//! lane of a [`BitLaneFlooding`] batch must be **bit-identical** to a
//! standalone [`FrontierFlooding`] run of the same source set — per-lane
//! round sets, receive rounds, message counts, and termination round —
//! and every lane's termination must sit inside the multi-source oracle
//! window `e(S) < T ≤ e(S) + D + 1` (with equality `T = e(S)` for
//! monochromatic-bipartite sets, which `theory::termination_bounds`
//! folds into its interval). Bit-packing is exactly the kind of
//! optimisation that fails silently on one lane in a million; this suite
//! is the reason it can't.

use amnesiac_flooding::core::{theory, BitLaneFlooding, FrontierFlooding};
use amnesiac_flooding::graph::{generators, Graph, NodeId};
use proptest::prelude::*;

mod common;
use common::source_set_for;

/// The lane counts the suite pins: a lone lane, a mid-word count, and the
/// two partial-word classics (63 = one short of full, 64 = exactly full).
const LANE_COUNTS: [usize; 4] = [1, 17, 63, 64];

/// Builds `lanes` source sets off the shared ladder, cycling the set-size
/// selector through |S| ∈ {1, 2, ⌈√n⌉} so one word mixes sizes.
fn lane_sources(n: usize, lanes: usize, seed: u64) -> Vec<Vec<NodeId>> {
    (0..lanes)
        .map(|l| {
            let selector = [0usize, 1, 3][l % 3];
            source_set_for(
                n,
                selector,
                seed ^ (l as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            )
        })
        .collect()
}

/// Asserts every lane of one bit-parallel batch equals a standalone
/// frontier flood of the same set, in every observable the engines share.
fn check_lanes_against_frontier(g: &Graph, sets: &[Vec<NodeId>]) -> Result<(), TestCaseError> {
    let cap = 2 * g.node_count() as u32 + 2;
    let mut batch = BitLaneFlooding::new(g, sets.iter().map(|s| s.iter().copied()));
    let outcome = batch.run(cap);
    prop_assert!(outcome.is_terminated(), "Theorem 3.1: floods terminate");
    prop_assert_eq!(batch.lane_count(), sets.len());
    prop_assert_eq!(batch.live_lanes(), 0, "terminated batch has no live lane");

    let mut max_lane_round = 0;
    for (lane, set) in sets.iter().enumerate() {
        let mut solo = FrontierFlooding::new(g, set.iter().copied());
        let solo_outcome = solo.run(cap);
        // Termination round, bit-identical.
        prop_assert_eq!(
            batch.lane_outcome(lane),
            solo_outcome,
            "lane {} of {}: outcome",
            lane,
            sets.len()
        );
        // Message count, bit-identical.
        prop_assert_eq!(
            batch.lane_messages(lane),
            solo.total_messages(),
            "lane {} of {}: messages",
            lane,
            sets.len()
        );
        // Receive rounds (and hence the round sets R_1..R_T), node for node.
        for v in g.nodes() {
            prop_assert_eq!(
                batch.lane_receipts(v, lane),
                solo.receipts(v).to_vec(),
                "lane {} of {}: receipts at {}",
                lane,
                sets.len(),
                v
            );
        }
        max_lane_round = max_lane_round.max(solo_outcome.rounds_executed());
    }
    // The all-lane outcome is the max over the per-lane rounds.
    prop_assert_eq!(outcome.termination_round(), Some(max_lane_round));
    Ok(())
}

/// Asserts each lane's termination round lies in the oracle window
/// returned by `theory::termination_bounds` (equality for
/// monochromatic-bipartite sets, `e(S) < T ≤ e(S) + D + 1` otherwise).
fn check_lanes_against_oracle_window(g: &Graph, sets: &[Vec<NodeId>]) -> Result<(), TestCaseError> {
    let cap = 2 * g.node_count() as u32 + 2;
    let mut batch = BitLaneFlooding::new(g, sets.iter().map(|s| s.iter().copied()));
    batch.run(cap);
    for (lane, set) in sets.iter().enumerate() {
        let (lo, hi) = theory::termination_bounds(g, set.iter().copied())
            .expect("connected graph: bounds exist");
        let t = batch
            .lane_outcome(lane)
            .termination_round()
            .expect("terminated");
        prop_assert!(
            (lo..=hi).contains(&t),
            "lane {}: T = {} outside oracle window [{}, {}] for |S| = {}",
            lane,
            t,
            lo,
            hi,
            set.len()
        );
    }
    Ok(())
}

prop_compose! {
    /// Random connected graphs up to n = 192 (the per-case work is
    /// `lanes` standalone frontier floods, so the suite stays quick).
    fn connected_graph()(
        (n, extra_frac, seed) in (2usize..=192, 0usize..200, any::<u64>())
    ) -> Graph {
        let extra = n * extra_frac / 100;
        generators::sparse_connected(n, extra, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline differential: random graph × the lane-count ladder
    /// {1, 17, 63, 64} × mixed |S| ∈ {1, 2, ⌈√n⌉} sets — every lane
    /// bit-identical to the frontier engine.
    #[test]
    fn every_lane_matches_a_standalone_frontier_flood(
        g in connected_graph(),
        lane_idx in 0usize..4,
        seed in any::<u64>()
    ) {
        let lanes = LANE_COUNTS[lane_idx];
        let sets = lane_sources(g.node_count(), lanes, seed);
        check_lanes_against_frontier(&g, &sets)?;
    }

    /// Every lane's termination round sits in the multi-source oracle
    /// window `e(S) < T ≤ e(S) + D + 1`.
    #[test]
    fn every_lane_terminates_inside_the_oracle_window(
        g in connected_graph(),
        lane_idx in 0usize..4,
        seed in any::<u64>()
    ) {
        let lanes = LANE_COUNTS[lane_idx];
        let sets = lane_sources(g.node_count(), lanes, seed);
        check_lanes_against_oracle_window(&g, &sets)?;
    }

    /// Partially-terminated batches: lanes sourced in a bipartite
    /// component (terminates at e(S)) share their word with lanes in an
    /// odd-cycle component (2D + 1 > e(S)), so some lanes go silent
    /// rounds before others — the per-lane termination-mask path must
    /// keep every surviving lane exact.
    #[test]
    fn mixed_bipartite_and_odd_cycle_lanes_terminate_independently(
        path_len in 2usize..40,
        half_cycle in 1usize..20,
        lane_idx in 0usize..4,
        seed in any::<u64>()
    ) {
        // Disconnected graph: an even path P ∪ an odd cycle C.
        let cycle_len = 2 * half_cycle + 1;
        let mut edges: Vec<(usize, usize)> =
            (0..path_len - 1).map(|i| (i, i + 1)).collect();
        for i in 0..cycle_len {
            edges.push((path_len + i, path_len + (i + 1) % cycle_len));
        }
        let n = path_len + cycle_len;
        let g = Graph::from_edges(n, edges.iter().copied()).unwrap();

        // Alternate lanes between the two components, walking the seed.
        let lanes = LANE_COUNTS[lane_idx];
        let mut x = seed;
        let sets: Vec<Vec<NodeId>> = (0..lanes)
            .map(|l| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let r = (x >> 33) as usize;
                if l % 2 == 0 {
                    vec![NodeId::new(r % path_len)]
                } else {
                    vec![NodeId::new(path_len + r % cycle_len)]
                }
            })
            .collect();
        check_lanes_against_frontier(&g, &sets)?;

        // The bipartite-path lanes really do die earlier than a
        // still-running odd-cycle flood when the cycle is the larger
        // component — the case that exercises the lane mask.
        if lanes >= 2 {
            let mut batch = BitLaneFlooding::new(&g, sets.iter().map(|s| s.iter().copied()));
            batch.run(2 * n as u32 + 2);
            let t_path = batch.lane_outcome(0).termination_round().unwrap();
            let t_cycle = batch.lane_outcome(1).termination_round().unwrap();
            prop_assert!(t_path <= (path_len - 1) as u32, "bipartite lane ≤ e(S) bound");
            prop_assert_eq!(u64::from(t_cycle), cycle_len as u64, "odd cycle: T = 2D + 1");
        }
    }

    /// A reused (reset) batch behaves exactly like a fresh one — the
    /// chunked runner depends on this.
    #[test]
    fn reset_batches_stay_lane_exact(
        g in connected_graph(),
        seed in any::<u64>()
    ) {
        let n = g.node_count();
        let mut batch = BitLaneFlooding::new(&g, [vec![NodeId::new(0)]]);
        batch.run(2 * n as u32 + 2);
        for (round, lanes) in [(1usize, 64usize), (2, 17), (3, 1), (4, 63)] {
            let sets = lane_sources(n, lanes, seed ^ round as u64);
            batch.reset(sets.iter().map(|s| s.iter().copied()));
            batch.run(2 * n as u32 + 2);
            for (lane, set) in sets.iter().enumerate() {
                let mut solo = FrontierFlooding::new(&g, set.iter().copied());
                let solo_outcome = solo.run(2 * n as u32 + 2);
                prop_assert_eq!(batch.lane_outcome(lane), solo_outcome);
                prop_assert_eq!(batch.lane_messages(lane), solo.total_messages());
            }
        }
    }
}
