//! Helpers shared by the engine property suites (each suite is its own
//! test crate; this directory module is compiled into both, so the
//! source-set ladder is defined exactly once).

use amnesiac_flooding::graph::NodeId;

/// A deterministic source set for a graph with `n` nodes. `selector`
/// picks the set size from the ladder `{1, 2, 3, ⌈√n⌉}` the multi-source
/// suites pin (sizes above `n` clamp); `seed` drives a splitmix-style
/// walk that fills the set with distinct nodes.
pub fn source_set_for(n: usize, selector: usize, seed: u64) -> Vec<NodeId> {
    let size = match selector % 4 {
        0 => 1,
        1 => 2,
        2 => 3,
        _ => (n as f64).sqrt().ceil() as usize,
    }
    .clamp(1, n);
    let mut set = Vec::with_capacity(size);
    let mut x = seed;
    while set.len() < size {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let v = NodeId::new((x >> 33) as usize % n);
        if !set.contains(&v) {
            set.push(v);
        }
    }
    set
}
