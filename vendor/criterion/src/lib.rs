//! Offline shim for the `criterion` crate. See `vendor/README.md`.
//!
//! Benches compile against the familiar API (`Criterion`, groups,
//! `BenchmarkId`, `Throughput`, the `criterion_group!`/`criterion_main!`
//! macros). When actually *run*, each benchmark executes a short
//! fixed-iteration wall-clock smoke measurement and prints a mean time —
//! enough to notice order-of-magnitude regressions offline, with none of
//! real criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque measurement hint, accepted and recorded but not used for
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to the measured closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then the measured iterations.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An opaque identity function that defeats constant-folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count (criterion's sample count is
    /// reused as the iteration count here).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let iters = self.sample_size;
        run_one(&id.to_string(), iters, f);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, mut f: F) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.checked_div(iters).unwrap_or_default();
    println!("bench: {label:<50} {mean:>12.2?}/iter ({iters} iters)");
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the throughput hint (ignored by the shim's measurement).
    pub fn throughput(&mut self, _throughput: Throughput) {}

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, |b| f(b, input));
    }

    /// Benchmarks a closure without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut hits = 0u32;
        c.bench_function("free", |b| b.iter(|| hits += 1));
        // 3 measured + 1 warm-up.
        assert_eq!(hits, 4);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(5));
        group.bench_with_input(BenchmarkId::new("f", 7), &2u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.bench_with_input(BenchmarkId::from_parameter(9), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        group.finish();
    }
}
