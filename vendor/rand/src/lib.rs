//! Offline shim for the `rand` crate: the subset of the 0.8 API this
//! workspace uses, with no external dependencies. See `vendor/README.md`.

/// Low-level source of randomness (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable RNG (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo reduction: bias is negligible for the spans used
                // here (all far below 2^64) and determinism is what matters.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start + draw
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo + draw
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // Inclusive unit draw: both endpoints are reachable.
        let unit = rng.next_u64() as f64 / u64::MAX as f64;
        lo + unit * (hi - lo)
    }
}

/// Convenience sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling (mirror of `rand::seq`).

    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Counter(9);
        assert_eq!(Vec::<u8>::new().choose(&mut rng), None);
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
