//! Offline shim for the `serde` crate. See `vendor/README.md`.
//!
//! The shim keeps serde's public shape — `Serialize`/`Deserialize` traits
//! that are generic over `Serializer`/`Deserializer`, plus the derive
//! macros — but routes everything through a single self-describing
//! [`Value`] model, which is all a JSON-only workspace needs.
//!
//! Both traits have *two* methods with mutually-recursive defaults, so an
//! implementor must override at least one of them:
//!
//! * derived impls override the `Value` side (`to_value` / `from_value`);
//! * hand-written impls (such as `af_graph::Graph`'s) override the
//!   serde-shaped side (`serialize` / `deserialize`) and typically delegate
//!   to a derived representation type, exactly as they would with real
//!   serde.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a struct field in a deserialized map (derive-macro support).
#[doc(hidden)]
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// The error type of the shim's [`Value`]-level conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Wraps an arbitrary message (inherent mirror of the trait method, so
    /// call sites need no trait import).
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub mod ser {
    //! Serialization half of the data model.

    use super::Value;

    /// Error raised while serializing (mirror of `serde::ser::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Wraps an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A sink for one [`Value`] (mirror of `serde::Serializer`, collapsed
    /// to the single method this workspace needs).
    pub trait Serializer: Sized {
        /// Output on success.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Consumes the serializer with the complete value.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    //! Deserialization half of the data model.

    use super::Value;

    /// Error raised while deserializing (mirror of `serde::de::Error`).
    pub trait Error: Sized + std::error::Error {
        /// Wraps an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// A source of one [`Value`] (mirror of `serde::Deserializer`,
    /// collapsed to the single method this workspace needs).
    pub trait Deserializer<'de>: Sized {
        /// Error type.
        type Error: Error;

        /// Consumes the deserializer, yielding the complete value.
        fn take_value(self) -> Result<Value, Self::Error>;
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

impl ser::Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

impl de::Error for DeError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// A [`Serializer`] that materializes the [`Value`] itself.
#[derive(Debug, Default)]
pub struct ValueSerializer;

impl ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = DeError;

    fn serialize_value(self, value: Value) -> Result<Value, DeError> {
        Ok(value)
    }
}

/// A [`Deserializer`] reading from an owned [`Value`].
#[derive(Debug)]
pub struct ValueDeserializer(pub Value);

impl<'de> de::Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.0)
    }
}

/// A type that can be serialized (mirror of `serde::Serialize`).
///
/// Override [`Serialize::to_value`] (derives do) or [`Serialize::serialize`]
/// (hand-written impls do) — never neither, as the defaults call each other.
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value {
        self.serialize(ValueSerializer)
            .expect("Serialize impl overrides neither method or failed")
    }

    /// Serde-shaped entry point.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A type that can be deserialized (mirror of `serde::Deserialize`).
///
/// Override [`Deserialize::from_value`] (derives do) or
/// [`Deserialize::deserialize`] (hand-written impls do) — never neither, as
/// the defaults call each other.
pub trait Deserialize<'de>: Sized {
    /// Reads `Self` out of the data model.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Self::deserialize(ValueDeserializer(value.clone()))
    }

    /// Serde-shaped entry point.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error on malformed input.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::custom)
    }
}

// ----------------------------------------------------------------- impls

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match *value {
                    Value::U64(raw) => raw,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

// A `Value` (de)serializes as itself — what `serde_json::from_str::<Value>`
// needs to hand callers the raw parsed tree.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match *value {
                    Value::U64(raw) => raw as i128,
                    Value::I64(raw) => raw as i128,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // Integral floats print without a fraction part and parse back as
        // integers, so accept those too.
        match *value {
            Value::F64(x) => Ok(x),
            Value::U64(raw) => Ok(raw as f64),
            Value::I64(raw) => Ok(raw as f64),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(usize::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn compounds_roundtrip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let back: Vec<(usize, usize)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn get_field_reports_missing() {
        let entries = vec![("a".to_string(), Value::U64(1))];
        assert!(get_field(&entries, "a").is_ok());
        assert!(get_field(&entries, "b").is_err());
    }
}
