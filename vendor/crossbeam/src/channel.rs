//! Offline shim for `crossbeam-channel`: the unbounded MPSC subset, backed
//! by `std::sync::mpsc`.
//!
//! API differences from the real crate are kept invisible to this
//! workspace's usage: [`Sender`] is `Clone + Send` and [`Receiver`] is
//! `Send` (but, unlike crossbeam's, not `Clone` or `Sync` — each consumer
//! owns its receiver, which is exactly the sharded-flooding topology of one
//! inbox per worker).

use std::sync::mpsc;

/// The sending half of an unbounded channel. Mirror of
/// `crossbeam_channel::Sender`.
#[derive(Debug)]
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

// Manual impl: a derive would needlessly require `T: Clone`.
impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

/// The receiving half of an unbounded channel. Mirror of
/// `crossbeam_channel::Receiver` (minus `Clone`/`Sync`; see the module
/// docs).
#[derive(Debug)]
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

/// Error returned by [`Sender::send`] when every receiver is gone. The
/// unsent message is handed back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> core::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: core::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl core::fmt::Display for RecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still exist).
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl core::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl<T> Sender<T> {
    /// Sends a message, never blocking (the channel is unbounded).
    ///
    /// # Errors
    ///
    /// Returns the message back if the receiver was dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.inner
            .send(msg)
            .map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] if the channel is empty and every sender was
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|mpsc::RecvError| RecvError)
    }

    /// Receives a message if one is immediately available.
    ///
    /// # Errors
    ///
    /// Returns [`TryRecvError::Empty`] when nothing is queued and
    /// [`TryRecvError::Disconnected`] when additionally every sender is
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Drains every currently queued message without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        core::iter::from_fn(move || self.try_recv().ok())
    }
}

/// Creates an unbounded channel. Mirror of `crossbeam_channel::unbounded`.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(41));
        assert_eq!(rx.try_recv(), Ok(42));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn multiple_producers_one_consumer() {
        let (tx, rx) = unbounded();
        crate::scope(|scope| {
            for i in 0..4u64 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<u64> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert!(SendError(7).to_string().contains("disconnected"));
    }

    #[test]
    fn error_displays() {
        assert!(RecvError.to_string().contains("disconnected"));
        assert!(TryRecvError::Empty.to_string().contains("empty"));
        assert!(TryRecvError::Disconnected
            .to_string()
            .contains("disconnected"));
    }
}
