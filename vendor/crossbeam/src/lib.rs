//! Offline shim for the `crossbeam` crate: scoped threads over
//! `std::thread::scope` and multi-producer channels over `std::sync::mpsc`.
//! See `vendor/README.md`.
//!
//! Behavioral note: the real `crossbeam::scope` returns `Err` when a child
//! thread panicked; `std::thread::scope` resumes the child's panic on the
//! parent instead, so here a child panic propagates directly (callers that
//! `.expect(..)` the result observe a panic either way).

use std::thread;

pub mod channel;

/// A scope handle: spawn threads that may borrow from the enclosing stack
/// frame. Mirror of `crossbeam_utils::thread::Scope`.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (so it can
    /// spawn siblings), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// joins them all before returning. Mirror of `crossbeam::scope`.
///
/// # Errors
///
/// Never returns `Err` (see the module-level behavioral note).
#[allow(clippy::missing_panics_doc)] // child panics propagate by design
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let hits = AtomicUsize::new(0);
        let data = [1, 2, 3, 4];
        let out = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    hits.fetch_add(data.len(), Ordering::Relaxed);
                });
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let hits = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
