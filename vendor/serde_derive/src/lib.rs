//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the item shapes this workspace uses —
//! non-generic structs (named, tuple/newtype, optionally
//! `#[serde(transparent)]`) and enums with unit, newtype/tuple, and
//! struct variants, in serde's externally-tagged representation.
//!
//! The macro parses the raw token stream directly (no `syn`/`quote`) and
//! emits impls of the shim traits in the sibling `serde` crate, relying on
//! type inference instead of parsed field types: `from_value` calls are
//! constrained by the field they initialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct NamedField {
    name: String,
}

enum Body {
    NamedStruct { fields: Vec<NamedField> },
    TupleStruct { arity: usize },
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<NamedField>),
    Tuple(usize),
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

/// Returns true if this attribute group is `serde(transparent)`.
fn attr_is_transparent(group: &proc_macro::Group) -> bool {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent")),
        _ => false,
    }
}

/// Skips `#[...]` attributes starting at `i`; returns the new index and
/// whether a `#[serde(transparent)]` was among them.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut transparent = false;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        transparent |= attr_is_transparent(g);
        i += 2;
    }
    (i, transparent)
}

/// Skips `pub`, `pub(crate)`, etc. starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses `name: Type, name: Type, ...` field lists (types are skipped
/// with angle-bracket depth tracking, so `Map<K, V>` commas don't split).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde shim derive: expected field name, found {:?}",
                tokens[i]
            );
        };
        fields.push(NamedField {
            name: name.to_string(),
        });
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field name"
        );
        i += 1;
        // Skip the type until a comma at angle depth 0.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts tuple-struct / tuple-variant fields (top-level commas at angle
/// depth 0, tolerating a trailing comma).
fn tuple_arity(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut arity = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        trailing_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                arity += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde shim derive: expected variant name, found {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let kind = if i < tokens.len() {
            match &tokens[i] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    i += 1;
                    VariantKind::Named(parse_named_fields(g))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    i += 1;
                    VariantKind::Tuple(tuple_arity(g))
                }
                _ => VariantKind::Unit,
            }
        } else {
            VariantKind::Unit
        };
        variants.push(Variant { name, kind });
        if i < tokens.len() {
            assert!(
                matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ','),
                "serde shim derive: expected `,` after variant (discriminants unsupported)"
            );
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, transparent) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("serde shim derive: expected `struct` or `enum`");
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde shim derive: expected item name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (needed for `{name}`)");
    }
    let body = match (kw.as_str(), &tokens[i]) {
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::NamedStruct {
            fields: parse_named_fields(g),
        },
        ("struct", TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct {
                arity: tuple_arity(g),
            }
        }
        ("enum", TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Body::Enum {
            variants: parse_variants(g),
        },
        _ => panic!("serde shim derive: unsupported item shape for `{name}`"),
    };
    Item {
        name,
        transparent,
        body,
    }
}

// ------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct { fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::TupleStruct { arity } => {
            if item.transparent || *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            }
        }
        Body::Enum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Named(fields) => {
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), \
                                         ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{entries}]))]),",
                                binders = binders.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|idx| format!("__f{idx}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binders}) => ::serde::Value::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {inner})]),",
                                binders = binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ----------------------------------------------------------- Deserialize

fn named_struct_ctor(path: &str, fields: &[NamedField], entries_var: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{0}: ::serde::Deserialize::from_value(\
                 ::serde::get_field({entries_var}, \"{0}\")?)?",
                f.name
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct { fields } => {
            format!(
                "let __entries = __value.as_map().ok_or_else(|| \
                 ::serde::DeError(::std::format!(\"expected map for struct {name}\")))?;\n\
                 ::std::result::Result::Ok({})",
                named_struct_ctor(name, fields, "__entries")
            )
        }
        Body::TupleStruct { arity } => {
            if item.transparent || *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(\
                     ::serde::Deserialize::from_value(__value)?))"
                )
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|idx| format!("::serde::Deserialize::from_value(&__items[{idx}])?"))
                    .collect();
                format!(
                    "let __items = __value.as_seq().ok_or_else(|| \
                     ::serde::DeError(::std::format!(\"expected array for {name}\")))?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected {arity} elements for {name}\")));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                )
            }
        }
        Body::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let build = match &v.kind {
                        VariantKind::Unit => return None,
                        VariantKind::Named(fields) => format!(
                            "let __fields = __inner.as_map().ok_or_else(|| \
                             ::serde::DeError(::std::format!(\
                             \"expected map for variant {vname}\")))?;\n\
                             ::std::result::Result::Ok({})",
                            named_struct_ctor(&format!("{name}::{vname}"), fields, "__fields")
                        ),
                        VariantKind::Tuple(arity) if *arity == 1 => format!(
                            "::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|idx| {
                                    format!("::serde::Deserialize::from_value(&__items[{idx}])?")
                                })
                                .collect();
                            format!(
                                "let __items = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError(::std::format!(\
                                 \"expected array for variant {vname}\")))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"wrong arity for variant {vname}\")));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))",
                                inits.join(", ")
                            )
                        }
                    };
                    Some(format!("\"{vname}\" => {{ {build} }}"))
                })
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::DeError(\
                     ::std::format!(\"expected externally tagged enum {name}\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derives the shim `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
