//! Offline shim for the `proptest` crate. See `vendor/README.md`.
//!
//! Provides the macro surface (`proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*!`, `prop_assume!`) and a [`Strategy`]
//! algebra (ranges, tuples, `any`, `prop_map`, `boxed`, `collection::vec`)
//! over a deterministic ChaCha RNG. Seeds derive from the test path and
//! case index (override the base with `PROPTEST_SEED=<u64>`), so every
//! failure is reproducible. The shim does **not** shrink counterexamples:
//! a failure reports the seed instead of a minimized input.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `func`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, func: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map::new(self, func)
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.dyn_new_value(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter (also the engine behind
    /// `prop_compose!`).
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        func: F,
    }

    impl<S, F> Map<S, F> {
        /// Wraps `strategy`, passing its values through `func`.
        ///
        /// The bounds mirror the `Strategy` impl so that closure parameter
        /// types are inferred right here at the call site.
        pub fn new<O>(strategy: S, func: F) -> Self
        where
            S: Strategy,
            F: Fn(S::Value) -> O,
        {
            Map { strategy, func }
        }
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.func)(self.strategy.new_value(rng))
        }
    }

    /// Uniform choice among boxed alternatives (the engine behind
    /// `prop_oneof!`).
    #[derive(Debug)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Wraps the alternatives.
        ///
        /// # Panics
        ///
        /// Panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].new_value(rng)
        }
    }

    impl<T> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: rand::SampleRange<Output = T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: rand::SampleRange<Output = T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// Types with a canonical whole-domain strategy, for [`any`].
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Unit interval rather than raw bit patterns: no NaN/inf noise.
            (rand::RngCore::next_u64(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An unconstrained strategy for `T`'s whole domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// The RNG handed to strategies.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; draw again.
        Reject,
        /// `prop_assert*!` failed; abort the test.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        #[must_use]
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (the case's inputs don't apply).
        #[must_use]
        pub fn reject(_reason: impl Into<String>) -> Self {
            TestCaseError::Reject
        }
    }

    /// The result type of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn base_seed(test_path: &str) -> u64 {
        if let Ok(fixed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = fixed.parse::<u64>() {
                return seed;
            }
        }
        // DefaultHasher::new() uses fixed keys, so this is stable across
        // processes of the same toolchain.
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        test_path.hash(&mut hasher);
        hasher.finish()
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure with the seed that reproduces it.
    ///
    /// # Panics
    ///
    /// Panics when a case fails, or when `prop_assume!` rejects too many
    /// draws in a row for the config to be satisfiable.
    pub fn run_cases<F>(config: Config, test_path: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = base_seed(test_path);
        let max_rejects = (config.cases as u64).saturating_mul(64).max(4096);
        let mut successes = 0u32;
        let mut rejects = 0u64;
        let mut draw = 0u64;
        while successes < config.cases {
            let seed = base.wrapping_add(draw.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            draw += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{test_path}: too many prop_assume! rejects \
                         ({rejects} while seeking {} cases)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "{test_path}: case #{successes} failed \
                     (reproduce with PROPTEST_SEED={base}): {msg}"
                ),
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.

    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Declares a block of property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);
     $(
         $(#[$meta:meta])*
         fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    __proptest_config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        let ($($pat,)*) = $crate::strategy::Strategy::new_value(
                            &($($strat,)*),
                            __proptest_rng,
                        );
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Declares a function returning a composed [`strategy::Strategy`].
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident ($($args:tt)*)
     ( $($pat:pat in $strat:expr),* $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Map::new(($($strat,)*), move |($($pat,)*)| $body)
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    __l,
                    __r,
                    ::std::format!($($fmt)+)
                );
            }
        }
    };
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
                    __l,
                    ::std::format!($($fmt)+)
                );
            }
        }
    };
}

/// Rejects the current case (drawing fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        /// Pairs whose first element bounds the second.
        fn bounded_pair()((hi, seed) in (1usize..50, any::<u64>())) -> (usize, usize) {
            (hi, seed as usize % hi)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(n in 3usize..17, p in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn composed_strategies_hold_their_invariant((hi, lo) in bounded_pair()) {
            prop_assert!(lo < hi, "lo = {lo}, hi = {hi}");
        }

        #[test]
        fn oneof_and_map_produce_all_shapes(v in prop_oneof![
            (1usize..4).prop_map(|n| vec![0u32; n]),
            (4usize..8).prop_map(|n| vec![1u32; n]),
        ]) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 8);
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn vec_strategy_respects_size(raw in crate::collection::vec(any::<u32>(), 1..4)) {
            prop_assert!((1..4).contains(&raw.len()));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn failing_case_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_cases(
                ProptestConfig::with_cases(4),
                "shim::always_fails",
                |_rng| Err(crate::test_runner::TestCaseError::Fail("boom".into())),
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("PROPTEST_SEED="), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for sink in [&mut first, &mut second] {
            crate::test_runner::run_cases(
                ProptestConfig::with_cases(16),
                "shim::determinism",
                |rng| {
                    sink.push(rand::RngCore::next_u64(rng));
                    Ok(())
                },
            );
        }
        assert_eq!(first, second);
    }
}
