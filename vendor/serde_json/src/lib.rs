//! Offline shim for the `serde_json` crate: `to_string`,
//! `to_string_pretty`, and `from_str` over the `serde` shim's `Value`
//! model. See `vendor/README.md`.

use serde::{Deserialize, Serialize, Value, ValueDeserializer, ValueSerializer};

/// Error produced by JSON conversion in either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

// ------------------------------------------------------------- printing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_json(x: f64) -> Result<String, Error> {
    if !x.is_finite() {
        return Err(Error(format!("JSON cannot represent {x}")));
    }
    // Rust's shortest-roundtrip Display; integral values print without a
    // fraction and parse back as integers, which the shim's `f64`
    // deserialization accepts.
    Ok(format!("{x}"))
}

fn write_value(value: &Value, indent: Option<usize>, out: &mut String) -> Result<(), Error> {
    let (open_sep, item_sep, pad) = match indent {
        Some(level) => {
            let inner = "  ".repeat(level + 1);
            (
                format!("\n{inner}"),
                format!(",\n{inner}"),
                format!("\n{}", "  ".repeat(level)),
            )
        }
        None => (String::new(), ",".to_string(), String::new()),
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => out.push_str(&number_to_json(*x)?),
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
            } else {
                out.push('[');
                out.push_str(&open_sep);
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    write_value(item, indent.map(|l| l + 1), out)?;
                }
                out.push_str(&pad);
                out.push(']');
            }
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
            } else {
                out.push('{');
                out.push_str(&open_sep);
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(&item_sep);
                    }
                    escape_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(item, indent.map(|l| l + 1), out)?;
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
    Ok(())
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON cannot represent them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let model = value.serialize(ValueSerializer).map_err(Error::from)?;
    let mut out = String::new();
    write_value(&model, None, &mut out)?;
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Returns an error for non-finite floats (JSON cannot represent them).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let model = value.serialize(ValueSerializer).map_err(Error::from)?;
    let mut out = String::new();
    write_value(&model, Some(0), &mut out)?;
    Ok(out)
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.error("unexpected end of input"))?
        {
            b'n' => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b't' => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'f' => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.error(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's
                            // printer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("invalid number"))
        } else if let Ok(x) = text.parse::<u64>() {
            Ok(Value::U64(x))
        } else if let Ok(x) = text.parse::<i64>() {
            Ok(Value::I64(x))
        } else {
            // Integer literal beyond 64 bits: fall back to float.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    T::deserialize(ValueDeserializer(value)).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<String>(r#""a\"b\\c\nd""#).unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        let v = vec![(0usize, 1usize), (2, 3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0,1],[2,3]]");
        assert_eq!(from_str::<Vec<(usize, usize)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u32>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("[1] junk").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
        assert!(from_str::<f64>("1e999").unwrap().is_infinite());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let s = "héllo ☃ \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""☃""#).unwrap(), "☃");
    }
}
