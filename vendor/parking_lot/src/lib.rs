//! Offline shim for the `parking_lot` crate: `Mutex` and `RwLock` with the
//! poison-free API, backed by their `std::sync` counterparts. See
//! `vendor/README.md`.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (parking_lot is poison-free;
    /// the std backing makes poisoning observable only as this panic).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose `read`/`write` do not return poison `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access, blocking until no writer holds the lock.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (parking_lot is poison-free;
    /// the std backing makes poisoning observable only as this panic).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access, blocking until the lock is free.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (see [`RwLock::read`]).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write_and_into_inner() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = std::sync::Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                        let _ = *l.read();
                    }
                });
            }
        });
        assert_eq!(*l.read(), 400);
    }
}
