//! Offline shim for the `parking_lot` crate: a `Mutex` with the
//! poison-free API, backed by `std::sync::Mutex`. See `vendor/README.md`.

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock` does not return a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (parking_lot is poison-free;
    /// the std backing makes poisoning observable only as this panic).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
