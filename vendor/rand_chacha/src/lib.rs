//! Offline shim for the `rand_chacha` crate: a faithful ChaCha stream
//! cipher core used as a deterministic RNG. Only `ChaCha8Rng` is provided.
//! See `vendor/README.md`.
//!
//! Note: `seed_from_u64` here expands the seed with SplitMix64 into the
//! 256-bit ChaCha key. Streams are deterministic and of cryptographic
//! quality, but they are *not* bit-identical to the real `rand_chacha`
//! crate's streams (which nothing in this workspace requires — seeds only
//! pin determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic RNG backed by the ChaCha (8-round) stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit block counter, zero nonce.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &orig) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(orig);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key schedule.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rough_uniformity() {
        // Each of 16 buckets should get a plausible share of 16k draws.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buckets = [0u32; 16];
        for _ in 0..16_384 {
            buckets[rng.gen_range(0usize..16)] += 1;
        }
        for &b in &buckets {
            assert!((700..1400).contains(&b), "skewed bucket: {buckets:?}");
        }
    }

    #[test]
    fn clone_continues_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
