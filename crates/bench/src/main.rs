//! `af-bench` — regenerate every experiment table in one run.
//!
//! ```text
//! cargo run -p af-bench --release             # Markdown to stdout
//! cargo run -p af-bench --release -- --json   # JSON provenance to stdout
//! ```
//!
//! Individual tables are also available as dedicated binaries
//! (`table_figures`, `table_bipartite`, …), which is what DESIGN.md's
//! experiment index references.

fn main() {
    let report = af_analysis::report::collect_all(6);
    if std::env::args().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("# Amnesiac Flooding — full experiment regeneration\n");
        print!("{}", report.to_markdown());
    }
}
