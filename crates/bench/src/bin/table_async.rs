//! E8: §4 — certified async termination/non-termination under adversaries.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::asynchronous::run().to_markdown()
    );
}
