//! E4–E5: Lemma 2.1 / Corollary 2.2 sweep over bipartite families.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::bipartite::run().to_markdown()
    );
}
