//! E10: topology detection (non-bipartiteness) by flooding.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::detection::run().to_markdown()
    );
}
