//! E7: Theorem 3.3 — non-bipartite termination in (e(src), 2D + 1].
fn main() {
    println!(
        "{}",
        af_analysis::experiments::nonbipartite::run().to_markdown()
    );
}
