//! E1–E3: regenerate Figures 1–3 (table + full traces).
fn main() {
    println!("{}", af_analysis::experiments::figures::run().to_markdown());
    for (title, trace) in af_analysis::experiments::figures::rendered_traces() {
        println!("#### {title}\n\n```text\n{trace}```\n");
    }
}
