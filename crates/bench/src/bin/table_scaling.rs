//! E13: termination-time scaling series (the O(D) shape).
fn main() {
    println!("{}", af_analysis::experiments::scaling::run().to_markdown());
}
