//! E13: termination-time scaling series (the O(D) shape), plus the E13b
//! sharded-engine strong-scaling sweep.
fn main() {
    println!("{}", af_analysis::experiments::scaling::run().to_markdown());
    println!(
        "{}",
        af_analysis::experiments::scaling::strong_scaling().to_markdown()
    );
}
