//! E9 + E16: multi-source amnesiac flooding vs the double-cover oracle,
//! and the multi-source termination-time table across the benchmark
//! families.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::multisource::run(42).to_markdown()
    );
    println!(
        "{}",
        af_analysis::experiments::multisource::run_scale(42).to_markdown()
    );
}
