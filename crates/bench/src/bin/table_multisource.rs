//! E9: multi-source amnesiac flooding vs the double-cover oracle.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::multisource::run(42).to_markdown()
    );
}
