//! E15: the memory ladder (k-memory flooding vs AF vs the classic flag).
fn main() {
    println!("{}", af_analysis::experiments::memory::run().to_markdown());
}
