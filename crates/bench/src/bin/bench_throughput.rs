//! `bench_throughput` — the flooding throughput benchmark.
//!
//! Floods a grid of graph families (sparse random, preferential
//! attachment, random geometric, small world, grid) from ~1e4 up to ~1e6
//! edges with the frontier-sparse engine, the scan-all-arcs baseline, the
//! sharded multicore engine, the dynamic-graph engine, and the 64-lane
//! bit-parallel engine (the full grid floods 64 source sets per case so
//! the bitlane row measures a full word), then writes the schema-stable
//! `BENCH_flooding.json` (see [`af_analysis::bench`] for the schema).
//!
//! ```text
//! cargo run -p af-bench --release --bin bench_throughput             # full grid
//! cargo run -p af-bench --release --bin bench_throughput -- --smoke # CI grid
//! ```
//!
//! Options:
//!
//! * `--smoke` — the small CI grid (~2e3 edges per family) with an extra
//!   cross-check of every flood against the exact-time oracle;
//! * `--threads <N>` — shard/worker count for the sharded engine
//!   (default 4);
//! * `--partitioner <contiguous|round-robin|bfs>` — how the sharded
//!   engine splits the graph (default bfs);
//! * `--sources <K>` — flood from deterministic K-node source sets
//!   instead of single sources (default 1); every engine row records the
//!   set size in its `sources` field;
//! * `--churn <kind:rate_pm:seed | none>` — the churn spec the `dynamic`
//!   engine row floods under (default `none`, where the dynamic row must
//!   agree bit-for-bit with the frontier engine); with a nonzero rate the
//!   dynamic row measures the churn workload and leaves the agreement
//!   conjunction. Deltas are streamed (`O(graph)` memory at any scale),
//!   but sustained churn rebuilds the CSR every round and churned floods
//!   typically run to the `2n + 2` cap — on the full grid's largest
//!   cases expect hours, so pair nonzero `--churn` with `--smoke` unless
//!   you mean it;
//! * `--out <path>` — where to write the JSON. The default is
//!   `BENCH_flooding.json` in the current directory for the full grid, and
//!   `target/BENCH_flooding_smoke.json` for `--smoke`, so a casual smoke
//!   run never clobbers the checked-in full-grid perf record (CI passes
//!   `--out` explicitly);
//! * `--stdout` — also print the JSON to stdout.
//!
//! Exits non-zero if any engine pair (or the oracle, in smoke mode)
//! disagrees — the CI perf-smoke job relies on this.

use af_graph::dynamic::ChurnSpec;
use af_graph::PartitionStrategy;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_throughput [--smoke] [--threads N] \
             [--partitioner contiguous|round-robin|bfs] [--sources K] \
             [--churn kind:rate_pm:seed|none] [--out <path>] [--stdout]\n\
             writes the flooding-throughput report to BENCH_flooding.json"
        );
        return ExitCode::SUCCESS;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let to_stdout = args.iter().any(|a| a == "--stdout");
    let option = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let threads: usize = match option("--threads").map(|v| v.parse()) {
        None => 4,
        Some(Ok(t)) => t,
        Some(Err(_)) => {
            eprintln!("error: invalid --threads value");
            return ExitCode::FAILURE;
        }
    };
    let strategy: PartitionStrategy = match option("--partitioner").map(|v| v.parse()) {
        None => PartitionStrategy::Bfs,
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sources_per_flood: usize = match option("--sources").map(|v| v.parse()) {
        None => 1,
        Some(Ok(k)) if k >= 1 => k,
        Some(_) => {
            eprintln!("error: --sources must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let churn: ChurnSpec = match option("--churn").map(|v| v.parse()) {
        None => ChurnSpec::NONE,
        Some(Ok(c)) => c,
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let default_out = if smoke {
        "target/BENCH_flooding_smoke.json"
    } else {
        "BENCH_flooding.json"
    };
    let out_path = option("--out").map_or(default_out, String::as_str);

    let report = af_analysis::bench::run_with(smoke, threads, strategy, sources_per_flood, churn);
    eprint!("{}", report.to_summary());

    let json = report.to_json();
    if let Some(dir) = std::path::Path::new(out_path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(out_path, format!("{json}\n")) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out_path}");
    if to_stdout {
        println!("{json}");
    }

    if !report.all_engines_agree {
        eprintln!("error: engines disagree — see {out_path}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
