//! E17: amnesiac flooding under mid-flood topology churn — termination,
//! round-count inflation, and message loss across the benchmark families,
//! with the zero-churn column hard-checked against the static oracle.
fn main() {
    println!("{}", af_analysis::experiments::churn::run(42).to_markdown());
}
