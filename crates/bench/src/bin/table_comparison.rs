//! E11: amnesiac flooding vs classic flag flooding.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::comparison::run().to_markdown()
    );
}
