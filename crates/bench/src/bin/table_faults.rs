//! E14: amnesiac flooding under message loss and crash faults.
fn main() {
    println!("{}", af_analysis::experiments::faults::run().to_markdown());
}
