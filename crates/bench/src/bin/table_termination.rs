//! E6: Theorem 3.1 — exhaustive small-n verification + random families.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::termination::run_exhaustive(6).to_markdown()
    );
    println!(
        "{}",
        af_analysis::experiments::termination::run_random().to_markdown()
    );
}
