//! E12: exhaustive census of arbitrary arc configurations.
fn main() {
    println!(
        "{}",
        af_analysis::experiments::arbitrary_config::run().to_markdown()
    );
    println!(
        "{}",
        af_analysis::experiments::arbitrary_config::run_exhaustive(5).to_markdown()
    );
}
