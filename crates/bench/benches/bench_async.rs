//! Asynchronous engine cost: ticks under different adversaries, and the
//! price of non-termination certification (configuration hashing) on the
//! paper's Figure-5 topologies.

use af_core::AmnesiacFloodingProtocol;
use af_engine::adversary::{DeliverAll, PerHeadThrottle, RandomDelay};
use af_engine::{certify, AsyncEngine};
use af_graph::{generators, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn async_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("async-engine");

    // Full terminating runs under benign schedules.
    for n in [64usize, 256, 1024] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("deliver-all/cycle", n), &g, |b, g| {
            b.iter(|| {
                let mut e =
                    AsyncEngine::new(g, AmnesiacFloodingProtocol, DeliverAll, [NodeId::new(0)]);
                e.run(10 * n as u64).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("random-delay/cycle", n), &g, |b, g| {
            b.iter(|| {
                let adv = RandomDelay::new(0.3, 42);
                let mut e = AsyncEngine::new(g, AmnesiacFloodingProtocol, adv, [NodeId::new(0)]);
                e.run(100 * n as u64).unwrap()
            });
        });
    }

    // 1000 adversarial ticks on the never-terminating triangle schedule.
    for n in [3usize, 9, 33] {
        let g = generators::cycle(n);
        group.bench_with_input(
            BenchmarkId::new("throttle-1000-ticks/cycle", n),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut e = AsyncEngine::new(
                        g,
                        AmnesiacFloodingProtocol,
                        PerHeadThrottle,
                        [NodeId::new(0)],
                    );
                    for _ in 0..1000 {
                        if e.step().unwrap().is_none() {
                            break;
                        }
                    }
                    e.total_messages()
                });
            },
        );
    }

    // Certification cost (hashing every configuration until the lasso).
    for n in [3usize, 5, 9, 15] {
        let g = generators::cycle(n);
        group.bench_with_input(
            BenchmarkId::new("certify-lasso/odd-cycle", n),
            &g,
            |b, g| {
                b.iter(|| {
                    certify(
                        g,
                        AmnesiacFloodingProtocol,
                        PerHeadThrottle,
                        [NodeId::new(0)],
                        100_000,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = async_benches
}
criterion_main!(benches);
