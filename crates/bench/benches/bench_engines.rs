//! Ablation called out in DESIGN.md: the generic callback engine
//! ([`af_engine::SyncEngine`]) vs the specialized bitset simulator
//! ([`af_core::FastFlooding`]) on identical floods, plus the cost of the
//! classic flag baseline on the same graphs.

use af_core::{AmnesiacFloodingProtocol, ClassicFloodingProtocol, FastFlooding};
use af_engine::SyncEngine;
use af_graph::{generators, Graph, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn engine_flood(g: &Graph) -> u64 {
    let mut e = SyncEngine::new(g, AmnesiacFloodingProtocol, [NodeId::new(0)]);
    e.set_trace_enabled(false);
    e.run(4 * g.node_count() as u32 + 4);
    e.total_messages()
}

fn fast_flood(g: &Graph) -> u64 {
    let mut sim = FastFlooding::new(g, [NodeId::new(0)]);
    sim.set_record_receipts(false);
    sim.run(4 * g.node_count() as u32 + 4);
    sim.total_messages()
}

fn classic_flood(g: &Graph) -> u64 {
    let mut e = SyncEngine::new(g, ClassicFloodingProtocol, [NodeId::new(0)]);
    e.set_trace_enabled(false);
    e.run(4 * g.node_count() as u32 + 4);
    e.total_messages()
}

fn engine_ablation(c: &mut Criterion) {
    let instances: Vec<(&str, Graph)> = vec![
        ("cycle-1024", generators::cycle(1024)),
        ("grid-32x32", generators::grid(32, 32)),
        (
            "petersen-like-regular",
            generators::random_regular(1024, 3, 7),
        ),
        ("gnp-512", generators::gnp_connected(512, 0.02, 7)),
    ];
    let mut group = c.benchmark_group("engine-ablation");
    for (label, g) in &instances {
        group.bench_with_input(BenchmarkId::new("generic-engine", label), g, |b, g| {
            b.iter(|| engine_flood(g));
        });
        group.bench_with_input(BenchmarkId::new("fast-bitset", label), g, |b, g| {
            b.iter(|| fast_flood(g));
        });
        group.bench_with_input(BenchmarkId::new("classic-baseline", label), g, |b, g| {
            b.iter(|| classic_flood(g));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_ablation
}
criterion_main!(benches);
