//! Throughput of the bitset flooding simulator across the paper's
//! topologies, at increasing scale. One group per family; the measured
//! quantity is a complete flood (initiation → termination).

use af_core::FastFlooding;
use af_graph::{generators, Graph, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn full_flood(g: &Graph) -> u64 {
    let mut sim = FastFlooding::new(g, [NodeId::new(0)]);
    sim.set_record_receipts(false);
    sim.run(4 * g.node_count() as u32 + 4);
    sim.total_messages()
}

fn bench_family<F: Fn(usize) -> Graph>(c: &mut Criterion, name: &str, make: F, sizes: &[usize]) {
    let mut group = c.benchmark_group(name);
    for &n in sizes {
        let g = make(n);
        group.throughput(Throughput::Elements(g.edge_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| full_flood(g));
        });
    }
    group.finish();
}

fn flooding_benches(c: &mut Criterion) {
    bench_family(
        c,
        "flood/cycle-even",
        generators::cycle,
        &[64, 256, 1024, 4096],
    );
    bench_family(
        c,
        "flood/cycle-odd",
        |n| generators::cycle(n + 1),
        &[64, 256, 1024, 4096],
    );
    bench_family(
        c,
        "flood/grid",
        |n| generators::grid(n, n),
        &[8, 16, 32, 64],
    );
    bench_family(
        c,
        "flood/hypercube",
        |d| generators::hypercube(d as u32),
        &[4, 6, 8, 10],
    );
    bench_family(c, "flood/complete", generators::complete, &[16, 64, 128]);
    bench_family(
        c,
        "flood/gnp",
        |n| generators::gnp_connected(n, 8.0 / n as f64, 42),
        &[128, 512, 2048],
    );
    bench_family(
        c,
        "flood/preferential-attachment",
        |n| generators::preferential_attachment(n, 3, 42),
        &[128, 512, 2048],
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = flooding_benches
}
criterion_main!(benches);
