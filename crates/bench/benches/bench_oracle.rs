//! Oracle-vs-simulation cost: the double-cover prediction
//! ([`af_core::theory::predict`]) against actually running the flood.
//! Both are near-linear; the oracle pays for the cover construction and a
//! BFS, the simulation pays per round.

use af_core::{theory, AmnesiacFlooding};
use af_graph::{generators, Graph, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn oracle_benches(c: &mut Criterion) {
    let instances: Vec<(&str, Graph)> = vec![
        ("cycle-1025", generators::cycle(1025)),
        ("grid-24x24", generators::grid(24, 24)),
        ("barbell-64", generators::barbell(64)),
        ("pa-1024", generators::preferential_attachment(1024, 3, 11)),
    ];
    let mut group = c.benchmark_group("oracle-vs-simulation");
    for (label, g) in &instances {
        group.bench_with_input(BenchmarkId::new("oracle-predict", label), g, |b, g| {
            b.iter(|| theory::predict(g, [NodeId::new(0)]).termination_round());
        });
        group.bench_with_input(BenchmarkId::new("simulate", label), g, |b, g| {
            b.iter(|| {
                AmnesiacFlooding::single_source(g, NodeId::new(0))
                    .run()
                    .termination_round()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = oracle_benches
}
criterion_main!(benches);
