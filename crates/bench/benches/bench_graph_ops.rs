//! Substrate costs: the graph operations the experiments lean on — BFS,
//! diameter, bipartiteness, double-cover construction — at sweep scale.

use af_graph::{algo, generators, Graph, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn graph_op_benches(c: &mut Criterion) {
    let instances: Vec<(&str, Graph)> = vec![
        ("cycle-4096", generators::cycle(4096)),
        ("grid-64x64", generators::grid(64, 64)),
        ("gnp-2048", generators::gnp_connected(2048, 0.005, 9)),
        ("pa-4096", generators::preferential_attachment(4096, 3, 9)),
    ];
    let mut group = c.benchmark_group("graph-ops");
    for (label, g) in &instances {
        group.bench_with_input(BenchmarkId::new("bfs", label), g, |b, g| {
            b.iter(|| algo::bfs(g, NodeId::new(0)).eccentricity());
        });
        group.bench_with_input(BenchmarkId::new("bipartiteness", label), g, |b, g| {
            b.iter(|| algo::is_bipartite(g));
        });
        group.bench_with_input(BenchmarkId::new("double-cover", label), g, |b, g| {
            b.iter(|| algo::double_cover(g).graph().edge_count());
        });
    }
    // Diameter is O(n·m); bench on smaller instances.
    for (label, g) in [
        ("cycle-512", generators::cycle(512)),
        ("grid-24x24", generators::grid(24, 24)),
    ] {
        group.bench_with_input(BenchmarkId::new("diameter", label), &g, |b, g| {
            b.iter(|| algo::diameter(g));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = graph_op_benches
}
criterion_main!(benches);
