//! Property tests for [`af_graph::partition`]: on random graphs, every
//! strategy and shard count must produce a partition where (1) every node
//! lives in exactly one shard, (2) the cross-shard boundary map is
//! symmetric, and (3) per-shard out-arc counts sum to `2m`.

use af_graph::{generators, Graph, Partition, PartitionStrategy};
use proptest::prelude::*;

fn assert_partition_invariants(g: &Graph, p: &Partition) {
    let k = p.shard_count();

    // (1) Every node is owned by exactly one shard, consistently between
    // the per-shard node lists and the node → shard map.
    let mut owner_count = vec![0u32; g.node_count()];
    for s in 0..k {
        for &v in p.nodes_of(s) {
            owner_count[v.index()] += 1;
            assert_eq!(p.shard_of(v), s, "{v} listed in shard {s}");
        }
    }
    assert!(
        owner_count.iter().all(|&c| c == 1),
        "every node in exactly one shard: {owner_count:?}"
    );

    // (2) The boundary map is symmetric off the diagonal: each cut edge
    // contributes one arc in each direction.
    for s in 0..k {
        for t in (s + 1)..k {
            assert_eq!(
                p.boundary_arcs(s, t),
                p.boundary_arcs(t, s),
                "boundary({s}, {t}) symmetric"
            );
        }
    }

    // (3) Per-shard out-arc counts (local CSR sizes) partition the 2m arcs,
    // and each shard's boundary row accounts for exactly its arcs.
    let total_arcs: usize = (0..k).map(|s| p.arc_count_of(s)).sum();
    assert_eq!(total_arcs, g.arc_count(), "arc counts sum to 2m");
    for s in 0..k {
        let row: u64 = (0..k).map(|t| p.boundary_arcs(s, t)).sum();
        assert_eq!(row, p.arc_count_of(s) as u64, "row sum of shard {s}");
    }

    // The cut is the off-diagonal mass, bounded by all arcs.
    assert!(p.cut_arc_count() <= g.arc_count() as u64);
    assert!((0.0..=1.0).contains(&p.cut_fraction()));
}

/// Deterministic edge cases for the BFS-locality strategy (and, where
/// cheap, the other two): the empty graph, the single node, and shard
/// requests far beyond the node count.
#[test]
fn bfs_strategy_edge_cases() {
    // Empty graph: one (empty) shard regardless of the request.
    for k in [0, 1, 2, 1_000] {
        let g = Graph::empty(0);
        let p = Partition::new(&g, PartitionStrategy::Bfs, k);
        assert_eq!(p.shard_count(), 1, "k = {k}");
        assert!(p.nodes_of(0).is_empty());
        assert_eq!(p.arc_count_of(0), 0);
        assert_eq!(p.cut_arc_count(), 0);
        assert_partition_invariants(&g, &p);
    }

    // Single node: exactly one shard owning it, whatever was requested.
    for k in [0, 1, 7] {
        let g = Graph::empty(1);
        let p = Partition::new(&g, PartitionStrategy::Bfs, k);
        assert_eq!(p.shard_count(), 1, "k = {k}");
        assert_eq!(p.nodes_of(0).len(), 1);
        assert_eq!(p.local_index(0.into()), 0);
        assert_partition_invariants(&g, &p);
    }

    // k > n on connected and disconnected inputs: one node per shard, and
    // the BFS order still covers every component.
    let connected = generators::cycle(5);
    let p = Partition::new(&connected, PartitionStrategy::Bfs, 64);
    assert_eq!(p.shard_count(), 5);
    for s in 0..5 {
        assert_eq!(p.nodes_of(s).len(), 1, "one node per shard");
    }
    assert_partition_invariants(&connected, &p);

    let disconnected =
        Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (4, 5)]).expect("valid edge list");
    for k in [8, 40] {
        let p = Partition::new(&disconnected, PartitionStrategy::Bfs, k);
        assert_eq!(p.shard_count(), 7, "k = {k} clamps to n");
        assert_partition_invariants(&disconnected, &p);
    }

    // The same extremes hold for the other strategies — including a
    // genuinely empty graph, not just a clamped 1-node one.
    for strategy in PartitionStrategy::all() {
        for (g, k) in [
            (Graph::empty(0), 16usize),
            (Graph::empty(1), 16),
            (generators::sparse_connected(5, 0, 9), 16),
        ] {
            let p = Partition::new(&g, strategy, k);
            assert_eq!(p.shard_count(), g.node_count().max(1).min(k));
            assert_partition_invariants(&g, &p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants on random connected graphs for every strategy and a
    /// spread of shard counts including k = 1 and k > n.
    #[test]
    fn invariants_on_random_connected_graphs(
        (n, extra_frac, seed) in (1usize..=256, 0usize..150, any::<u64>()),
        k in 1usize..=12,
    ) {
        let extra = n * extra_frac / 100;
        let g = generators::sparse_connected(n, extra, seed);
        for strategy in PartitionStrategy::all() {
            let p = Partition::new(&g, strategy, k);
            prop_assert_eq!(p.shard_count(), k.min(g.node_count()));
            assert_partition_invariants(&g, &p);
        }
    }

    /// The same on random *disconnected* graphs (independent G(n, p) with
    /// isolated nodes likely): partitioning must not assume connectivity.
    #[test]
    fn invariants_on_random_disconnected_graphs(
        (a, b, seed) in (1usize..=64, 1usize..=64, any::<u64>()),
        p_edge in 0.0f64..0.15,
        k in 1usize..=9,
    ) {
        let g = generators::random_bipartite(a, b, p_edge, seed);
        for strategy in PartitionStrategy::all() {
            let p = Partition::new(&g, strategy, k);
            assert_partition_invariants(&g, &p);
        }
    }

    /// Oversharding: k far beyond n clamps to one node per shard and
    /// never breaks the invariants.
    #[test]
    fn oversharding_is_harmless(n in 0usize..=8, k in 1usize..=40) {
        let g = generators::sparse_connected(n.max(1), n, 3);
        for strategy in PartitionStrategy::all() {
            let p = Partition::new(&g, strategy, k);
            prop_assert_eq!(p.shard_count(), k.min(g.node_count()));
            assert_partition_invariants(&g, &p);
        }
    }
}
