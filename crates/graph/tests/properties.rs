//! Property-based tests for the graph substrate.
//!
//! Random graphs are drawn through the crate's own seeded generators
//! (proptest supplies the parameters and the seed), so every failure is
//! reproducible from the printed shrink values.

use af_graph::algo::{
    self, bipartiteness, connected_components, diameter, double_cover, is_bipartite, is_connected,
    radius, Bipartiteness,
};
use af_graph::{generators, Graph, NodeId};
use proptest::prelude::*;

prop_compose! {
    /// A connected graph with n in [1, 40] and controllable extra edges.
    fn sparse_graph()(
        (n, extra, seed) in (1usize..40, 0usize..60, any::<u64>())
    ) -> Graph {
        generators::sparse_connected(n, extra, seed)
    }
}

prop_compose! {
    /// An arbitrary (possibly disconnected) G(n, p).
    fn any_gnp()((n, seed) in (0usize..30, any::<u64>()), p in 0.0f64..=1.0) -> Graph {
        generators::gnp(n, p, seed)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn construction_is_insertion_order_independent(g in any_gnp(), perm_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut edges: Vec<(usize, usize)> =
            g.edge_list().map(|(u, v)| (v.index(), u.index())).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(perm_seed);
        edges.shuffle(&mut rng);
        let rebuilt = Graph::from_edges(g.node_count(), edges).unwrap();
        prop_assert_eq!(g, rebuilt);
    }

    #[test]
    fn handshake_lemma(g in any_gnp()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric(g in any_gnp()) {
        for v in g.nodes() {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            for &w in nb {
                prop_assert!(g.contains_edge(w, v), "symmetry");
                prop_assert_ne!(w, v, "no self-loops");
            }
        }
    }

    #[test]
    fn arc_structure_is_consistent(g in sparse_graph()) {
        for a in g.arcs() {
            let (tail, head) = g.arc_endpoints(a);
            prop_assert_eq!(g.arc_between(tail, head), Some(a));
            let r = a.reversed();
            prop_assert_eq!(g.arc_endpoints(r), (head, tail));
            prop_assert_eq!(r.reversed(), a);
            prop_assert_eq!(a.edge(), r.edge());
        }
    }

    #[test]
    fn bfs_levels_differ_by_at_most_one_across_edges(g in sparse_graph(), s in any::<u32>()) {
        let source = NodeId::new(s as usize % g.node_count());
        let t = algo::bfs(&g, source);
        for (u, v) in g.edge_list() {
            let du = t.distance(u).unwrap();
            let dv = t.distance(v).unwrap();
            prop_assert!(du.abs_diff(dv) <= 1, "edge {u}-{v}: {du} vs {dv}");
        }
    }

    #[test]
    fn bfs_distance_is_a_metric_on_connected_graphs(g in sparse_graph()) {
        // d(u,w) <= d(u,v) + d(v,w) spot-checked via the distance matrix.
        let m = algo::distance_matrix(&g);
        let n = g.node_count();
        for u in 0..n.min(8) {
            for v in 0..n.min(8) {
                for w in 0..n.min(8) {
                    let (u, v, w) = (NodeId::new(u), NodeId::new(v), NodeId::new(w));
                    let duv = m.get(u, v).unwrap();
                    let dvw = m.get(v, w).unwrap();
                    let duw = m.get(u, w).unwrap();
                    prop_assert!(duw <= duv + dvw);
                }
            }
        }
    }

    #[test]
    fn radius_diameter_inequalities(g in sparse_graph()) {
        let d = diameter(&g).unwrap();
        let r = radius(&g).unwrap();
        prop_assert!(r <= d);
        prop_assert!(d <= 2 * r, "D <= 2R for connected graphs");
    }

    #[test]
    fn bipartiteness_certificates_are_valid(g in any_gnp()) {
        match bipartiteness(&g) {
            Bipartiteness::Bipartite(c) => prop_assert!(c.is_proper(&g)),
            Bipartiteness::OddCycle(cycle) => {
                prop_assert_eq!(cycle.len() % 2, 1);
                prop_assert!(cycle.len() >= 3);
                for i in 0..cycle.len() {
                    let a = cycle[i];
                    let b = cycle[(i + 1) % cycle.len()];
                    prop_assert!(g.contains_edge(a, b));
                }
                let mut uniq = cycle.clone();
                uniq.sort_unstable();
                uniq.dedup();
                prop_assert_eq!(uniq.len(), cycle.len());
            }
        }
    }

    #[test]
    fn double_cover_structure(g in sparse_graph()) {
        let dc = double_cover(&g);
        prop_assert!(is_bipartite(dc.graph()));
        prop_assert_eq!(dc.graph().node_count(), 2 * g.node_count());
        prop_assert_eq!(dc.graph().edge_count(), 2 * g.edge_count());
        let comps = connected_components(dc.graph()).count();
        if is_bipartite(&g) {
            prop_assert_eq!(comps, if g.node_count() == 0 { 0 } else { 2 });
        } else {
            prop_assert_eq!(comps, 1);
        }
    }

    #[test]
    fn girth_is_none_iff_forest(g in any_gnp()) {
        let c = connected_components(&g).count();
        let is_forest = g.edge_count() + c == g.node_count();
        prop_assert_eq!(algo::girth(&g).is_none(), is_forest);
        if let Some(girth) = algo::girth(&g) {
            prop_assert!(girth >= 3);
            // Bipartite graphs have even girth.
            if is_bipartite(&g) {
                prop_assert_eq!(girth % 2, 0);
            }
        }
    }

    #[test]
    fn edge_list_io_roundtrip(g in any_gnp()) {
        let text = af_graph::io::to_edge_list(&g);
        prop_assert_eq!(af_graph::io::from_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn serde_roundtrip(g in any_gnp()) {
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn random_trees_are_trees(n in 1usize..80, seed in any::<u64>()) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.edge_count(), n - 1);
        prop_assert!(is_connected(&g));
        prop_assert!(is_bipartite(&g));
    }

    #[test]
    fn random_regular_is_regular(seed in any::<u64>(), n in 4usize..20, d in 2usize..4) {
        prop_assume!(n * d % 2 == 0);
        let g = generators::random_regular(n, d, seed);
        prop_assert!(g.nodes().all(|v| g.degree(v) == d));
    }

    #[test]
    fn multi_bfs_is_min_of_single_bfs(g in sparse_graph(), raw in proptest::collection::vec(any::<u32>(), 1..4)) {
        let sources: Vec<NodeId> = raw
            .iter()
            .map(|&r| NodeId::new(r as usize % g.node_count()))
            .collect();
        let multi = algo::multi_bfs(&g, sources.iter().copied());
        let singles: Vec<_> = sources.iter().map(|&s| algo::bfs(&g, s)).collect();
        for v in g.nodes() {
            let want = singles.iter().filter_map(|t| t.distance(v)).min();
            prop_assert_eq!(multi.distance(v), want);
        }
    }
}
