//! Dynamic graphs: a delta-edit overlay over the immutable [`Graph`], plus
//! deterministic churn schedules for flooding while the topology changes.
//!
//! The paper's termination theorem is proved for a *fixed* finite connected
//! graph. The natural next question — which of the guarantees survive when
//! the topology changes *between rounds* — needs a substrate for applying
//! edit batches at round boundaries:
//!
//! * [`GraphDelta`] — one batch of edits: edge insertions/deletions and
//!   node joins/leaves, applied atomically at a round boundary;
//! * [`DeltaGraph`] — the overlay itself: a mutable edge set plus a
//!   departed-node mask over a base [`Graph`], rebuilding a fresh CSR
//!   snapshot after each batch so downstream engines keep their
//!   cache-friendly adjacency scans;
//! * [`ChurnSpec`] / [`ChurnKind`] — a compact, `Copy`, exactly-comparable
//!   description of a churn workload (`kind:rate_pm:seed`, parseable from
//!   CLI flags);
//! * [`ChurnSchedule`] — concrete per-round deltas, either hand-built or
//!   generated deterministically from a spec by evolving a shadow edge set
//!   with a seeded RNG;
//! * [`ChurnStream`] — the same generation, streamed one round at a time
//!   in `O(current graph)` memory (byte-identical deltas), for long
//!   floods on large graphs where materializing a whole schedule would
//!   not fit.
//!
//! # Identity discipline
//!
//! Node identifiers are **stable across edits**: a joining node always
//! receives the next unused id (`n`, `n + 1`, …) and a leaving node's id is
//! *retired*, never reused — the node stays in the id space as an isolated,
//! departed vertex. This is what lets a flooding engine keep per-node state
//! (receipt logs, scratch flags) across churn without any renumbering.
//! Edge and arc identifiers, by contrast, are *per-snapshot*: every
//! [`DeltaGraph::apply`] rebuilds the CSR, so `EdgeId`/`ArcId` values from
//! before a batch must be re-looked-up (by endpoint pair) afterwards.
//!
//! # Examples
//!
//! ```
//! use af_graph::dynamic::{DeltaGraph, GraphDelta};
//! use af_graph::generators;
//!
//! let mut dg = DeltaGraph::new(&generators::cycle(4));
//! let applied = dg.apply(&GraphDelta {
//!     delete_edges: vec![(0, 1)],
//!     insert_edges: vec![(0, 2)],
//!     ..GraphDelta::default()
//! });
//! assert_eq!(applied.edges_deleted, 1);
//! assert_eq!(applied.edges_inserted, 1);
//! assert_eq!(dg.graph().edge_count(), 4);
//! assert!(dg.graph().contains_edge(0.into(), 2.into()));
//! assert!(!dg.graph().contains_edge(0.into(), 1.into()));
//! ```

use crate::graph::{Graph, GraphBuilder};
use crate::id::NodeId;
use core::fmt;
use core::str::FromStr;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One batch of topology edits, applied atomically at a round boundary.
///
/// Application order within a batch is fixed and documented on
/// [`DeltaGraph::apply`]: leaves, then edge deletions, then edge
/// insertions, then joins. Fields reference node ids as of the *start* of
/// the batch (joins excepted: each join's attachment list may also name
/// nodes joined earlier in the same batch, since ids are allocated in
/// order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GraphDelta {
    /// Nodes that leave: each is marked departed and loses every incident
    /// edge. Departed ids are retired, never reused.
    pub leave_nodes: Vec<usize>,
    /// Undirected edges to delete, as endpoint pairs in either order.
    pub delete_edges: Vec<(usize, usize)>,
    /// Undirected edges to insert, as endpoint pairs in either order.
    pub insert_edges: Vec<(usize, usize)>,
    /// Nodes that join: one attachment list per new node. The `i`-th entry
    /// becomes node `n + i` (for the pre-batch node count `n`) and is
    /// connected to every listed (alive, in-range) node.
    pub join_nodes: Vec<Vec<usize>>,
}

impl GraphDelta {
    /// Returns `true` if the batch contains no edits at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leave_nodes.is_empty()
            && self.delete_edges.is_empty()
            && self.insert_edges.is_empty()
            && self.join_nodes.is_empty()
    }

    /// Total number of requested edits (joins count once per new node).
    #[must_use]
    pub fn edit_count(&self) -> usize {
        self.leave_nodes.len()
            + self.delete_edges.len()
            + self.insert_edges.len()
            + self.join_nodes.len()
    }
}

/// What one [`DeltaGraph::apply`] actually did — requested edits that were
/// invalid at application time (see the skip rules on `apply`) are counted
/// in `edits_skipped` instead of being applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppliedDelta {
    /// Edges removed (including those removed by a leave's incident sweep).
    pub edges_deleted: usize,
    /// Edges newly inserted (including join attachments).
    pub edges_inserted: usize,
    /// Nodes marked departed.
    pub nodes_left: usize,
    /// Nodes newly added.
    pub nodes_joined: usize,
    /// Requested edits that did not apply (missing edge, duplicate edge,
    /// self-loop, out-of-range or departed endpoint, repeated leave).
    pub edits_skipped: usize,
}

impl AppliedDelta {
    /// Returns `true` if the batch changed nothing (every edit skipped,
    /// or the delta was empty) — the topology, and any ids into it, are
    /// exactly as before.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.edges_deleted == 0
            && self.edges_inserted == 0
            && self.nodes_left == 0
            && self.nodes_joined == 0
    }
}

/// A mutable delta-edit overlay over an immutable base [`Graph`].
///
/// The overlay keeps the *current* topology as an edge set plus a
/// departed-node mask, and materializes a fresh CSR [`Graph`] snapshot
/// after every applied batch, so engines that consume the overlay keep
/// ordinary `O(deg)` adjacency scans between boundaries. Snapshot rebuild
/// costs `O(n + m log m)` per batch — churn is a per-round-boundary event,
/// not a per-message one, so this is off the flooding hot path.
///
/// # Examples
///
/// ```
/// use af_graph::dynamic::{DeltaGraph, GraphDelta};
/// use af_graph::generators;
///
/// let mut dg = DeltaGraph::new(&generators::path(3)); // 0-1-2
/// let applied = dg.apply(&GraphDelta {
///     join_nodes: vec![vec![0, 2]],
///     ..GraphDelta::default()
/// });
/// assert_eq!(applied.nodes_joined, 1);
/// assert_eq!(dg.graph().node_count(), 4);
/// assert_eq!(dg.graph().degree(3.into()), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    departed: Vec<bool>,
    edges: BTreeSet<(u32, u32)>,
    snapshot: Graph,
}

impl DeltaGraph {
    /// Creates an overlay whose current state equals `base`.
    #[must_use]
    pub fn new(base: &Graph) -> Self {
        DeltaGraph {
            departed: vec![false; base.node_count()],
            edges: base
                .edge_list()
                // af-audit: allow(no-lossy-id-cast): node ids are stored as u32
                .map(|(u, v)| (u.index() as u32, v.index() as u32))
                .collect(),
            snapshot: base.clone(),
        }
    }

    /// The current topology as an immutable CSR snapshot. Valid until the
    /// next [`DeltaGraph::apply`]; edge/arc ids are per-snapshot.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.snapshot
    }

    /// Current node count (monotone non-decreasing: departed ids are
    /// retired, not removed).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.departed.len()
    }

    /// Current edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if `v` has left the graph (out-of-range ids are not
    /// departed — they have never existed).
    #[must_use]
    pub fn is_departed(&self, v: NodeId) -> bool {
        self.departed.get(v.index()).copied().unwrap_or(false)
    }

    /// Number of departed (retired) node ids.
    #[must_use]
    pub fn departed_count(&self) -> usize {
        self.departed.iter().filter(|&&d| d).count()
    }

    /// Returns `true` if `v` is in range and has not departed.
    fn is_alive(&self, v: usize) -> bool {
        v < self.departed.len() && !self.departed[v]
    }

    /// Applies one batch and rebuilds the snapshot.
    ///
    /// Edits apply in a fixed order — **leaves, deletions, insertions,
    /// joins** — and invalid edits are *skipped and counted*, never
    /// panicking, so application is total and idempotent:
    ///
    /// * a leave of an out-of-range or already-departed id is skipped;
    /// * a deletion of an absent edge is skipped;
    /// * an insertion that is a self-loop, a duplicate, or touches an
    ///   out-of-range/departed endpoint is skipped;
    /// * a join always adds its node; attachment edges follow the
    ///   insertion rules individually (a join may legally attach to a node
    ///   joined earlier in the same batch).
    pub fn apply(&mut self, delta: &GraphDelta) -> AppliedDelta {
        let mut applied = AppliedDelta::default();

        // All leaves sweep incident edges in ONE pass over the edge set,
        // so a boundary costs O(m), not O(leaves · m). Already-departed
        // endpoints have no incident edges left, so the departed mask is
        // a safe retain predicate.
        let mut any_left = false;
        for &v in &delta.leave_nodes {
            if !self.is_alive(v) {
                applied.edits_skipped += 1;
                continue;
            }
            self.departed[v] = true;
            any_left = true;
            applied.nodes_left += 1;
        }
        if any_left {
            let before = self.edges.len();
            let departed = &self.departed;
            self.edges
                .retain(|&(a, b)| !departed[a as usize] && !departed[b as usize]);
            applied.edges_deleted += before - self.edges.len();
        }

        for &(u, v) in &delta.delete_edges {
            // af-audit: allow(no-lossy-id-cast): endpoints index `departed`,
            // which is sized by the node count, itself bounded by u32::MAX
            let key = (u.min(v) as u32, u.max(v) as u32);
            if self.edges.remove(&key) {
                applied.edges_deleted += 1;
            } else {
                applied.edits_skipped += 1;
            }
        }

        for &(u, v) in &delta.insert_edges {
            if self.try_insert(u, v) {
                applied.edges_inserted += 1;
            } else {
                applied.edits_skipped += 1;
            }
        }

        for attach in &delta.join_nodes {
            let new = self.departed.len();
            self.departed.push(false);
            applied.nodes_joined += 1;
            for &t in attach {
                if self.try_insert(new, t) {
                    applied.edges_inserted += 1;
                } else {
                    applied.edits_skipped += 1;
                }
            }
        }

        // A no-op batch leaves the snapshot (and every id into it) valid.
        if !applied.is_noop() {
            self.rebuild();
        }
        applied
    }

    /// Inserts `{u, v}` if valid (alive distinct endpoints, not present).
    fn try_insert(&mut self, u: usize, v: usize) -> bool {
        if u == v || !self.is_alive(u) || !self.is_alive(v) {
            return false;
        }
        // af-audit: allow(no-lossy-id-cast): is_alive bounds both endpoints
        // by the node count, itself bounded by u32::MAX
        self.edges.insert((u.min(v) as u32, u.max(v) as u32))
    }

    /// Rematerializes the CSR snapshot from the edge set.
    fn rebuild(&mut self) {
        let mut b = GraphBuilder::new(self.departed.len());
        for &(u, v) in &self.edges {
            b.add_edge(u as usize, v as usize)
                // af-audit: allow(no-unwrap-in-lib): every insert path validates
                // endpoints against the same node count the builder is sized to
                .expect("overlay edges are valid by construction");
        }
        self.snapshot = b.build();
    }
}

/// The kind of topology churn a generated schedule exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChurnKind {
    /// Edge flips only: every churn round deletes and inserts the same
    /// number of edges, keeping `n` and (roughly) `m` constant.
    Edge,
    /// Node churn only: joins (each attaching to a few alive nodes) paired
    /// with leaves, keeping the alive population roughly constant.
    Nodes,
    /// Edge flips every churn round, plus probabilistic joins/leaves.
    Mix,
}

impl ChurnKind {
    /// The CLI-stable name (`"edge"`, `"nodes"`, `"mix"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChurnKind::Edge => "edge",
            ChurnKind::Nodes => "nodes",
            ChurnKind::Mix => "mix",
        }
    }
}

/// A compact, copyable description of a churn workload:
/// `kind:rate_pm:seed`, where `rate_pm` is the per-round edit rate in
/// **per mille** of the current edge count (integer, so specs stay `Eq`
/// and hash/compare exactly). `rate_pm == 0` means *no churn* and renders
/// as `"none"`.
///
/// # Examples
///
/// ```
/// use af_graph::dynamic::{ChurnKind, ChurnSpec};
///
/// let spec: ChurnSpec = "mix:50:7".parse()?;
/// assert_eq!(spec.kind, ChurnKind::Mix);
/// assert_eq!(spec.rate_pm, 50); // 5% of current edges per churn round
/// assert_eq!(spec.to_string(), "mix:50:7");
/// assert_eq!(ChurnSpec::NONE.to_string(), "none");
/// assert!("none".parse::<ChurnSpec>()?.is_none());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChurnSpec {
    /// What gets churned.
    pub kind: ChurnKind,
    /// Per-round edit budget, in per mille (‰) of the current edge count,
    /// clamped to `0..=1000` at parse time. `0` disables churn.
    pub rate_pm: u32,
    /// Seed for the schedule generator's RNG.
    pub seed: u64,
}

impl ChurnSpec {
    /// The no-churn spec: rate 0, rendered as `"none"`.
    pub const NONE: ChurnSpec = ChurnSpec {
        kind: ChurnKind::Edge,
        rate_pm: 0,
        seed: 0,
    };

    /// Returns `true` if this spec generates no churn at all.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.rate_pm == 0
    }
}

impl fmt::Display for ChurnSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            f.write_str("none")
        } else {
            write!(f, "{}:{}:{}", self.kind.name(), self.rate_pm, self.seed)
        }
    }
}

impl FromStr for ChurnSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(ChurnSpec::NONE);
        }
        let mut parts = s.split(':');
        let (kind, rate, seed) = (parts.next(), parts.next(), parts.next());
        if parts.next().is_some() {
            return Err(format!("churn spec '{s}': expected kind:rate_pm:seed"));
        }
        let kind = match kind {
            Some("edge") => ChurnKind::Edge,
            Some("nodes") => ChurnKind::Nodes,
            Some("mix") => ChurnKind::Mix,
            other => {
                return Err(format!(
                    "churn kind '{}': use edge, nodes, mix, or none",
                    other.unwrap_or("")
                ))
            }
        };
        let rate_pm: u32 = rate
            .ok_or_else(|| format!("churn spec '{s}': missing rate_pm"))?
            .parse()
            .map_err(|_| format!("churn spec '{s}': rate_pm must be an integer"))?;
        if rate_pm > 1000 {
            return Err(format!("churn rate_pm {rate_pm} exceeds 1000 (= 100%)"));
        }
        let seed: u64 = seed
            .ok_or_else(|| format!("churn spec '{s}': missing seed"))?
            .parse()
            .map_err(|_| format!("churn spec '{s}': seed must be an integer"))?;
        Ok(ChurnSpec {
            kind,
            rate_pm,
            seed,
        })
    }
}

/// Concrete per-round edit batches: the schedule a dynamic flooding engine
/// consumes. The delta keyed by round `r` is applied at the boundary
/// *before* round `r` executes (so a delta at round 1 edits the graph
/// before any message moves).
///
/// Schedules are plain data — hand-buildable for tests and replay, or
/// generated deterministically from a [`ChurnSpec`] by
/// [`ChurnSchedule::generate`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    deltas: BTreeMap<u32, GraphDelta>,
}

impl ChurnSchedule {
    /// The empty schedule: a dynamic flood under it is bit-identical to a
    /// static one.
    #[must_use]
    pub fn empty() -> Self {
        ChurnSchedule::default()
    }

    /// Sets the delta applied before round `round` (replacing any previous
    /// delta at that round). Empty deltas are dropped.
    pub fn insert(&mut self, round: u32, delta: GraphDelta) {
        if delta.is_empty() {
            self.deltas.remove(&round);
        } else {
            self.deltas.insert(round, delta);
        }
    }

    /// The delta applied before round `round`, if any.
    #[must_use]
    pub fn delta_at(&self, round: u32) -> Option<&GraphDelta> {
        self.deltas.get(&round)
    }

    /// Returns `true` if the schedule contains no deltas.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of rounds with a non-empty delta.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// The largest round with a delta, if any.
    #[must_use]
    pub fn max_round(&self) -> Option<u32> {
        self.deltas.keys().next_back().copied()
    }

    /// Iterates over `(round, delta)` pairs in round order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &GraphDelta)> {
        self.deltas.iter().map(|(&r, d)| (r, d))
    }

    /// Generates the deterministic schedule `spec` describes for floods on
    /// `base` of up to `horizon` rounds.
    ///
    /// The generator evolves a shadow copy of the topology round by round
    /// (mirroring [`DeltaGraph::apply`]'s order), so every emitted edit is
    /// valid at its application time: deletions name existing edges,
    /// insertions name absent ones between alive nodes, leaves name alive
    /// nodes. Per churn round the edit budget is
    /// `max(1, m · rate_pm / 1000)` edge flips (for [`ChurnKind::Edge`] /
    /// [`ChurnKind::Mix`]) and `max(1, alive · rate_pm / 1000)` join+leave
    /// pairs (for [`ChurnKind::Nodes`]; [`ChurnKind::Mix`] instead rolls a
    /// single join+leave pair with probability `rate_pm / 1000`). At least
    /// two alive nodes are always preserved. A `rate_pm` of 0 (or a zero
    /// `horizon`) yields the empty schedule.
    /// Materializing the whole horizon costs
    /// `O(horizon · budget)` memory — fine for tests, experiments, and
    /// replay, but for long floods on large graphs prefer the streaming
    /// [`ChurnStream`], which produces byte-identical deltas one round at
    /// a time in `O(current graph)` memory.
    #[must_use]
    pub fn generate(base: &Graph, spec: ChurnSpec, horizon: u32) -> Self {
        let mut schedule = ChurnSchedule::empty();
        if spec.is_none() || horizon == 0 {
            return schedule;
        }
        let mut stream = ChurnStream::new(base, spec, horizon);
        for round in 1..=horizon {
            if let Some(delta) = stream.delta_before(round) {
                schedule.insert(round, delta);
            }
        }
        schedule
    }
}

/// A streaming churn generator: the same deterministic per-round deltas
/// as [`ChurnSchedule::generate`] (byte-identical for the same
/// `(base, spec, horizon)` — the test suite pins this), produced one
/// round at a time so memory stays `O(current graph)` however long the
/// horizon. This is what the dynamic flooding engine consumes for
/// generated (as opposed to hand-built) schedules, keeping full-scale
/// benchmark graphs churnable.
#[derive(Debug, Clone)]
pub struct ChurnStream {
    spec: ChurnSpec,
    horizon: u32,
    /// The next round the shadow state has not yet produced.
    next_round: u32,
    rng: ChaCha8Rng,
    shadow: Shadow,
}

impl ChurnStream {
    /// Creates the stream for floods on `base` of up to `horizon` rounds.
    #[must_use]
    pub fn new(base: &Graph, spec: ChurnSpec, horizon: u32) -> Self {
        ChurnStream {
            spec,
            horizon,
            next_round: 1,
            rng: ChaCha8Rng::seed_from_u64(spec.seed),
            shadow: Shadow::new(base),
        }
    }

    /// The spec this stream generates from.
    #[must_use]
    pub fn spec(&self) -> ChurnSpec {
        self.spec
    }

    /// The last round with churn.
    #[must_use]
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The delta applied at the boundary before `round`, or `None` past
    /// the horizon / for a zero-rate spec. Rounds must be requested in
    /// increasing order; skipped-over rounds are generated and discarded
    /// so the emitted sequence always equals the materialized schedule's.
    pub fn delta_before(&mut self, round: u32) -> Option<GraphDelta> {
        if self.spec.is_none() || round > self.horizon || round < self.next_round {
            return None;
        }
        let mut delta = GraphDelta::default();
        while self.next_round <= round {
            delta = self.shadow.round_delta(&mut self.rng, self.spec);
            self.next_round += 1;
        }
        if delta.is_empty() {
            None
        } else {
            Some(delta)
        }
    }
}

/// The generator's shadow topology: an indexable edge list (uniform
/// deletion sampling in `O(log m)`) plus the alive-node roster, which is
/// the single source of liveness truth.
#[derive(Debug, Clone)]
struct Shadow {
    n: usize,
    alive: Vec<u32>,
    edge_vec: Vec<(u32, u32)>,
    edge_set: BTreeSet<(u32, u32)>,
}

impl Shadow {
    fn new(base: &Graph) -> Self {
        let edge_vec: Vec<(u32, u32)> = base
            .edge_list()
            // af-audit: allow(no-lossy-id-cast): node ids are stored as u32
            .map(|(u, v)| (u.index() as u32, v.index() as u32))
            .collect();
        Shadow {
            n: base.node_count(),
            // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
            alive: (0..base.node_count() as u32).collect(),
            edge_set: edge_vec.iter().copied().collect(),
            edge_vec,
        }
    }

    /// Produces one churn round's delta per the spec's kind and edit
    /// budget (see [`ChurnSchedule::generate`]'s documentation), applying
    /// the edits to the shadow state in [`DeltaGraph::apply`]'s order —
    /// leaves before edge flips before joins — so every emitted edit is
    /// valid at its application time.
    fn round_delta(&mut self, rng: &mut ChaCha8Rng, spec: ChurnSpec) -> GraphDelta {
        let mut delta = GraphDelta::default();
        match spec.kind {
            ChurnKind::Edge => {
                self.edge_flips(rng, spec.rate_pm, &mut delta);
            }
            ChurnKind::Nodes => {
                // All leaves before all joins, mirroring the apply order
                // (a leave must never name a node joined in the same
                // batch — joins apply last).
                let budget = (self.alive.len() * spec.rate_pm as usize / 1000).max(1);
                self.leave_batch(rng, budget, &mut delta);
                for _ in 0..budget {
                    self.join_one(rng, &mut delta);
                }
            }
            ChurnKind::Mix => {
                if rng.gen_bool(f64::from(spec.rate_pm) / 1000.0) {
                    self.leave_batch(rng, 1, &mut delta);
                }
                self.edge_flips(rng, spec.rate_pm, &mut delta);
                if rng.gen_bool(f64::from(spec.rate_pm) / 1000.0) {
                    self.join_one(rng, &mut delta);
                }
            }
        }
        delta
    }

    /// Deletes and inserts `max(1, m · rate_pm / 1000)` edges each.
    fn edge_flips(&mut self, rng: &mut ChaCha8Rng, rate_pm: u32, delta: &mut GraphDelta) {
        let budget = (self.edge_vec.len() * rate_pm as usize / 1000).max(1);
        for _ in 0..budget {
            if self.edge_vec.is_empty() {
                break;
            }
            let i = rng.gen_range(0..self.edge_vec.len());
            let e = self.edge_vec.swap_remove(i);
            self.edge_set.remove(&e);
            delta.delete_edges.push((e.0 as usize, e.1 as usize));
        }
        for _ in 0..budget {
            if let Some((u, v)) = self.sample_non_edge(rng) {
                self.insert(u, v);
                delta.insert_edges.push((u as usize, v as usize));
            }
        }
    }

    /// A uniform-ish absent pair of alive nodes (bounded rejection
    /// sampling; `None` if the alive subgraph is too dense or too small).
    fn sample_non_edge(&self, rng: &mut ChaCha8Rng) -> Option<(u32, u32)> {
        if self.alive.len() < 2 {
            return None;
        }
        for _ in 0..32 {
            let u = self.alive[rng.gen_range(0..self.alive.len())];
            let v = self.alive[rng.gen_range(0..self.alive.len())];
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if !self.edge_set.contains(&key) {
                return Some(key);
            }
        }
        None
    }

    fn insert(&mut self, u: u32, v: u32) {
        let key = (u.min(v), u.max(v));
        if self.edge_set.insert(key) {
            self.edge_vec.push(key);
        }
    }

    /// Retires up to `count` random alive nodes (preserving at least
    /// two), sweeping all their incident edges in ONE pass — `O(m log
    /// leaves)` per batch, not `O(leaves · m)`. The RNG draws one sample
    /// per leave, same as retiring them one at a time.
    fn leave_batch(&mut self, rng: &mut ChaCha8Rng, count: usize, delta: &mut GraphDelta) {
        let mut leaving: BTreeSet<u32> = BTreeSet::new();
        for _ in 0..count {
            if self.alive.len() <= 2 {
                break;
            }
            let i = rng.gen_range(0..self.alive.len());
            let v = self.alive.swap_remove(i);
            leaving.insert(v);
            delta.leave_nodes.push(v as usize);
        }
        if !leaving.is_empty() {
            self.edge_vec
                .retain(|&(a, b)| !leaving.contains(&a) && !leaving.contains(&b));
            self.edge_set
                .retain(|&(a, b)| !leaving.contains(&a) && !leaving.contains(&b));
        }
    }

    /// Joins one new node, attached to up to three distinct alive nodes.
    fn join_one(&mut self, rng: &mut ChaCha8Rng, delta: &mut GraphDelta) {
        if self.alive.is_empty() {
            return;
        }
        // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
        let new = self.n as u32;
        self.n += 1;
        let mut attach: Vec<u32> = Vec::new();
        for _ in 0..3.min(self.alive.len()) {
            let t = self.alive[rng.gen_range(0..self.alive.len())];
            if !attach.contains(&t) {
                attach.push(t);
            }
        }
        self.alive.push(new);
        for &t in &attach {
            self.insert(new, t);
        }
        delta
            .join_nodes
            .push(attach.into_iter().map(|t| t as usize).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::generators;

    #[test]
    fn empty_delta_is_a_no_op() {
        let g = generators::petersen();
        let mut dg = DeltaGraph::new(&g);
        let applied = dg.apply(&GraphDelta::default());
        assert_eq!(applied, AppliedDelta::default());
        assert_eq!(dg.graph(), &g);
        assert!(GraphDelta::default().is_empty());
        assert_eq!(GraphDelta::default().edit_count(), 0);
    }

    #[test]
    fn edge_edits_apply_and_invalid_ones_skip() {
        let mut dg = DeltaGraph::new(&generators::path(4)); // 0-1-2-3
        let applied = dg.apply(&GraphDelta {
            delete_edges: vec![(1, 0), (0, 3)], // second is absent
            insert_edges: vec![(3, 0), (3, 0), (2, 2), (0, 9)],
            ..GraphDelta::default()
        });
        assert_eq!(applied.edges_deleted, 1);
        assert_eq!(applied.edges_inserted, 1);
        assert_eq!(applied.edits_skipped, 4);
        assert!(dg.graph().contains_edge(0.into(), 3.into()));
        assert!(!dg.graph().contains_edge(0.into(), 1.into()));
        assert_eq!(dg.edge_count(), 3);
    }

    #[test]
    fn leave_retires_the_id_and_drops_incident_edges() {
        let mut dg = DeltaGraph::new(&generators::star(5)); // hub 0
        let applied = dg.apply(&GraphDelta {
            leave_nodes: vec![0, 0, 99],
            ..GraphDelta::default()
        });
        assert_eq!(applied.nodes_left, 1);
        assert_eq!(applied.edges_deleted, 4);
        assert_eq!(applied.edits_skipped, 2); // repeat + out of range
        assert_eq!(dg.node_count(), 5, "ids are retired, not removed");
        assert!(dg.is_departed(0.into()));
        assert!(!dg.is_departed(1.into()));
        assert_eq!(dg.departed_count(), 1);
        assert_eq!(dg.edge_count(), 0);

        // Inserts touching a departed node are skipped.
        let applied = dg.apply(&GraphDelta {
            insert_edges: vec![(0, 1), (1, 2)],
            ..GraphDelta::default()
        });
        assert_eq!(applied.edges_inserted, 1);
        assert_eq!(applied.edits_skipped, 1);
    }

    #[test]
    fn joins_allocate_fresh_ids_in_order() {
        let mut dg = DeltaGraph::new(&generators::path(2));
        let applied = dg.apply(&GraphDelta {
            join_nodes: vec![vec![0, 1], vec![2]], // second attaches to first
            ..GraphDelta::default()
        });
        assert_eq!(applied.nodes_joined, 2);
        assert_eq!(applied.edges_inserted, 3);
        assert_eq!(dg.node_count(), 4);
        assert!(dg.graph().contains_edge(2.into(), 3.into()));
        assert!(algo::is_connected(dg.graph()));
    }

    #[test]
    fn departed_ids_are_never_reused() {
        let mut dg = DeltaGraph::new(&generators::path(3));
        dg.apply(&GraphDelta {
            leave_nodes: vec![2],
            ..GraphDelta::default()
        });
        dg.apply(&GraphDelta {
            join_nodes: vec![vec![0]],
            ..GraphDelta::default()
        });
        assert_eq!(dg.node_count(), 4, "join took id 3, not the retired 2");
        assert!(dg.is_departed(2.into()));
        assert!(!dg.is_departed(3.into()));
    }

    #[test]
    fn churn_spec_parses_and_displays() {
        for (text, kind, rate, seed) in [
            ("edge:50:7", ChurnKind::Edge, 50, 7),
            ("nodes:10:0", ChurnKind::Nodes, 10, 0),
            ("mix:1000:42", ChurnKind::Mix, 1000, 42),
        ] {
            let spec: ChurnSpec = text.parse().unwrap();
            assert_eq!(spec.kind, kind);
            assert_eq!(spec.rate_pm, rate);
            assert_eq!(spec.seed, seed);
            assert_eq!(spec.to_string(), text);
        }
        assert_eq!("none".parse::<ChurnSpec>().unwrap(), ChurnSpec::NONE);
        assert!(ChurnSpec::NONE.is_none());
        assert_eq!(ChurnSpec::NONE.to_string(), "none");
        for bad in [
            "",
            "edge",
            "edge:5",
            "warp:5:1",
            "edge:x:1",
            "edge:5:x",
            "edge:1001:1",
            "edge:5:1:9",
        ] {
            assert!(bad.parse::<ChurnSpec>().is_err(), "{bad}");
        }
    }

    #[test]
    fn zero_rate_and_zero_horizon_generate_nothing() {
        let g = generators::cycle(8);
        assert!(ChurnSchedule::generate(&g, ChurnSpec::NONE, 100).is_empty());
        let spec: ChurnSpec = "edge:100:1".parse().unwrap();
        assert!(ChurnSchedule::generate(&g, spec, 0).is_empty());
        assert_eq!(ChurnSchedule::empty().max_round(), None);
        assert_eq!(ChurnSchedule::empty().len(), 0);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let g = generators::sparse_connected(40, 40, 3);
        let spec: ChurnSpec = "mix:100:9".parse().unwrap();
        let a = ChurnSchedule::generate(&g, spec, 32);
        let b = ChurnSchedule::generate(&g, spec, 32);
        assert_eq!(a, b);
        let other = ChurnSchedule::generate(&g, ChurnSpec { seed: 10, ..spec }, 32);
        assert_ne!(a, other, "different seed, different schedule");
        assert!(a.max_round().unwrap() <= 32);
    }

    #[test]
    fn generated_edits_are_always_valid_at_application_time() {
        // Replaying every generated delta through DeltaGraph must apply
        // every edit: the generator's shadow state mirrors `apply` exactly.
        for (kind, seed) in [("edge", 1u64), ("nodes", 2), ("mix", 3)] {
            let g = generators::sparse_connected(30, 20, seed);
            let spec: ChurnSpec = format!("{kind}:150:{seed}").parse().unwrap();
            let schedule = ChurnSchedule::generate(&g, spec, 40);
            assert!(!schedule.is_empty());
            let mut dg = DeltaGraph::new(&g);
            for (round, delta) in schedule.iter() {
                assert!(round >= 1);
                let applied = dg.apply(delta);
                assert_eq!(
                    applied.edits_skipped, 0,
                    "{kind} round {round}: generator emitted an invalid edit"
                );
            }
            // Node churn really moved the population.
            if kind != "edge" {
                assert!(dg.departed_count() > 0);
                assert!(dg.node_count() > g.node_count());
            }
        }
    }

    #[test]
    fn edge_churn_preserves_node_count_and_roughly_m() {
        let g = generators::cycle(24);
        let spec: ChurnSpec = "edge:100:5".parse().unwrap();
        let schedule = ChurnSchedule::generate(&g, spec, 16);
        let mut dg = DeltaGraph::new(&g);
        for (_, delta) in schedule.iter() {
            assert!(delta.leave_nodes.is_empty());
            assert!(delta.join_nodes.is_empty());
            dg.apply(delta);
        }
        assert_eq!(dg.node_count(), 24);
        // Insertion is rejection-sampled, so m can only shrink slightly.
        assert!(dg.edge_count() <= 24);
        assert!(dg.edge_count() >= 12);
    }

    #[test]
    fn stream_is_byte_identical_to_the_materialized_schedule() {
        for kind in ["edge", "nodes", "mix"] {
            let g = generators::sparse_connected(36, 24, 5);
            let spec: ChurnSpec = format!("{kind}:120:9").parse().unwrap();
            let schedule = ChurnSchedule::generate(&g, spec, 24);
            let mut stream = ChurnStream::new(&g, spec, 24);
            assert_eq!(stream.spec(), spec);
            assert_eq!(stream.horizon(), 24);
            for round in 1..=26 {
                let streamed = stream.delta_before(round);
                let materialized = schedule.delta_at(round).cloned();
                assert_eq!(streamed, materialized, "{kind} round {round}");
            }
            // Re-requesting a past round yields nothing (state advanced).
            assert_eq!(stream.delta_before(3), None);
        }
        // Zero-rate streams are silent.
        let g = generators::cycle(6);
        let mut none = ChurnStream::new(&g, ChurnSpec::NONE, 10);
        assert_eq!(none.delta_before(1), None);
    }

    #[test]
    fn stream_fast_forwards_over_skipped_rounds() {
        // Asking only for round 5 must yield the same delta as walking
        // rounds 1..=5 (intermediate state still evolves).
        let g = generators::sparse_connected(30, 20, 7);
        let spec: ChurnSpec = "edge:200:3".parse().unwrap();
        let schedule = ChurnSchedule::generate(&g, spec, 8);
        let mut stream = ChurnStream::new(&g, spec, 8);
        assert_eq!(stream.delta_before(5), schedule.delta_at(5).cloned());
        assert_eq!(stream.delta_before(6), schedule.delta_at(6).cloned());
    }

    #[test]
    fn schedule_insert_replaces_and_drops_empty() {
        let mut s = ChurnSchedule::empty();
        s.insert(
            3,
            GraphDelta {
                delete_edges: vec![(0, 1)],
                ..GraphDelta::default()
            },
        );
        assert_eq!(s.len(), 1);
        assert!(s.delta_at(3).is_some());
        assert!(s.delta_at(2).is_none());
        s.insert(3, GraphDelta::default());
        assert!(s.is_empty(), "empty delta clears the slot");
    }
}
