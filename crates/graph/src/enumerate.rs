//! Exhaustive enumeration of labelled connected graphs.
//!
//! Theorem 3.1 of the paper is a ∀-statement over all finite graphs; the
//! empirical analogue is to check it on *every* connected graph of small
//! order. [`connected_graphs`] streams all labelled connected simple graphs
//! on `n` nodes by iterating bitmasks over the `C(n, 2)` possible edges
//! (`2^15 = 32768` masks at `n = 6`, of which 26704 are connected).

use crate::graph::Graph;

/// Maximum node count accepted by [`connected_graphs`]; `C(9,2) = 36` edge
/// slots is the largest mask that enumerates in reasonable time, and callers
/// are expected to stay well below that in tests.
pub const MAX_ENUMERATION_NODES: usize = 9;

/// Iterator over all labelled connected simple graphs on `n` nodes.
///
/// Graphs are produced in increasing order of their edge bitmask, where bit
/// `k` corresponds to the `k`-th pair in lexicographic order
/// `(0,1), (0,2), …, (n-2, n-1)`.
///
/// # Examples
///
/// ```
/// use af_graph::enumerate::connected_graphs;
///
/// // There are 4 labelled connected graphs on 3 nodes:
/// // three paths and the triangle.
/// assert_eq!(connected_graphs(3).count(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct ConnectedGraphs {
    n: usize,
    pairs: Vec<(usize, usize)>,
    next_mask: u64,
    end_mask: u64,
}

/// Creates an iterator over all labelled connected simple graphs on `n`
/// nodes. See [`ConnectedGraphs`].
///
/// # Panics
///
/// Panics if `n > MAX_ENUMERATION_NODES` (the mask space would be
/// astronomically large) or `n == 0`.
#[must_use]
pub fn connected_graphs(n: usize) -> ConnectedGraphs {
    assert!(n >= 1, "enumeration needs at least one node");
    assert!(
        n <= MAX_ENUMERATION_NODES,
        "enumeration beyond n = {MAX_ENUMERATION_NODES} is intractable (asked for {n})"
    );
    let mut pairs = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u, v));
        }
    }
    let bits = pairs.len();
    ConnectedGraphs {
        n,
        pairs,
        next_mask: 0,
        end_mask: 1u64 << bits,
    }
}

impl ConnectedGraphs {
    /// Decodes a specific edge bitmask into a graph (connected or not).
    fn decode(&self, mask: u64) -> Graph {
        let edges = self
            .pairs
            .iter()
            .enumerate()
            .filter(|(k, _)| mask >> k & 1 == 1)
            .map(|(_, &p)| p);
        // af-audit: allow(no-unwrap-in-lib): pairs came from 0..n without loops
        Graph::from_edges(self.n, edges).expect("enumerated edges are valid")
    }

    /// Connectivity check on the bitmask itself (cheaper than building the
    /// graph first and discarding it).
    fn mask_is_connected(&self, mask: u64) -> bool {
        let n = self.n;
        if n == 1 {
            return true;
        }
        let mut adj = vec![0u16; n];
        for (k, &(u, v)) in self.pairs.iter().enumerate() {
            if mask >> k & 1 == 1 {
                adj[u] |= 1 << v;
                adj[v] |= 1 << u;
            }
        }
        let mut seen: u16 = 1;
        let mut frontier: u16 = 1;
        while frontier != 0 {
            let mut next: u16 = 0;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= adj[v];
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen.count_ones() as usize == n
    }
}

impl Iterator for ConnectedGraphs {
    type Item = Graph;

    fn next(&mut self) -> Option<Graph> {
        while self.next_mask < self.end_mask {
            let mask = self.next_mask;
            self.next_mask += 1;
            if self.mask_is_connected(mask) {
                return Some(self.decode(mask));
            }
        }
        None
    }
}

/// The number of labelled connected graphs on `n` nodes, for cross-checking
/// enumeration completeness (OEIS A001187).
#[must_use]
pub fn connected_graph_count(n: usize) -> Option<u64> {
    // 1, 1, 1, 4, 38, 728, 26704, 1866256, 251548592
    [1, 1, 1, 4, 38, 728, 26_704, 1_866_256, 251_548_592]
        .get(n)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn counts_match_oeis() {
        for n in 1..=5 {
            let count = connected_graphs(n).count() as u64;
            assert_eq!(Some(count), connected_graph_count(n), "n = {n}");
        }
    }

    #[test]
    fn six_node_count_matches_oeis() {
        assert_eq!(connected_graphs(6).count() as u64, 26_704);
    }

    #[test]
    fn every_enumerated_graph_is_connected() {
        for g in connected_graphs(4) {
            assert!(algo::is_connected(&g));
            assert_eq!(g.node_count(), 4);
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let graphs: Vec<_> = connected_graphs(4).collect();
        for (i, a) in graphs.iter().enumerate() {
            for b in &graphs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn oversize_enumeration_panics() {
        let _ = connected_graphs(10);
    }

    #[test]
    fn single_node_enumeration() {
        let graphs: Vec<_> = connected_graphs(1).collect();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].node_count(), 1);
    }
}
