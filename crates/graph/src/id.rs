//! Strongly-typed identifiers for nodes, undirected edges, and directed arcs.
//!
//! Identifiers are thin `u32` newtypes ([C-NEWTYPE]): they are `Copy`, cheap
//! to hash, and statically distinguish the three index spaces a flooding
//! simulator juggles (node indices, undirected edge indices, and
//! per-direction arc indices).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use core::fmt;

/// Identifier of a node (vertex) in a [`Graph`](crate::Graph).
///
/// Nodes of a graph with `n` vertices are indexed `0..n`.
///
/// # Examples
///
/// ```
/// use af_graph::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v, 3.into());
/// assert_eq!(v.to_string(), "3");
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        // af-audit: allow(no-unwrap-in-lib): documented panic (see # Panics)
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the index as a `usize`, suitable for indexing slices.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId::new(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an undirected edge in a [`Graph`](crate::Graph).
///
/// Edges of a graph with `m` edges are indexed `0..m` in lexicographic order
/// of their canonical `(min, max)` endpoint pair.
///
/// # Examples
///
/// ```
/// use af_graph::{generators, EdgeId};
///
/// let g = generators::path(3); // edges 0-1 and 1-2
/// let e = EdgeId::new(1);
/// assert_eq!(g.endpoints(e), (1.into(), 2.into()));
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge identifier from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        // af-audit: allow(no-unwrap-in-lib): documented panic (see # Panics)
        EdgeId(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }

    /// Returns the index as a `usize`, suitable for indexing slices.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(index: usize) -> Self {
        EdgeId::new(index)
    }
}

impl From<EdgeId> for usize {
    #[inline]
    fn from(id: EdgeId) -> usize {
        id.index()
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Orientation of an arc relative to its undirected edge's canonical
/// `(min, max)` endpoint order.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Direction {
    /// From the smaller-indexed endpoint to the larger-indexed endpoint.
    Forward,
    /// From the larger-indexed endpoint to the smaller-indexed endpoint.
    Reverse,
}

impl Direction {
    /// Returns the opposite direction.
    ///
    /// # Examples
    ///
    /// ```
    /// use af_graph::Direction;
    /// assert_eq!(Direction::Forward.reversed(), Direction::Reverse);
    /// ```
    #[inline]
    #[must_use]
    pub fn reversed(self) -> Self {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// Identifier of a *directed arc*: an undirected edge together with a
/// traversal direction.
///
/// A graph with `m` edges has exactly `2m` arcs, indexed `0..2m`; the arc
/// with index `2 * e` traverses edge `e` in [`Direction::Forward`] and
/// `2 * e + 1` traverses it in [`Direction::Reverse`]. Flooding simulators
/// use arcs as the unit of "message in flight on an edge, in a direction".
///
/// # Examples
///
/// ```
/// use af_graph::{ArcId, Direction, EdgeId};
///
/// let a = ArcId::new(EdgeId::new(2), Direction::Reverse);
/// assert_eq!(a.index(), 5);
/// assert_eq!(a.edge(), EdgeId::new(2));
/// assert_eq!(a.direction(), Direction::Reverse);
/// assert_eq!(a.reversed().index(), 4);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct ArcId(u32);

impl ArcId {
    /// Creates the arc traversing `edge` in `direction`.
    #[inline]
    #[must_use]
    pub fn new(edge: EdgeId, direction: Direction) -> Self {
        let bit = match direction {
            Direction::Forward => 0,
            Direction::Reverse => 1,
        };
        // af-audit: allow(no-lossy-id-cast): edge ids are stored as u32, so
        // the round-trip through usize is lossless
        ArcId((edge.index() as u32) * 2 + bit)
    }

    /// Creates an arc identifier directly from a raw `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        // af-audit: allow(no-unwrap-in-lib): documented panic (see # Panics)
        ArcId(u32::try_from(index).expect("arc index exceeds u32::MAX"))
    }

    /// Returns the raw index in `0..2m`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the undirected edge this arc traverses.
    #[inline]
    #[must_use]
    pub fn edge(self) -> EdgeId {
        EdgeId::new((self.0 / 2) as usize)
    }

    /// Returns the traversal direction relative to the edge's canonical
    /// endpoint order.
    #[inline]
    #[must_use]
    pub fn direction(self) -> Direction {
        if self.0.is_multiple_of(2) {
            Direction::Forward
        } else {
            Direction::Reverse
        }
    }

    /// Returns the arc traversing the same edge in the opposite direction.
    #[inline]
    #[must_use]
    pub fn reversed(self) -> Self {
        ArcId(self.0 ^ 1)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction() {
            Direction::Forward => '+',
            Direction::Reverse => '-',
        };
        write!(f, "a{}{}", self.edge().index(), dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(usize::from(v), 42);
        assert_eq!(NodeId::from(42usize), v);
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default().index(), 0);
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::new(usize::MAX);
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::new(7);
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "e7");
        assert_eq!(usize::from(e), 7);
    }

    #[test]
    fn arc_id_encoding() {
        let e = EdgeId::new(3);
        let f = ArcId::new(e, Direction::Forward);
        let r = ArcId::new(e, Direction::Reverse);
        assert_eq!(f.index(), 6);
        assert_eq!(r.index(), 7);
        assert_eq!(f.edge(), e);
        assert_eq!(r.edge(), e);
        assert_eq!(f.direction(), Direction::Forward);
        assert_eq!(r.direction(), Direction::Reverse);
        assert_eq!(f.reversed(), r);
        assert_eq!(r.reversed(), f);
        assert_eq!(f.to_string(), "a3+");
        assert_eq!(r.to_string(), "a3-");
    }

    #[test]
    fn arc_from_index_roundtrip() {
        for i in 0..10 {
            assert_eq!(ArcId::from_index(i).index(), i);
        }
    }

    #[test]
    fn direction_reversed_is_involution() {
        assert_eq!(Direction::Forward.reversed().reversed(), Direction::Forward);
        assert_eq!(Direction::Reverse.reversed().reversed(), Direction::Reverse);
    }
}
