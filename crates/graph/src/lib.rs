//! # af-graph
//!
//! Graph substrate for the reproduction of *"On Termination of a Flooding
//! Process"* (Hussak & Trehan, PODC 2019).
//!
//! The crate provides exactly what the flooding theory consumes:
//!
//! * [`Graph`] — a compact, immutable, undirected simple graph with stable
//!   node/edge/arc identifiers ([`NodeId`], [`EdgeId`], [`ArcId`]), built
//!   through [`GraphBuilder`];
//! * [`generators`] — the topologies the paper names (lines, cycles,
//!   triangles, cliques, bipartite families) plus seeded random families;
//! * [`algo`] — BFS, eccentricity/diameter/radius, connectivity,
//!   bipartiteness with 2-colouring or odd-cycle certificates, girth, and
//!   the bipartite double cover that powers the exact-time oracle;
//! * [`io`] — edge-list text and DOT output;
//! * [`enumerate`] — exhaustive enumeration of small connected graphs for
//!   theorem checking;
//! * [`partition`] — `k`-way node partitioning ([`Partition`],
//!   [`PartitionStrategy`]) with per-shard local arc CSRs and cross-shard
//!   boundary maps, the substrate of the sharded flooding engine;
//! * [`dynamic`] — the delta-edit overlay ([`dynamic::DeltaGraph`]) and
//!   deterministic churn schedules ([`dynamic::ChurnSchedule`],
//!   [`dynamic::ChurnSpec`]) for flooding while the topology changes
//!   between rounds.
//!
//! # Examples
//!
//! ```
//! use af_graph::{algo, generators};
//!
//! // The paper's Figure 3 topology: the even cycle C6.
//! let g = generators::cycle(6);
//! assert!(algo::is_bipartite(&g));
//! assert_eq!(algo::diameter(&g), Some(3));
//!
//! // Its double cover is two disjoint copies (bipartite base).
//! let dc = algo::double_cover(&g);
//! assert_eq!(algo::connected_components(dc.graph()).count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algo;
pub mod dynamic;
pub mod enumerate;
pub mod generators;
pub mod io;
pub mod partition;

mod error;
mod graph;
mod id;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder};
pub use id::{ArcId, Direction, EdgeId, NodeId};
pub use partition::{Partition, PartitionStrategy};
