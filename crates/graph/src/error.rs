//! Error types for graph construction and parsing.

use core::fmt;

/// Error produced when constructing or parsing a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An endpoint index was `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge would connect a node to itself; the model uses simple graphs.
    SelfLoop {
        /// The node at both endpoints of the rejected edge.
        node: usize,
    },
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(
                    f,
                    "self-loop at node {node} is not allowed in a simple graph"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange { node: 9, n: 4 };
        assert_eq!(
            e.to_string(),
            "node index 9 out of range for graph with 4 nodes"
        );
        let e = GraphError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self-loop at node 2"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<GraphError>();
    }
}
