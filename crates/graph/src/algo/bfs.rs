//! Breadth-first search from one source or a set of sources.

use crate::graph::Graph;
use crate::id::NodeId;
use std::collections::VecDeque;

/// The result of a (multi-source) breadth-first search: hop distances and a
/// BFS forest.
///
/// Amnesiac flooding on a bipartite graph *is* a parallel BFS (Lemma 2.1 of
/// the paper), so this structure doubles as the exact prediction of the
/// flooding schedule there.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// let g = generators::path(4);           // 0 - 1 - 2 - 3
/// let t = algo::bfs(&g, 1.into());
/// assert_eq!(t.distance(3.into()), Some(2));
/// assert_eq!(t.eccentricity(), Some(2)); // max distance from node 1
/// assert_eq!(t.parent(2.into()), Some(1.into()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsTree {
    sources: Vec<NodeId>,
    dist: Vec<Option<u32>>,
    parent: Vec<Option<NodeId>>,
}

impl BfsTree {
    /// The sources the search started from.
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Hop distance from the nearest source to `v`, or `None` if `v` is
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        self.dist[v.index()]
    }

    /// The BFS-forest parent of `v` (`None` for sources and unreachable
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// Returns `true` if `v` was reached by the search.
    #[inline]
    #[must_use]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.dist[v.index()].is_some()
    }

    /// Number of reachable nodes (including the sources).
    #[must_use]
    pub fn reachable_count(&self) -> usize {
        self.dist.iter().filter(|d| d.is_some()).count()
    }

    /// The largest finite distance, i.e. the eccentricity of the source set
    /// *within its reachable region*. `None` when there are no sources.
    #[must_use]
    pub fn eccentricity(&self) -> Option<u32> {
        self.dist.iter().flatten().copied().max()
    }

    /// Iterates over all nodes at exactly `d` hops from the source set.
    pub fn layer(&self, d: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(move |(_, &dd)| dd == Some(d))
            .map(|(i, _)| NodeId::new(i))
    }

    /// The path from a source to `v` along BFS-forest parents, or `None` if
    /// `v` is unreachable. The path starts at a source and ends at `v`.
    #[must_use]
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.dist[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// The raw distance vector, indexed by node.
    #[must_use]
    pub fn distances(&self) -> &[Option<u32>] {
        &self.dist
    }
}

/// Runs a breadth-first search from a single `source`.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn bfs(graph: &Graph, source: NodeId) -> BfsTree {
    multi_bfs(graph, [source])
}

/// Runs a breadth-first search from every node in `sources` simultaneously
/// (all sources are at distance 0).
///
/// Duplicate sources are tolerated.
///
/// # Panics
///
/// Panics if any source is out of range.
#[must_use]
pub fn multi_bfs<I>(graph: &Graph, sources: I) -> BfsTree
where
    I: IntoIterator<Item = NodeId>,
{
    let n = graph.node_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    let mut srcs = Vec::new();

    for s in sources {
        assert!(
            s.index() < n,
            "source {s} out of range for graph with {n} nodes"
        );
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
            srcs.push(s);
        }
    }

    while let Some(u) = queue.pop_front() {
        // af-audit: allow(no-unwrap-in-lib): BFS sets dist before enqueueing
        let du = dist[u.index()].expect("queued nodes have distances");
        for &w in graph.neighbors(u) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(du + 1);
                parent[w.index()] = Some(u);
                queue.push_back(w);
            }
        }
    }

    BfsTree {
        sources: srcs,
        dist,
        parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(5);
        let t = bfs(&g, 0.into());
        for v in 0..5 {
            assert_eq!(t.distance(v.into()), Some(v as u32));
        }
        assert_eq!(t.eccentricity(), Some(4));
        assert_eq!(t.sources(), &[0.into()]);
        assert_eq!(t.reachable_count(), 5);
    }

    #[test]
    fn cycle_distances() {
        let g = generators::cycle(6);
        let t = bfs(&g, 0.into());
        let want = [0, 1, 2, 3, 2, 1];
        for (v, &d) in want.iter().enumerate() {
            assert_eq!(t.distance(v.into()), Some(d));
        }
    }

    #[test]
    fn unreachable_nodes() {
        let g = crate::Graph::from_edges(4, [(0, 1)]).unwrap();
        let t = bfs(&g, 0.into());
        assert!(t.is_reachable(1.into()));
        assert!(!t.is_reachable(2.into()));
        assert_eq!(t.distance(3.into()), None);
        assert_eq!(t.path_to(2.into()), None);
        assert_eq!(t.reachable_count(), 2);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = generators::path(7);
        let t = multi_bfs(&g, [0.into(), 6.into()]);
        assert_eq!(t.distance(3.into()), Some(3));
        assert_eq!(t.distance(1.into()), Some(1));
        assert_eq!(t.distance(5.into()), Some(1));
        assert_eq!(t.eccentricity(), Some(3));
        assert_eq!(t.sources().len(), 2);
    }

    #[test]
    fn duplicate_sources_are_collapsed() {
        let g = generators::path(3);
        let t = multi_bfs(&g, [1.into(), 1.into()]);
        assert_eq!(t.sources(), &[1.into()]);
    }

    #[test]
    fn parents_form_valid_tree_paths() {
        let g = generators::grid(3, 3);
        let t = bfs(&g, 0.into());
        for v in g.nodes() {
            let path = t.path_to(v).unwrap();
            assert_eq!(path.first(), Some(&0.into()));
            assert_eq!(path.last(), Some(&v));
            assert_eq!(path.len() as u32 - 1, t.distance(v).unwrap());
            for w in path.windows(2) {
                assert!(g.contains_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn layers_partition_reachable_nodes() {
        let g = generators::cycle(8);
        let t = bfs(&g, 0.into());
        let mut seen = 0;
        for d in 0..=4 {
            seen += t.layer(d).count();
        }
        assert_eq!(seen, 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_panics() {
        let g = generators::path(2);
        let _ = bfs(&g, 5.into());
    }
}
