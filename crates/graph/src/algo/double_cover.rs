//! The bipartite double cover `B(G) = G × K₂`.
//!
//! The double cover is the exact-time oracle's engine room: amnesiac
//! flooding on `G` started from source set `I` behaves precisely like
//! multi-source BFS on `B(G)` started from the even lifts of `I`. A node
//! `u` of `G` receives the message in round `r` iff the lift `(u, r mod 2)`
//! is at distance exactly `r` from the lifted sources (see
//! `af-core::theory`).

use crate::graph::{Graph, GraphBuilder};
use crate::id::NodeId;

/// Parity class of a lifted node: which of the two copies it lives in.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Parity {
    /// The copy reached by even-length walks from an even-lifted source.
    Even,
    /// The copy reached by odd-length walks.
    Odd,
}

impl Parity {
    /// The opposite parity.
    #[inline]
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }

    /// The parity of an integer round/walk length.
    #[inline]
    #[must_use]
    pub fn of(value: u32) -> Self {
        if value.is_multiple_of(2) {
            Parity::Even
        } else {
            Parity::Odd
        }
    }
}

/// The bipartite double cover of a base graph, with lift/projection maps.
///
/// Node `(v, Even)` is numbered `v` and `(v, Odd)` is numbered `v + n`,
/// where `n` is the base node count. For every base edge `{u, w}` the cover
/// has the two edges `{(u,Even),(w,Odd)}` and `{(u,Odd),(w,Even)}`.
///
/// Key structural facts (tested below):
/// * the cover is always bipartite;
/// * the cover of a connected graph is connected iff the base graph is
///   non-bipartite — otherwise it is two disjoint copies of the base.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// let g = generators::cycle(3);
/// let dc = algo::double_cover(&g);
/// assert_eq!(dc.graph().node_count(), 6); // C3's double cover is C6
/// assert!(algo::is_bipartite(dc.graph()));
/// assert!(algo::is_connected(dc.graph()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DoubleCover {
    graph: Graph,
    base_n: usize,
}

impl DoubleCover {
    /// The cover graph itself (`2n` nodes, `2m` edges).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes of the base graph.
    #[must_use]
    pub fn base_node_count(&self) -> usize {
        self.base_n
    }

    /// Lifts a base node to the copy of the given parity.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the base graph.
    #[inline]
    #[must_use]
    pub fn lift(&self, v: NodeId, parity: Parity) -> NodeId {
        assert!(v.index() < self.base_n, "base node {v} out of range");
        match parity {
            Parity::Even => v,
            Parity::Odd => NodeId::new(v.index() + self.base_n),
        }
    }

    /// Projects a cover node back to `(base node, parity)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range for the cover graph.
    #[inline]
    #[must_use]
    pub fn project(&self, x: NodeId) -> (NodeId, Parity) {
        assert!(x.index() < 2 * self.base_n, "cover node {x} out of range");
        if x.index() < self.base_n {
            (x, Parity::Even)
        } else {
            (NodeId::new(x.index() - self.base_n), Parity::Odd)
        }
    }
}

/// Constructs the bipartite double cover of `graph`.
#[must_use]
pub fn double_cover(graph: &Graph) -> DoubleCover {
    let n = graph.node_count();
    let mut builder = GraphBuilder::new(2 * n);
    for (u, w) in graph.edge_list() {
        builder
            .add_edge(u.index(), w.index() + n)
            // af-audit: allow(no-unwrap-in-lib): the builder was sized to 2n
            .expect("lifted endpoints are in range");
        builder
            .add_edge(u.index() + n, w.index())
            // af-audit: allow(no-unwrap-in-lib): the builder was sized to 2n
            .expect("lifted endpoints are in range");
    }
    DoubleCover {
        graph: builder.build(),
        base_n: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{connected_components, is_bipartite, is_connected};
    use crate::generators;

    #[test]
    fn cover_is_always_bipartite() {
        for g in [
            generators::cycle(3),
            generators::cycle(6),
            generators::complete(5),
            generators::petersen(),
            generators::path(7),
        ] {
            assert!(is_bipartite(double_cover(&g).graph()));
        }
    }

    #[test]
    fn cover_of_connected_bipartite_graph_is_two_copies() {
        for g in [
            generators::path(5),
            generators::cycle(8),
            generators::grid(3, 3),
        ] {
            let dc = double_cover(&g);
            let comps = connected_components(dc.graph());
            assert_eq!(comps.count(), 2);
            assert_eq!(dc.graph().edge_count(), 2 * g.edge_count());
        }
    }

    #[test]
    fn cover_of_connected_nonbipartite_graph_is_connected() {
        for g in [
            generators::cycle(5),
            generators::complete(4),
            generators::petersen(),
        ] {
            assert!(is_connected(double_cover(&g).graph()));
        }
    }

    #[test]
    fn triangle_cover_is_c6() {
        let dc = double_cover(&generators::cycle(3));
        let g = dc.graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(is_connected(g));
    }

    #[test]
    fn degrees_are_preserved() {
        let g = generators::wheel(6);
        let dc = double_cover(&g);
        for v in g.nodes() {
            assert_eq!(dc.graph().degree(dc.lift(v, Parity::Even)), g.degree(v));
            assert_eq!(dc.graph().degree(dc.lift(v, Parity::Odd)), g.degree(v));
        }
    }

    #[test]
    fn lift_project_roundtrip() {
        let g = generators::cycle(5);
        let dc = double_cover(&g);
        for v in g.nodes() {
            for p in [Parity::Even, Parity::Odd] {
                let x = dc.lift(v, p);
                assert_eq!(dc.project(x), (v, p));
            }
        }
        assert_eq!(dc.base_node_count(), 5);
    }

    #[test]
    fn cover_edges_connect_opposite_parities() {
        let g = generators::complete(4);
        let dc = double_cover(&g);
        for (a, b) in dc.graph().edge_list() {
            let (_, pa) = dc.project(a);
            let (_, pb) = dc.project(b);
            assert_ne!(pa, pb);
        }
    }

    #[test]
    fn parity_helpers() {
        assert_eq!(Parity::of(0), Parity::Even);
        assert_eq!(Parity::of(7), Parity::Odd);
        assert_eq!(Parity::Even.flipped(), Parity::Odd);
        assert_eq!(Parity::Odd.flipped().flipped(), Parity::Odd);
    }
}
