//! Parity-constrained shortest walks: for every node, the length of the
//! shortest *even*-length and shortest *odd*-length walk from a source set.
//!
//! This is the double-cover oracle computed without materializing the
//! cover: a BFS over `(node, parity)` states. `af-core` cross-checks the
//! two implementations against each other and against the simulators —
//! they must agree state-for-state, since
//! `dist_B((I, Even), (u, p)) = shortest walk I → u of parity p`.
//!
//! The module also derives the **odd girth** (length of the shortest odd
//! cycle), which controls how quickly the "second parity" becomes
//! reachable in non-bipartite graphs.

use crate::graph::Graph;
use crate::id::NodeId;
use std::collections::VecDeque;

/// Shortest even- and odd-length walk distances from a source set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityDistances {
    even: Vec<Option<u32>>,
    odd: Vec<Option<u32>>,
}

impl ParityDistances {
    /// Length of the shortest even-length walk from the sources to `v`
    /// (0 for the sources themselves), or `None` if no such walk exists.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn even(&self, v: NodeId) -> Option<u32> {
        self.even[v.index()]
    }

    /// Length of the shortest odd-length walk from the sources to `v`, or
    /// `None` if no such walk exists.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn odd(&self, v: NodeId) -> Option<u32> {
        self.odd[v.index()]
    }

    /// Both parities, `(even, odd)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn both(&self, v: NodeId) -> (Option<u32>, Option<u32>) {
        (self.even(v), self.odd(v))
    }

    /// The largest finite parity distance overall — exactly the amnesiac
    /// flooding termination round from these sources.
    #[must_use]
    pub fn max_finite(&self) -> Option<u32> {
        self.even
            .iter()
            .chain(self.odd.iter())
            .flatten()
            .copied()
            .max()
    }
}

/// Computes shortest even/odd walk lengths from every node of `sources`
/// via BFS over `(node, parity)` states. Duplicate sources are tolerated.
///
/// # Panics
///
/// Panics if a source is out of range.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// // Triangle from node 0: node 1 is reachable by an odd walk of length 1
/// // (direct edge) and an even walk of length 2 (via node 2).
/// let g = generators::cycle(3);
/// let pd = algo::parity_distances(&g, [0.into()]);
/// assert_eq!(pd.both(1.into()), (Some(2), Some(1)));
/// // The source itself: even trivially 0; odd 3 (once around the triangle).
/// assert_eq!(pd.both(0.into()), (Some(0), Some(3)));
/// ```
#[must_use]
pub fn parity_distances<I>(graph: &Graph, sources: I) -> ParityDistances
where
    I: IntoIterator<Item = NodeId>,
{
    let n = graph.node_count();
    let mut even: Vec<Option<u32>> = vec![None; n];
    let mut odd: Vec<Option<u32>> = vec![None; n];
    let mut queue: VecDeque<(NodeId, bool)> = VecDeque::new();

    for s in sources {
        assert!(s.index() < n, "source {s} out of range");
        if even[s.index()].is_none() {
            even[s.index()] = Some(0);
            queue.push_back((s, false));
        }
    }

    while let Some((u, is_odd)) = queue.pop_front() {
        let du = if is_odd {
            odd[u.index()]
        } else {
            even[u.index()]
        }
        // af-audit: allow(no-unwrap-in-lib): BFS sets the distance before enqueueing
        .expect("queued states have distances");
        for &w in graph.neighbors(u) {
            let slot = if is_odd {
                &mut even[w.index()]
            } else {
                &mut odd[w.index()]
            };
            if slot.is_none() {
                *slot = Some(du + 1);
                queue.push_back((w, !is_odd));
            }
        }
    }

    ParityDistances { even, odd }
}

/// The odd girth: the length of the shortest odd cycle, or `None` if the
/// graph is bipartite.
///
/// Computed from parity distances: the shortest odd closed walk through
/// `v` has length `odd(v)` when flooding from `v` alone, and the shortest
/// odd closed walk overall is a cycle.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// assert_eq!(algo::odd_girth(&generators::cycle(7)), Some(7));
/// assert_eq!(algo::odd_girth(&generators::petersen()), Some(5));
/// assert_eq!(algo::odd_girth(&generators::cycle(8)), None);
/// ```
#[must_use]
pub fn odd_girth(graph: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    for v in graph.nodes() {
        let pd = parity_distances(graph, [v]);
        if let Some(o) = pd.odd(v) {
            best = Some(best.map_or(o, |b| b.min(o)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{self, Parity};
    use crate::generators;

    /// The parity BFS must agree with the materialized double cover.
    #[test]
    fn matches_double_cover_distances() {
        for g in [
            generators::cycle(3),
            generators::cycle(6),
            generators::petersen(),
            generators::complete(5),
            generators::grid(3, 4),
            generators::barbell(4),
            generators::path(7),
        ] {
            let dc = algo::double_cover(&g);
            for s in g.nodes() {
                let pd = parity_distances(&g, [s]);
                let bfs = algo::bfs(dc.graph(), dc.lift(s, Parity::Even));
                for v in g.nodes() {
                    assert_eq!(
                        pd.even(v),
                        bfs.distance(dc.lift(v, Parity::Even)),
                        "{g} {s}->{v} even"
                    );
                    assert_eq!(
                        pd.odd(v),
                        bfs.distance(dc.lift(v, Parity::Odd)),
                        "{g} {s}->{v} odd"
                    );
                }
            }
        }
    }

    #[test]
    fn bipartite_graphs_have_one_parity_per_node() {
        let g = generators::grid(3, 5);
        let pd = parity_distances(&g, [0.into()]);
        let bfs = algo::bfs(&g, 0.into());
        for v in g.nodes() {
            let d = bfs.distance(v).unwrap();
            let (e, o) = pd.both(v);
            if d.is_multiple_of(2) {
                assert_eq!(e, Some(d));
                assert_eq!(o, None);
            } else {
                assert_eq!(o, Some(d));
                assert_eq!(e, None);
            }
        }
    }

    #[test]
    fn non_bipartite_graphs_reach_both_parities() {
        let g = generators::petersen();
        let pd = parity_distances(&g, [0.into()]);
        for v in g.nodes() {
            let (e, o) = pd.both(v);
            assert!(e.is_some() && o.is_some(), "node {v}");
            assert_ne!(e.unwrap() % 2, 1);
            assert_ne!(o.unwrap() % 2, 0);
        }
    }

    #[test]
    fn max_finite_is_flooding_termination_time() {
        // C5 from any node: termination = 5.
        let g = generators::cycle(5);
        let pd = parity_distances(&g, [0.into()]);
        assert_eq!(pd.max_finite(), Some(5));
        // C6: termination = 3.
        let g = generators::cycle(6);
        let pd = parity_distances(&g, [0.into()]);
        assert_eq!(pd.max_finite(), Some(3));
    }

    #[test]
    fn multi_source_parity() {
        let g = generators::path(4);
        let pd = parity_distances(&g, [0.into(), 3.into()]);
        // node 1: odd walk length 1 (from 0), even walk length 2 (from 3).
        assert_eq!(pd.both(1.into()), (Some(2), Some(1)));
        assert_eq!(pd.max_finite(), Some(3));
    }

    #[test]
    fn odd_girth_values() {
        assert_eq!(odd_girth(&generators::cycle(3)), Some(3));
        assert_eq!(odd_girth(&generators::cycle(9)), Some(9));
        assert_eq!(odd_girth(&generators::complete(6)), Some(3));
        assert_eq!(odd_girth(&generators::petersen()), Some(5));
        assert_eq!(odd_girth(&generators::grid(4, 4)), None);
        assert_eq!(odd_girth(&generators::path(9)), None);
        // Wheel with even rim: shortest odd cycle is a hub triangle.
        assert_eq!(odd_girth(&generators::wheel(8)), Some(3));
    }

    #[test]
    fn isolated_nodes_are_unreachable() {
        let g = crate::Graph::from_edges(3, [(0, 1)]).unwrap();
        let pd = parity_distances(&g, [0.into()]);
        assert_eq!(pd.both(2.into()), (None, None));
    }
}
