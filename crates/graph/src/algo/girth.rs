//! Girth (length of the shortest cycle).

use crate::graph::Graph;
use crate::id::NodeId;
use std::collections::VecDeque;

/// Computes the girth of the graph: the length of its shortest cycle, or
/// `None` if the graph is a forest.
///
/// Runs one truncated BFS per node (`O(n·m)`): every non-tree edge `(u, w)`
/// discovered during a BFS from `v` closes a walk of length
/// `dist(u) + dist(w) + 1` through `v`, which upper-bounds the girth, and the
/// bound is attained when `v` lies on a shortest cycle.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// assert_eq!(algo::girth(&generators::cycle(7)), Some(7));
/// assert_eq!(algo::girth(&generators::petersen()), Some(5));
/// assert_eq!(algo::girth(&generators::path(9)), None);
/// ```
#[must_use]
pub fn girth(graph: &Graph) -> Option<u32> {
    let n = graph.node_count();
    let mut best: Option<u32> = None;
    let mut dist = vec![u32::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for s in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        parent.iter_mut().for_each(|p| *p = None);
        let source = NodeId::new(s);
        dist[s] = 0;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            // Cycles through `s` longer than the current best can't improve it.
            if let Some(b) = best {
                if 2 * dist[u.index()] >= b {
                    break;
                }
            }
            for &w in graph.neighbors(u) {
                if dist[w.index()] == u32::MAX {
                    dist[w.index()] = dist[u.index()] + 1;
                    parent[w.index()] = Some(u);
                    queue.push_back(w);
                } else if parent[u.index()] != Some(w) {
                    let cand = dist[u.index()] + dist[w.index()] + 1;
                    best = Some(best.map_or(cand, |b| b.min(cand)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycles_have_their_length_as_girth() {
        for n in 3..=10 {
            assert_eq!(girth(&generators::cycle(n)), Some(n as u32), "C{n}");
        }
    }

    #[test]
    fn forests_have_no_girth() {
        assert_eq!(girth(&generators::path(6)), None);
        assert_eq!(girth(&generators::star(8)), None);
        assert_eq!(girth(&generators::binary_tree(4)), None);
        assert_eq!(girth(&crate::Graph::empty(5)), None);
    }

    #[test]
    fn cliques_have_girth_three() {
        for n in 3..7 {
            assert_eq!(girth(&generators::complete(n)), Some(3));
        }
    }

    #[test]
    fn complete_bipartite_has_girth_four() {
        assert_eq!(girth(&generators::complete_bipartite(2, 2)), Some(4));
        assert_eq!(girth(&generators::complete_bipartite(3, 5)), Some(4));
    }

    #[test]
    fn grid_girth_four() {
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
    }

    #[test]
    fn petersen_girth_five() {
        assert_eq!(girth(&generators::petersen()), Some(5));
    }

    #[test]
    fn two_triangles_sharing_a_path() {
        // triangle 0-1-2 plus pending 5-cycle 2-3-4-5-6
        let g = crate::Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        )
        .unwrap();
        assert_eq!(girth(&g), Some(3));
    }
}
