//! Connected components.

use crate::graph::Graph;
use crate::id::NodeId;
use std::collections::VecDeque;

/// The partition of a graph's nodes into connected components.
///
/// Components are numbered `0..count` in order of their smallest node.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, Graph};
///
/// let g = Graph::from_edges(5, [(0, 1), (3, 4)])?;
/// let c = algo::connected_components(&g);
/// assert_eq!(c.count(), 3);
/// assert_eq!(c.component(0.into()), c.component(1.into()));
/// assert_ne!(c.component(1.into()), c.component(2.into()));
/// # Ok::<(), af_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    comp: Vec<u32>,
    count: usize,
}

impl Components {
    /// Number of connected components (0 for the empty graph).
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The component index of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn component(&self, v: NodeId) -> usize {
        self.comp[v.index()] as usize
    }

    /// Returns `true` if `u` and `v` lie in the same component.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[must_use]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.comp[u.index()] == self.comp[v.index()]
    }

    /// The nodes of component `c`, in increasing order.
    #[must_use]
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.comp
            .iter()
            .enumerate()
            .filter(|(_, &cc)| cc as usize == c)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Sizes of all components, indexed by component id.
    #[must_use]
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.comp {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Computes the connected components of `graph`.
#[must_use]
pub fn connected_components(graph: &Graph) -> Components {
    let n = graph.node_count();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if comp[s] != u32::MAX {
            continue;
        }
        // af-audit: allow(no-lossy-id-cast): count < n, and node ids fit u32
        comp[s] = count as u32;
        queue.push_back(NodeId::new(s));
        while let Some(u) = queue.pop_front() {
            for &w in graph.neighbors(u) {
                if comp[w.index()] == u32::MAX {
                    // af-audit: allow(no-lossy-id-cast): count < n, and node ids fit u32
                    comp[w.index()] = count as u32;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components { comp, count }
}

/// Returns `true` if the graph is connected.
///
/// The empty graph and single-node graphs count as connected.
#[must_use]
pub fn is_connected(graph: &Graph) -> bool {
    connected_components(graph).count() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn connected_families() {
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&generators::cycle(5)));
        assert!(is_connected(&generators::complete(7)));
        assert!(is_connected(&generators::star(9)));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(is_connected(&crate::Graph::empty(0)));
        assert!(is_connected(&crate::Graph::empty(1)));
        assert_eq!(connected_components(&crate::Graph::empty(0)).count(), 0);
    }

    #[test]
    fn isolated_nodes_are_their_own_components() {
        let g = crate::Graph::from_edges(4, [(1, 2)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert!(c.same_component(1.into(), 2.into()));
        assert!(!c.same_component(0.into(), 1.into()));
        assert_eq!(c.members(c.component(1.into())), vec![1.into(), 2.into()]);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn component_ids_are_ordered_by_smallest_member() {
        let g = crate::Graph::from_edges(6, [(4, 5), (0, 2)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.component(0.into()), 0);
        assert_eq!(c.component(1.into()), 1);
        assert_eq!(c.component(4.into()), 3);
    }
}
