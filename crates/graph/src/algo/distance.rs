//! Eccentricity, diameter, radius and all-pairs distances.
//!
//! The paper's bounds are stated in terms of the source eccentricity `e(v)`
//! and the diameter `D`; these functions compute them exactly by running one
//! BFS per node (`O(n·m)`), which is ample for simulation-scale graphs.

use crate::algo::bfs::bfs;
use crate::graph::Graph;
use crate::id::NodeId;

/// Eccentricity of `v`: the maximum hop distance from `v` to any node.
///
/// Returns `None` if some node is unreachable from `v` (infinite
/// eccentricity) or if the graph is empty.
///
/// # Panics
///
/// Panics if `v` is out of range.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// let g = generators::path(4);
/// assert_eq!(algo::eccentricity(&g, 0.into()), Some(3));
/// assert_eq!(algo::eccentricity(&g, 1.into()), Some(2));
/// ```
#[must_use]
pub fn eccentricity(graph: &Graph, v: NodeId) -> Option<u32> {
    let t = bfs(graph, v);
    if t.reachable_count() != graph.node_count() {
        return None;
    }
    t.eccentricity()
}

/// The eccentricity of every node, indexed by node id.
///
/// Entries are `None` exactly when the graph is disconnected (then *every*
/// entry is `None`) or empty.
#[must_use]
pub fn all_eccentricities(graph: &Graph) -> Vec<Option<u32>> {
    graph.nodes().map(|v| eccentricity(graph, v)).collect()
}

/// Diameter: the maximum eccentricity over all nodes.
///
/// Returns `None` for disconnected or empty graphs. A single-node graph has
/// diameter 0.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// assert_eq!(algo::diameter(&generators::cycle(6)), Some(3));
/// assert_eq!(algo::diameter(&generators::complete(5)), Some(1));
/// ```
#[must_use]
pub fn diameter(graph: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    for v in graph.nodes() {
        let e = eccentricity(graph, v)?;
        best = Some(best.map_or(e, |b| b.max(e)));
    }
    best
}

/// Radius: the minimum eccentricity over all nodes.
///
/// Returns `None` for disconnected or empty graphs.
#[must_use]
pub fn radius(graph: &Graph) -> Option<u32> {
    let mut best: Option<u32> = None;
    for v in graph.nodes() {
        let e = eccentricity(graph, v)?;
        best = Some(best.map_or(e, |b| b.min(e)));
    }
    best
}

/// All-pairs hop distances, stored densely (`n × n`).
///
/// Intended for small graphs (oracle cross-checks, exhaustive enumeration);
/// memory is `O(n²)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<Option<u32>>,
}

impl DistanceMatrix {
    /// Hop distance between `u` and `v`, `None` if disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<u32> {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "node out of range"
        );
        self.dist[u.index() * self.n + v.index()]
    }

    /// Number of nodes the matrix covers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }
}

/// Computes all-pairs distances with one BFS per node.
#[must_use]
pub fn distance_matrix(graph: &Graph) -> DistanceMatrix {
    let n = graph.node_count();
    let mut dist = vec![None; n * n];
    for v in graph.nodes() {
        let t = bfs(graph, v);
        for u in graph.nodes() {
            dist[v.index() * n + u.index()] = t.distance(u);
        }
    }
    DistanceMatrix { n, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_eccentricities() {
        let g = generators::path(5);
        assert_eq!(
            all_eccentricities(&g),
            vec![Some(4), Some(3), Some(2), Some(3), Some(4)]
        );
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(2));
    }

    #[test]
    fn complete_graph_has_diameter_one() {
        let g = generators::complete(6);
        assert_eq!(diameter(&g), Some(1));
        assert_eq!(radius(&g), Some(1));
    }

    #[test]
    fn singleton_has_zero_diameter() {
        let g = crate::Graph::empty(1);
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(radius(&g), Some(0));
        assert_eq!(eccentricity(&g, 0.into()), Some(0));
    }

    #[test]
    fn disconnected_is_none() {
        let g = crate::Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(eccentricity(&g, 0.into()), None);
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert!(all_eccentricities(&g).iter().all(Option::is_none));
    }

    #[test]
    fn empty_graph_is_none() {
        let g = crate::Graph::empty(0);
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
    }

    #[test]
    fn matrix_matches_bfs_and_is_symmetric() {
        let g = generators::grid(3, 4);
        let m = distance_matrix(&g);
        assert_eq!(m.node_count(), 12);
        for u in g.nodes() {
            let t = crate::algo::bfs(&g, u);
            for v in g.nodes() {
                assert_eq!(m.get(u, v), t.distance(v));
                assert_eq!(m.get(u, v), m.get(v, u));
            }
            assert_eq!(m.get(u, u), Some(0));
        }
    }

    #[test]
    fn torus_diameter() {
        // 4x4 torus: diameter = 2 + 2 = 4.
        let g = generators::torus(4, 4);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        for d in 1..=5 {
            let g = generators::hypercube(d);
            assert_eq!(diameter(&g), Some(d));
        }
    }
}
