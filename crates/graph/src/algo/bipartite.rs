//! Bipartiteness testing with certificates.
//!
//! The flooding theory forks on bipartiteness: termination is `e(v)` on
//! bipartite graphs (Lemma 2.1) and ≤ `2D + 1` otherwise (Theorem 3.3).
//! [`bipartiteness`] returns either a proper 2-colouring or an explicit odd
//! cycle, so callers can *verify* whichever branch they rely on.

use crate::graph::Graph;
use crate::id::NodeId;
use std::collections::VecDeque;

/// One side of a bipartition.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Side {
    /// The side containing each component's smallest node.
    Left,
    /// The other side.
    Right,
}

impl Side {
    /// Returns the opposite side.
    #[inline]
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A proper 2-colouring: adjacent nodes always get different sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    side: Vec<Side>,
}

impl Coloring {
    /// The side of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn side(&self, v: NodeId) -> Side {
        self.side[v.index()]
    }

    /// All nodes on `side`, in increasing order.
    #[must_use]
    pub fn nodes_on(&self, side: Side) -> Vec<NodeId> {
        self.side
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == side)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Checks that the colouring is proper for `graph` (used in tests and
    /// by paranoid callers).
    #[must_use]
    pub fn is_proper(&self, graph: &Graph) -> bool {
        graph
            .edge_list()
            .all(|(u, v)| self.side[u.index()] != self.side[v.index()])
    }
}

/// The verdict of [`bipartiteness`]: a 2-colouring or an odd-cycle witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bipartiteness {
    /// The graph is bipartite; here is a proper 2-colouring.
    Bipartite(Coloring),
    /// The graph contains this odd cycle (a closed walk of odd length given
    /// as the sequence of distinct nodes around the cycle).
    OddCycle(Vec<NodeId>),
}

impl Bipartiteness {
    /// Returns `true` for the [`Bipartiteness::Bipartite`] variant.
    #[must_use]
    pub fn is_bipartite(&self) -> bool {
        matches!(self, Bipartiteness::Bipartite(_))
    }

    /// Returns the colouring if bipartite.
    #[must_use]
    pub fn coloring(&self) -> Option<&Coloring> {
        match self {
            Bipartiteness::Bipartite(c) => Some(c),
            Bipartiteness::OddCycle(_) => None,
        }
    }

    /// Returns the odd-cycle witness if non-bipartite.
    #[must_use]
    pub fn odd_cycle(&self) -> Option<&[NodeId]> {
        match self {
            Bipartiteness::Bipartite(_) => None,
            Bipartiteness::OddCycle(c) => Some(c),
        }
    }
}

/// Tests bipartiteness, returning a 2-colouring or an odd-cycle witness.
///
/// Disconnected graphs are handled component-wise; the graph is bipartite
/// iff every component is. Runs in `O(n + m)`.
///
/// # Examples
///
/// ```
/// use af_graph::{algo, generators};
///
/// let even = algo::bipartiteness(&generators::cycle(6));
/// assert!(even.is_bipartite());
///
/// let odd = algo::bipartiteness(&generators::cycle(5));
/// let cycle = odd.odd_cycle().expect("C5 is not bipartite");
/// assert_eq!(cycle.len() % 2, 1);
/// ```
#[must_use]
pub fn bipartiteness(graph: &Graph) -> Bipartiteness {
    let n = graph.node_count();
    let mut side: Vec<Option<Side>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth: Vec<u32> = vec![0; n];
    let mut queue = VecDeque::new();

    for s in 0..n {
        if side[s].is_some() {
            continue;
        }
        side[s] = Some(Side::Left);
        queue.push_back(NodeId::new(s));
        while let Some(u) = queue.pop_front() {
            // af-audit: allow(no-unwrap-in-lib): BFS colours before enqueueing
            let su = side[u.index()].expect("queued nodes are coloured");
            for &w in graph.neighbors(u) {
                match side[w.index()] {
                    None => {
                        side[w.index()] = Some(su.flipped());
                        parent[w.index()] = Some(u);
                        depth[w.index()] = depth[u.index()] + 1;
                        queue.push_back(w);
                    }
                    Some(sw) if sw == su => {
                        // Same-side edge: lift the u..w tree paths to their
                        // lowest common ancestor; path(u) + edge + path(w)
                        // closes an odd cycle.
                        return Bipartiteness::OddCycle(odd_cycle_witness(u, w, &parent, &depth));
                    }
                    Some(_) => {}
                }
            }
        }
    }

    let side = side.into_iter().map(|s| s.unwrap_or(Side::Left)).collect();
    Bipartiteness::Bipartite(Coloring { side })
}

fn odd_cycle_witness(
    u: NodeId,
    w: NodeId,
    parent: &[Option<NodeId>],
    depth: &[u32],
) -> Vec<NodeId> {
    let mut a = u;
    let mut b = w;
    let mut left = vec![a];
    let mut right = vec![b];
    while depth[a.index()] > depth[b.index()] {
        // af-audit: allow(no-unwrap-in-lib): only the root has no parent, and
        // the root is never the deeper endpoint
        a = parent[a.index()].expect("deeper node has parent");
        left.push(a);
    }
    while depth[b.index()] > depth[a.index()] {
        // af-audit: allow(no-unwrap-in-lib): same bound, other side
        b = parent[b.index()].expect("deeper node has parent");
        right.push(b);
    }
    while a != b {
        // af-audit: allow(no-unwrap-in-lib): equal depths in one BFS tree meet
        // at or before the root, so neither walk steps past it
        a = parent[a.index()].expect("nodes in same tree");
        // af-audit: allow(no-unwrap-in-lib): same walk, other side
        b = parent[b.index()].expect("nodes in same tree");
        left.push(a);
        right.push(b);
    }
    // `left` ends at the LCA, as does `right`; drop the duplicate LCA from
    // `right` and splice: u .. lca .. w (reversed), a simple odd cycle.
    right.pop();
    right.reverse();
    left.extend(right);
    left
}

/// Convenience wrapper: `true` iff the graph has no odd cycle.
#[must_use]
pub fn is_bipartite(graph: &Graph) -> bool {
    bipartiteness(graph).is_bipartite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_odd_cycle(graph: &Graph, cycle: &[NodeId]) {
        assert!(cycle.len() >= 3, "odd cycle has at least 3 nodes");
        assert_eq!(cycle.len() % 2, 1, "cycle length must be odd");
        let mut sorted: Vec<_> = cycle.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cycle.len(), "cycle nodes must be distinct");
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            assert!(graph.contains_edge(a, b), "cycle edge {a}-{b} missing");
        }
    }

    #[test]
    fn even_cycles_are_bipartite() {
        for n in [4usize, 6, 8, 10] {
            let g = generators::cycle(n);
            let b = bipartiteness(&g);
            let c = b.coloring().expect("even cycle is bipartite");
            assert!(c.is_proper(&g));
            assert_eq!(c.nodes_on(Side::Left).len(), n / 2);
        }
    }

    #[test]
    fn odd_cycles_are_not() {
        for n in [3usize, 5, 7, 9] {
            let g = generators::cycle(n);
            let b = bipartiteness(&g);
            assert!(!b.is_bipartite());
            check_odd_cycle(&g, b.odd_cycle().unwrap());
        }
    }

    #[test]
    fn trees_are_bipartite() {
        let g = generators::binary_tree(4);
        assert!(is_bipartite(&g));
        let g = generators::star(17);
        assert!(is_bipartite(&g));
        let g = generators::path(23);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn cliques_beyond_k2_are_not() {
        assert!(is_bipartite(&generators::complete(2)));
        for n in 3..8 {
            let g = generators::complete(n);
            let b = bipartiteness(&g);
            assert!(!b.is_bipartite());
            check_odd_cycle(&g, b.odd_cycle().unwrap());
        }
    }

    #[test]
    fn petersen_graph_is_not_bipartite() {
        let g = generators::petersen();
        let b = bipartiteness(&g);
        assert!(!b.is_bipartite());
        check_odd_cycle(&g, b.odd_cycle().unwrap());
        assert_eq!(b.odd_cycle().unwrap().len(), 5, "petersen girth is 5");
    }

    #[test]
    fn disconnected_mixed_components() {
        // bipartite component {0,1} plus a triangle {2,3,4}
        let g = crate::Graph::from_edges(5, [(0, 1), (2, 3), (3, 4), (2, 4)]).unwrap();
        let b = bipartiteness(&g);
        assert!(!b.is_bipartite());
        check_odd_cycle(&g, b.odd_cycle().unwrap());
    }

    #[test]
    fn empty_and_edgeless_are_bipartite() {
        assert!(is_bipartite(&crate::Graph::empty(0)));
        assert!(is_bipartite(&crate::Graph::empty(5)));
    }

    #[test]
    fn complete_bipartite_is_proper() {
        let g = generators::complete_bipartite(3, 4);
        let b = bipartiteness(&g);
        let c = b.coloring().unwrap();
        assert!(c.is_proper(&g));
        // sides must be exactly the construction's parts
        assert_eq!(c.nodes_on(Side::Left).len(), 3);
        assert_eq!(c.nodes_on(Side::Right).len(), 4);
    }

    #[test]
    fn odd_cycle_in_dense_nonbipartite_graph() {
        let g = generators::wheel(8);
        let b = bipartiteness(&g);
        assert!(!b.is_bipartite());
        check_odd_cycle(&g, b.odd_cycle().unwrap());
    }

    #[test]
    fn side_flipped_is_involution() {
        assert_eq!(Side::Left.flipped(), Side::Right);
        assert_eq!(Side::Right.flipped().flipped(), Side::Right);
    }
}
