//! Graph algorithms the flooding theory needs: BFS and distances,
//! eccentricity/diameter/radius, connectivity, bipartiteness with witnesses,
//! girth, and the bipartite double cover.

mod bfs;
mod bipartite;
mod components;
mod distance;
mod double_cover;
mod girth;
mod parity;

pub use bfs::{bfs, multi_bfs, BfsTree};
pub use bipartite::{bipartiteness, is_bipartite, Bipartiteness, Coloring, Side};
pub use components::{connected_components, is_connected, Components};
pub use distance::{
    all_eccentricities, diameter, distance_matrix, eccentricity, radius, DistanceMatrix,
};
pub use double_cover::{double_cover, DoubleCover, Parity};
pub use girth::girth;
pub use parity::{odd_girth, parity_distances, ParityDistances};
