//! Graph generators: the deterministic families the paper's figures use and
//! seeded random families for sweeps and property tests.
//!
//! Every generator is deterministic: the deterministic families by
//! construction, the random families as a function of their `seed`
//! parameter (they draw from a [`rand_chacha::ChaCha8Rng`], whose stream is
//! stable across platforms and releases — a requirement for reproducible
//! experiments).

mod deterministic;
mod random;

use crate::graph::GraphBuilder;

/// Adds one edge whose endpoints the calling generator constructed to be
/// in range of the builder it just sized. Every family funnels through
/// here, so the in-range invariant is asserted in exactly one place.
fn edge(b: &mut GraphBuilder, u: usize, v: usize) {
    // af-audit: allow(no-unwrap-in-lib): generators size the builder themselves,
    // so endpoints are in range by construction; a failure is a generator bug.
    b.add_edge(u, v).expect("generator endpoints in range");
}

pub use deterministic::{
    barbell, binary_tree, caterpillar, circulant, complete, complete_bipartite,
    complete_multipartite, cycle, friendship, grid, hypercube, lollipop, path, petersen, star,
    torus, wheel,
};
pub use random::{
    gnp, gnp_connected, preferential_attachment, random_bipartite, random_geometric,
    random_regular, random_tree, sparse_connected, watts_strogatz,
};
