//! Graph generators: the deterministic families the paper's figures use and
//! seeded random families for sweeps and property tests.
//!
//! Every generator is deterministic: the deterministic families by
//! construction, the random families as a function of their `seed`
//! parameter (they draw from a [`rand_chacha::ChaCha8Rng`], whose stream is
//! stable across platforms and releases — a requirement for reproducible
//! experiments).

mod deterministic;
mod random;

pub use deterministic::{
    barbell, binary_tree, caterpillar, circulant, complete, complete_bipartite,
    complete_multipartite, cycle, friendship, grid, hypercube, lollipop, path, petersen, star,
    torus, wheel,
};
pub use random::{
    gnp, gnp_connected, preferential_attachment, random_bipartite, random_geometric,
    random_regular, random_tree, sparse_connected, watts_strogatz,
};
