//! Seeded random graph families.
//!
//! Each generator takes an explicit `seed` and derives all randomness from a
//! [`ChaCha8Rng`], so a `(family, parameters, seed)` triple pins down the
//! graph exactly — experiment tables in the reproduction cite these triples.

use super::edge;
use crate::algo::{connected_components, is_connected};
use crate::graph::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Erdős–Rényi `G(n, p)`: every pair becomes an edge independently with
/// probability `p`. May be disconnected; see [`gnp_connected`].
///
/// # Panics
///
/// Panics if `p` is not within `0.0..=1.0` or is NaN.
#[must_use]
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edge(&mut b, u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: draws `G(n, p)`
/// samples (varying the stream, same seed) and returns the first connected
/// one; after 64 failures, patches the last sample by linking its components
/// with uniformly random inter-component edges (preserving sparsity better
/// than resampling at higher `p`).
///
/// # Panics
///
/// Panics if `p` is out of `[0, 1]` or `n == 0`.
#[must_use]
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "connected graph needs at least one node");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut last = None;
    for _ in 0..64 {
        let g = gnp(n, p, rng.gen());
        if is_connected(&g) {
            return g;
        }
        last = Some(g);
    }
    // af-audit: allow(no-unwrap-in-lib): the 64-iteration loop above always sets it
    let g = last.expect("at least one sample was drawn");
    let comps = connected_components(&g);
    let mut b = GraphBuilder::new(n);
    b.add_edges(g.edge_list().map(|(u, v)| (u.index(), v.index())))
        // af-audit: allow(no-unwrap-in-lib): copying edges of a same-size valid graph
        .expect("existing edges are valid");
    // Chain a random representative of each component to one of the
    // previous components, yielding a connected supergraph.
    let mut reps: Vec<Vec<usize>> = vec![Vec::new(); comps.count()];
    for v in g.nodes() {
        reps[comps.component(v)].push(v.index());
    }
    for c in 1..reps.len() {
        // af-audit: allow(no-unwrap-in-lib): every component has a representative
        let u = *reps[c].choose(&mut rng).expect("components are non-empty");
        let prev = rng.gen_range(0..c);
        let w = *reps[prev]
            .choose(&mut rng)
            // af-audit: allow(no-unwrap-in-lib): every component has a representative
            .expect("components are non-empty");
        edge(&mut b, u, w);
    }
    b.build()
}

/// A uniformly random labelled tree on `n` nodes (random Prüfer sequence).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one node");
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        // af-audit: allow(no-unwrap-in-lib): a fixed in-range literal edge
        return Graph::from_edges(2, [(0, 1)]).expect("valid edge");
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();

    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard Prüfer decoding with a pointer + leaf variable instead of a
    // heap: O(n) and deterministic.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &prufer {
        edge(&mut b, leaf, x);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // After consuming the Prüfer sequence exactly two nodes of degree 1
    // remain: `leaf` and node n-1 (the largest label is never removed).
    edge(&mut b, leaf, n - 1);
    b.build()
}

/// A sparse connected graph: a uniform random tree plus `extra_edges`
/// additional distinct uniform random non-tree edges (or as many as fit).
///
/// This is the workhorse of the property-based test suites: connectivity is
/// guaranteed by construction and the cycle structure is controlled by
/// `extra_edges` (0 = tree/bipartite-ish, larger = denser, usually
/// non-bipartite).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn sparse_connected(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tree = random_tree(n, rng.gen());
    let mut b = GraphBuilder::new(n);
    b.add_edges(tree.edge_list().map(|(u, v)| (u.index(), v.index())))
        // af-audit: allow(no-unwrap-in-lib): copying edges of a same-size valid tree
        .expect("tree edges are valid");
    let max_m = n * (n - 1) / 2;
    let target = (tree.edge_count() + extra_edges).min(max_m);
    let mut guard = 0usize;
    while b.edge_count() < target && guard < 64 * (extra_edges + 1) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edge(&mut b, u, v);
        }
        guard += 1;
    }
    b.build()
}

/// A random bipartite graph: parts `0..a` and `a..a+b`, each cross pair an
/// edge independently with probability `p`. Not necessarily connected; pass
/// the result through your own check, or use moderate `p`.
///
/// # Panics
///
/// Panics if `p` is out of `[0, 1]`.
#[must_use]
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            if rng.gen_bool(p) {
                edge(&mut builder, u, a + v);
            }
        }
    }
    builder.build()
}

/// A random `d`-regular graph via the configuration (pairing) model,
/// retrying until the pairing is simple (no loops/doubles). Requires
/// `n * d` even and `d < n`.
///
/// # Panics
///
/// Panics if `n * d` is odd, `d >= n`, or no simple pairing is found in
/// 1000 attempts (vanishingly unlikely for sane parameters).
#[must_use]
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        (n * d).is_multiple_of(2),
        "n * d must be even for a d-regular graph"
    );
    assert!(d < n, "degree must be below n");
    if d == 0 {
        return Graph::empty(n);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            match b.add_edge(u, v) {
                Ok(true) => {}
                Ok(false) => continue 'attempt, // parallel edge
                Err(_) => unreachable!("stub labels are in range"),
            }
        }
        return b.build();
    }
    panic!("no simple {d}-regular pairing found for n = {n} after 1000 attempts");
}

/// Preferential attachment (Barabási–Albert flavour): starts from a clique
/// on `k + 1` nodes, then each new node attaches to `k` distinct existing
/// nodes chosen with probability proportional to degree.
///
/// Connected by construction; almost always non-bipartite.
///
/// # Panics
///
/// Panics if `k == 0` or `n < k + 1`.
#[must_use]
pub fn preferential_attachment(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1, "attachment count must be positive");
    assert!(n > k, "need at least k + 1 = {} nodes, got {n}", k + 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<usize> = Vec::new();
    for u in 0..=k {
        for v in (u + 1)..=k {
            edge(&mut b, u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (k + 1)..n {
        let mut targets = Vec::with_capacity(k);
        let mut guard = 0;
        while targets.len() < k && guard < 10_000 {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
        }
        // Fallback (degenerate degree distributions): fill with smallest ids.
        let mut next = 0;
        while targets.len() < k {
            if next != v && !targets.contains(&next) {
                targets.push(next);
            }
            next += 1;
        }
        for &t in &targets {
            edge(&mut b, v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// A random geometric graph: `n` points uniform in the unit square, an edge
/// whenever two points are within Euclidean distance `radius`.
///
/// Candidate pairs are found through a cell grid with side length `>= radius`
/// (every close pair lives in the same or an adjacent cell), so generation is
/// `O(n + candidate pairs)` and scales to millions of edges — the benchmark
/// harness's spatially-clustered, high-diameter family.
///
/// Connectivity is *not* guaranteed; above the connectivity threshold
/// (`radius²` around `ln n / (π n)`) samples are connected with high
/// probability.
///
/// # Panics
///
/// Panics if `radius` is not a positive finite number.
#[must_use]
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(
        radius.is_finite() && radius > 0.0,
        "radius must be positive and finite, got {radius}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    let cells = ((1.0 / radius).floor().max(1.0) as usize).min(n.max(1));
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        // af-audit: allow(no-lossy-id-cast): i < n, and the builder rejects graphs
        // with more than u32::MAX nodes, so the point index always fits
        buckets[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }

    let r2 = radius * radius;
    let close = |i: u32, j: u32| {
        let (xi, yi) = pts[i as usize];
        let (xj, yj) = pts[j as usize];
        (xi - xj) * (xi - xj) + (yi - yj) * (yi - yj) <= r2
    };
    let mut b = GraphBuilder::new(n);
    // Half stencil: each unordered cell pair is visited exactly once.
    const FORWARD: [(isize, isize); 4] = [(1, 0), (-1, 1), (0, 1), (1, 1)];
    for cy in 0..cells {
        for cx in 0..cells {
            let here = &buckets[cy * cells + cx];
            for (a, &i) in here.iter().enumerate() {
                for &j in &here[a + 1..] {
                    if close(i, j) {
                        edge(&mut b, i as usize, j as usize);
                    }
                }
            }
            for (dx, dy) in FORWARD {
                let (nx, ny) = (cx as isize + dx, cy as isize + dy);
                if nx < 0 || ny < 0 || nx >= cells as isize || ny >= cells as isize {
                    continue;
                }
                let there = &buckets[ny as usize * cells + nx as usize];
                for &i in here {
                    for &j in there {
                        if close(i, j) {
                            edge(&mut b, i as usize, j as usize);
                        }
                    }
                }
            }
        }
    }
    b.build()
}

/// A Watts–Strogatz small-world graph: a ring lattice where every node is
/// joined to its `k / 2` nearest neighbours on each side, with each lattice
/// edge rewired to a uniform random endpoint with probability `beta`.
///
/// `beta = 0` is the pure lattice (high diameter), `beta = 1` approaches a
/// random graph (low diameter); small `beta` gives the small-world regime.
/// The edge count is `n * k / 2` minus rare collisions: rewiring skips
/// self-loops and duplicate edges, and a kept lattice edge can coincide
/// with an earlier rewired edge (duplicates collapse). Connectivity is not
/// strictly guaranteed but holds in practice for `beta < 1`.
///
/// # Panics
///
/// Panics if `k` is zero or odd, `n <= k`, or `beta` is outside `[0, 1]`.
#[must_use]
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need n > k, got n = {n}, k = {k}");
    assert!(
        (0.0..=1.0).contains(&beta),
        "beta must be in [0, 1], got {beta}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for j in 1..=k / 2 {
            let lattice = (u + j) % n;
            if rng.gen_bool(beta) {
                // Rewire the far endpoint; a handful of retries suffices
                // away from the complete-graph regime, after which the
                // lattice edge is kept.
                let mut rewired = false;
                for _ in 0..32 {
                    let w = rng.gen_range(0..n);
                    if w != u && !b.contains_edge(u, w) {
                        edge(&mut b, u, w);
                        rewired = true;
                        break;
                    }
                }
                if !rewired {
                    edge(&mut b, u, lattice);
                }
            } else {
                edge(&mut b, u, lattice);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn gnp_is_seed_deterministic() {
        let a = gnp(30, 0.2, 7);
        let b = gnp(30, 0.2, 7);
        let c = gnp(30, 0.2, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should (here) give different graphs");
    }

    #[test]
    fn gnp_extremes() {
        let g = gnp(10, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
        let g = gnp(10, 1.0, 1);
        assert_eq!(g.edge_count(), 45);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn gnp_rejects_bad_probability() {
        let _ = gnp(5, 1.5, 0);
    }

    #[test]
    fn gnp_connected_is_connected() {
        for seed in 0..20 {
            let g = gnp_connected(40, 0.05, seed);
            assert!(algo::is_connected(&g), "seed {seed}");
            assert_eq!(g.node_count(), 40);
        }
    }

    #[test]
    fn gnp_connected_patches_hopeless_density() {
        // p = 0 forces the patching path: result is a spanning chain of
        // components (here: of singletons) — still connected.
        let g = gnp_connected(12, 0.0, 3);
        assert!(algo::is_connected(&g));
        assert_eq!(g.edge_count(), 11);
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..20 {
            for n in [1usize, 2, 3, 5, 17, 64] {
                let g = random_tree(n, seed);
                assert_eq!(g.node_count(), n);
                assert_eq!(g.edge_count(), n.saturating_sub(1), "n={n} seed={seed}");
                assert!(algo::is_connected(&g), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn random_tree_is_seed_deterministic() {
        assert_eq!(random_tree(25, 99), random_tree(25, 99));
    }

    #[test]
    fn sparse_connected_has_requested_density() {
        for seed in 0..10 {
            let g = sparse_connected(30, 12, seed);
            assert!(algo::is_connected(&g));
            assert!(g.edge_count() >= 29);
            assert!(g.edge_count() <= 29 + 12);
        }
        // extra_edges larger than the complete graph saturates gracefully
        let g = sparse_connected(5, 100, 0);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn random_bipartite_is_bipartite() {
        for seed in 0..10 {
            let g = random_bipartite(8, 11, 0.4, seed);
            assert!(algo::is_bipartite(&g));
            assert_eq!(g.node_count(), 19);
        }
    }

    #[test]
    fn random_regular_has_uniform_degree() {
        for seed in 0..5 {
            for (n, d) in [(10, 3), (12, 4), (8, 2), (6, 3)] {
                let g = random_regular(n, d, seed);
                assert!(
                    g.nodes().all(|v| g.degree(v) == d),
                    "n={n} d={d} seed={seed}"
                );
                assert_eq!(g.edge_count(), n * d / 2);
            }
        }
    }

    #[test]
    fn random_regular_degree_zero() {
        let g = random_regular(5, 0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn random_regular_rejects_odd_total() {
        let _ = random_regular(5, 3, 1);
    }

    #[test]
    fn random_geometric_matches_naive_pair_scan() {
        // The bucketed generator must produce exactly the brute-force edge
        // set: every pair within `radius`, no others.
        for (n, radius, seed) in [
            (60usize, 0.18, 1u64),
            (120, 0.09, 2),
            (40, 0.5, 3),
            (25, 1.5, 4),
        ] {
            let g = random_geometric(n, radius, seed);
            // Re-derive the points from the same seeded stream.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
                .collect();
            let mut expect = GraphBuilder::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                    if dx * dx + dy * dy <= radius * radius {
                        expect.add_edge(i, j).unwrap();
                    }
                }
            }
            assert_eq!(g, expect.build(), "n={n} radius={radius} seed={seed}");
        }
    }

    #[test]
    fn random_geometric_is_seed_deterministic() {
        assert_eq!(random_geometric(80, 0.12, 5), random_geometric(80, 0.12, 5));
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn random_geometric_rejects_bad_radius() {
        let _ = random_geometric(5, 0.0, 0);
    }

    #[test]
    fn watts_strogatz_lattice_and_rewired() {
        // beta = 0 is exactly the circulant lattice.
        let g = watts_strogatz(20, 4, 0.0, 7);
        assert_eq!(g, crate::generators::circulant(20, &[1, 2]));
        assert_eq!(g.edge_count(), 40);
        // Rewired graphs keep (almost) the same edge budget and stay
        // deterministic per seed.
        let h = watts_strogatz(200, 6, 0.2, 11);
        assert_eq!(h, watts_strogatz(200, 6, 0.2, 11));
        assert!(h.edge_count() <= 600);
        assert!(h.edge_count() >= 580, "got {}", h.edge_count());
        assert_ne!(h, watts_strogatz(200, 6, 0.2, 12));
        assert!(algo::is_connected(&h));
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn watts_strogatz_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    fn preferential_attachment_shape() {
        for seed in 0..5 {
            let g = preferential_attachment(50, 2, seed);
            assert_eq!(g.node_count(), 50);
            assert!(algo::is_connected(&g));
            // seed clique has 3 edges; each of the other 47 nodes adds 2
            assert_eq!(g.edge_count(), 3 + 47 * 2);
        }
    }

    #[test]
    fn preferential_attachment_hub_bias() {
        let g = preferential_attachment(200, 1, 42);
        // With k = 1 the graph is a tree; the max degree should far exceed
        // the average for a scale-free-ish process.
        assert!(
            g.max_degree() >= 6,
            "expected a hub, got {}",
            g.max_degree()
        );
        assert_eq!(g.edge_count(), 199);
    }
}
