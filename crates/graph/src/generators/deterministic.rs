//! Deterministic graph families.
//!
//! These include every topology the paper discusses by name: the line
//! (Figure 1), the triangle (Figure 2/5), even cycles (Figure 3), cliques,
//! and bipartite families, plus standard shapes used by the experiment
//! sweeps.

use super::edge;
use crate::graph::{Graph, GraphBuilder};

/// The path (line) graph `P_n`: nodes `0..n`, edges `i — i+1`.
///
/// `path(0)` is the empty graph; `path(1)` a single node. Bipartite, with
/// diameter `n - 1`. Figure 1 of the paper floods `path(4)` from node 1.
///
/// # Examples
///
/// ```
/// use af_graph::generators::path;
/// let g = path(4);
/// assert_eq!((g.node_count(), g.edge_count()), (4, 3));
/// ```
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        edge(&mut b, i - 1, i);
    }
    b.build()
}

/// The cycle graph `C_n` (requires `n >= 3`).
///
/// Bipartite iff `n` is even. `cycle(3)` is the paper's triangle (Figures 2
/// and 5); `cycle(6)` is Figure 3's even cycle.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles are not simple graphs).
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires n >= 3, got {n}");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        edge(&mut b, i, (i + 1) % n);
    }
    b.build()
}

/// The complete graph `K_n`.
///
/// Non-bipartite for `n >= 3`, diameter 1 for `n >= 2`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            edge(&mut b, u, v);
        }
    }
    b.build()
}

/// The complete bipartite graph `K_{a,b}`: left part `0..a`, right part
/// `a..a+b`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            edge(&mut builder, u, a + v);
        }
    }
    builder.build()
}

/// The star `S_n` on `n` total nodes: hub 0 adjacent to every leaf `1..n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star requires at least the hub node");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        edge(&mut b, 0, v);
    }
    b.build()
}

/// The wheel `W_k`: a hub (node 0) joined to every node of a rim cycle
/// `1..=k`. Total `k + 1` nodes; non-bipartite for every `k >= 3`.
///
/// # Panics
///
/// Panics if `k < 3`.
#[must_use]
pub fn wheel(k: usize) -> Graph {
    assert!(k >= 3, "wheel requires a rim of at least 3 nodes, got {k}");
    let mut b = GraphBuilder::new(k + 1);
    for i in 0..k {
        edge(&mut b, 0, 1 + i);
        edge(&mut b, 1 + i, 1 + (i + 1) % k);
    }
    b.build()
}

/// The complete binary tree of height `h` (`2^(h+1) - 1` nodes, root 0,
/// children of `i` at `2i + 1` and `2i + 2`).
#[must_use]
pub fn binary_tree(h: u32) -> Graph {
    let n = (1usize << (h + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                edge(&mut b, i, c);
            }
        }
    }
    b.build()
}

/// The `rows × cols` grid graph; node `(r, c)` is numbered `r * cols + c`.
///
/// Bipartite, diameter `(rows - 1) + (cols - 1)`.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edge(&mut b, v, v + 1);
            }
            if r + 1 < rows {
                edge(&mut b, v, v + cols);
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wraparound).
///
/// Bipartite iff both `rows` and `cols` are even.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (wraparound would create parallel
/// edges or self-loops).
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires rows, cols >= 3");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            edge(&mut b, v, right);
            edge(&mut b, v, down);
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes (bit-flip adjacency).
///
/// Bipartite, diameter `d`.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                edge(&mut b, v, w);
            }
        }
    }
    b.build()
}

/// The Petersen graph: 10 nodes, 15 edges, girth 5, diameter 2,
/// non-bipartite, vertex-transitive — a classic stress test.
#[must_use]
pub fn petersen() -> Graph {
    let mut b = GraphBuilder::new(10);
    for i in 0..5 {
        edge(&mut b, i, (i + 1) % 5);
        edge(&mut b, 5 + i, 5 + (i + 2) % 5);
        edge(&mut b, i, 5 + i);
    }
    b.build()
}

/// The barbell graph: two disjoint copies of `K_k` joined by a single
/// bridge edge. `2k` nodes; non-bipartite for `k >= 3`, with large diameter
/// relative to its density — a worst case for flooding round counts.
///
/// # Panics
///
/// Panics if `k < 2`.
#[must_use]
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2, "barbell requires cliques of size >= 2");
    let mut b = GraphBuilder::new(2 * k);
    for u in 0..k {
        for v in (u + 1)..k {
            edge(&mut b, u, v);
            edge(&mut b, k + u, k + v);
        }
    }
    edge(&mut b, k - 1, k);
    b.build()
}

/// The lollipop graph: `K_k` with a path of `p` extra nodes attached.
/// `k + p` nodes total.
///
/// # Panics
///
/// Panics if `k < 3`.
#[must_use]
pub fn lollipop(k: usize, p: usize) -> Graph {
    assert!(k >= 3, "lollipop requires a clique of size >= 3");
    let mut b = GraphBuilder::new(k + p);
    for u in 0..k {
        for v in (u + 1)..k {
            edge(&mut b, u, v);
        }
    }
    for i in 0..p {
        edge(&mut b, k + i - 1, k + i);
    }
    b.build()
}

/// The circulant graph `C_n(offsets)`: node `i` is adjacent to
/// `i ± o (mod n)` for every offset `o`. Generalizes cycles
/// (`offsets = [1]`), complete graphs, and Möbius–Kantor-style families.
///
/// Offsets are taken modulo `n`; an offset of `0` (mod `n`) is ignored, as
/// it would be a self-loop.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n >= 1, "circulant requires at least one node");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for &o in offsets {
            let o = o % n;
            if o == 0 {
                continue;
            }
            edge(&mut b, v, (v + o) % n);
        }
    }
    b.build()
}

/// The friendship (windmill) graph `F_k`: `k` triangles sharing a single
/// hub node. `2k + 1` nodes; non-bipartite, diameter 2 (for `k >= 1`),
/// odd girth 3 everywhere — the densest odd-cycle stress test with a cut
/// vertex.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn friendship(k: usize) -> Graph {
    assert!(k >= 1, "friendship graph requires at least one triangle");
    let mut b = GraphBuilder::new(2 * k + 1);
    for i in 0..k {
        let (u, v) = (1 + 2 * i, 2 + 2 * i);
        edge(&mut b, 0, u);
        edge(&mut b, 0, v);
        edge(&mut b, u, v);
    }
    b.build()
}

/// The complete multipartite graph with the given part sizes: nodes in
/// different parts are adjacent, nodes within a part are not. Parts of
/// size zero are allowed and ignored.
///
/// `complete_multipartite(&[a, b])` equals `complete_bipartite(a, b)`;
/// `complete_multipartite(&[1; n])` equals `complete(n)`.
#[must_use]
pub fn complete_multipartite(parts: &[usize]) -> Graph {
    let n: usize = parts.iter().sum();
    let mut b = GraphBuilder::new(n);
    let mut starts = Vec::with_capacity(parts.len());
    let mut acc = 0usize;
    for &p in parts {
        starts.push(acc);
        acc += p;
    }
    for (i, &pi) in parts.iter().enumerate() {
        for (j, &pj) in parts.iter().enumerate().skip(i + 1) {
            for u in starts[i]..starts[i] + pi {
                for v in starts[j]..starts[j] + pj {
                    edge(&mut b, u, v);
                }
            }
        }
    }
    b.build()
}

/// A caterpillar tree: a spine path of `spine` nodes, each with `legs`
/// pendant leaves. `spine * (1 + legs)` nodes.
///
/// # Panics
///
/// Panics if `spine == 0`.
#[must_use]
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar requires a non-empty spine");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        edge(&mut b, i - 1, i);
    }
    for i in 0..spine {
        for l in 0..legs {
            edge(&mut b, i, spine + i * legs + l);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(2.into()), 2);
        assert!(algo::is_bipartite(&g));
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.edge_count(), 7);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(!algo::is_bipartite(&g));
        assert!(algo::is_bipartite(&cycle(8)));
    }

    #[test]
    #[should_panic(expected = "cycle requires n >= 3")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(algo::diameter(&g), Some(1));
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(0).node_count(), 0);
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(algo::is_bipartite(&g));
        assert_eq!(algo::diameter(&g), Some(2));
    }

    #[test]
    fn star_shape() {
        let g = star(8);
        assert_eq!(g.degree(0.into()), 7);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 1));
        assert_eq!(star(1).edge_count(), 0);
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.degree(0.into()), 5);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 3));
        assert!(!algo::is_bipartite(&g));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(algo::is_connected(&g));
        assert!(algo::is_bipartite(&g));
        assert_eq!(binary_tree(0).node_count(), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(algo::diameter(&g), Some(5));
        assert!(algo::is_bipartite(&g));
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 5);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 30);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(!algo::is_bipartite(&g)); // odd dimension
        assert!(algo::is_bipartite(&torus(4, 6)));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(algo::is_bipartite(&g));
        assert_eq!(hypercube(0).node_count(), 1);
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert_eq!(algo::diameter(&g), Some(2));
        assert_eq!(algo::girth(&g), Some(5));
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 2 * 6 + 1);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(3));
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 6 + 3);
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(4));
    }

    #[test]
    fn circulant_shape() {
        // C_8(1) is the plain cycle.
        assert_eq!(circulant(8, &[1]), cycle(8));
        // C_8(1,2): 4-regular.
        let g = circulant(8, &[1, 2]);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 16);
        // Offsets >= n wrap; offset 0 and multiples of n are ignored.
        assert_eq!(circulant(5, &[6]), circulant(5, &[1]));
        assert_eq!(circulant(5, &[0, 5]).edge_count(), 0);
        // C_n(1..n/2) is complete.
        assert_eq!(circulant(6, &[1, 2, 3]), complete(6));
        // Even n with only even offsets stays bipartite? No: offset 2 on
        // C8 creates odd cycles within a parity class? 0-2-4-6-0 is a C4.
        assert!(!algo::is_bipartite(&circulant(8, &[1, 2])));
        assert!(algo::is_bipartite(&circulant(8, &[1, 3])));
    }

    #[test]
    fn friendship_shape() {
        let g = friendship(4);
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.degree(0.into()), 8);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 2));
        assert!(!algo::is_bipartite(&g));
        assert_eq!(algo::diameter(&g), Some(2));
        assert_eq!(algo::girth(&g), Some(3));
        assert_eq!(friendship(1), cycle(3));
    }

    #[test]
    fn complete_multipartite_shape() {
        assert_eq!(complete_multipartite(&[3, 4]), complete_bipartite(3, 4));
        assert_eq!(complete_multipartite(&[1, 1, 1, 1]), complete(4));
        let g = complete_multipartite(&[2, 2, 3]);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 2 * 2 + 2 * 3 + 2 * 3);
        assert!(!algo::is_bipartite(&g));
        // Zero-size parts are ignored.
        assert_eq!(
            complete_multipartite(&[0, 3, 0, 4]),
            complete_bipartite(3, 4)
        );
        assert_eq!(complete_multipartite(&[]).node_count(), 0);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 11);
        assert!(algo::is_connected(&g));
        assert!(algo::is_bipartite(&g));
        assert_eq!(caterpillar(1, 0).node_count(), 1);
    }
}
