//! Graph partitioning for sharded flooding: split the node set into `k`
//! shards and precompute everything a per-shard flooding worker needs to
//! run without touching another shard's state.
//!
//! A [`Partition`] assigns every node to exactly one shard and materializes,
//! per shard, a **local out-arc CSR**: for each owned node, its out-arcs
//! (in neighbour order, exactly as [`Graph::incident_arcs`] yields them)
//! annotated with the *destination shard* — the shard owning the arc's
//! head. A sharded simulator routes each produced arc by that annotation:
//! same-shard arcs stay local, cross-shard arcs are batched for the round
//! barrier exchange. The **boundary map** (a `k × k` arc-count matrix)
//! records how many arcs cross each ordered shard pair, which is both the
//! communication cost model and a partition-quality metric
//! ([`Partition::cut_arc_count`]).
//!
//! Three [`PartitionStrategy`] flavours are provided:
//!
//! * [`Contiguous`](PartitionStrategy::Contiguous) — node-id ranges of
//!   near-equal size. Zero-cost to compute; locality is whatever the node
//!   numbering happens to encode (good for grids, poor for shuffled ids).
//! * [`RoundRobin`](PartitionStrategy::RoundRobin) — node `v` to shard
//!   `v mod k`. The adversarial baseline: perfectly balanced, maximal
//!   boundary. Useful for stress-testing the exchange path.
//! * [`Bfs`](PartitionStrategy::Bfs) — contiguous chunks of a BFS order
//!   (restarted per component), so each shard is a union of BFS-contiguous
//!   regions. Locality-aware without external dependencies; on bounded-
//!   degree graphs the cut is near the frontier width.
//!
//! Every strategy is deterministic, handles `n = 0`, `n = 1` and `k > n`,
//! and never fails: the requested `k` is clamped into
//! `1 ..= min(n, MAX_SHARDS)`, so zero means one and oversharding requests
//! degrade to one node per shard instead of allocating for empty shards.
//!
//! # Examples
//!
//! ```
//! use af_graph::{generators, Partition, PartitionStrategy};
//!
//! let g = generators::grid(8, 8);
//! let p = Partition::new(&g, PartitionStrategy::Bfs, 4);
//! assert_eq!(p.shard_count(), 4);
//! // Every node is owned by exactly one shard ...
//! let total: usize = (0..4).map(|s| p.nodes_of(s).len()).sum();
//! assert_eq!(total, g.node_count());
//! // ... and every arc appears in exactly one shard's local CSR.
//! let arcs: usize = (0..4).map(|s| p.arc_count_of(s)).sum();
//! assert_eq!(arcs, g.arc_count());
//! ```

use crate::graph::Graph;
use crate::id::{ArcId, NodeId};
use std::collections::VecDeque;

/// How [`Partition::new`] assigns nodes to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PartitionStrategy {
    /// Near-equal contiguous node-id ranges.
    Contiguous,
    /// Node `v` to shard `v mod k` (balanced, maximal boundary).
    RoundRobin,
    /// Contiguous chunks of a per-component BFS order (locality-aware).
    Bfs,
}

impl PartitionStrategy {
    /// All strategies, for exhaustive cross-checking in tests and benches.
    #[must_use]
    pub fn all() -> [PartitionStrategy; 3] {
        [
            PartitionStrategy::Contiguous,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Bfs,
        ]
    }

    /// The stable lowercase name used in CLIs and JSON reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Contiguous => "contiguous",
            PartitionStrategy::RoundRobin => "round-robin",
            PartitionStrategy::Bfs => "bfs",
        }
    }
}

impl core::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for PartitionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "contiguous" => Ok(PartitionStrategy::Contiguous),
            "round-robin" | "roundrobin" => Ok(PartitionStrategy::RoundRobin),
            "bfs" => Ok(PartitionStrategy::Bfs),
            other => Err(format!(
                "unknown partition strategy '{other}' (use contiguous, round-robin, or bfs)"
            )),
        }
    }
}

/// One shard's precomputed topology: its nodes and their out-arcs in CSR
/// form, each arc annotated with its destination shard.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ShardCsr {
    /// The owned nodes, in increasing id order.
    nodes: Vec<NodeId>,
    /// CSR offsets into `arcs`: local node `i` owns
    /// `arcs[offsets[i] .. offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// `(out-arc, destination shard)` pairs, grouped per owned node in
    /// neighbour order.
    arcs: Vec<(ArcId, u32)>,
}

/// Hard ceiling on the shard count, far above any real machine's core
/// count. Together with the node-count clamp in [`Partition::new`] this
/// bounds the `k × k` boundary matrix and the per-shard scratch state, so
/// a wild `--threads` request cannot ask the allocator for gigabytes.
pub const MAX_SHARDS: usize = 1024;

/// A `k`-way node partition of a [`Graph`] with per-shard local arc CSRs
/// and the cross-shard boundary map. See the [module docs](self) for the
/// design and [`PartitionStrategy`] for the available assignment flavours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    strategy: PartitionStrategy,
    node_count: usize,
    /// Node → owning shard.
    shard_of: Vec<u32>,
    /// Node → index into its shard's `nodes`/`offsets` arrays.
    local_index: Vec<u32>,
    shards: Vec<ShardCsr>,
    /// `boundary[s * k + t]` = number of arcs with tail in shard `s` and
    /// head in shard `t` (the diagonal counts intra-shard arcs).
    boundary: Vec<u64>,
}

impl Partition {
    /// Partitions `graph` into `k` shards with the given strategy.
    ///
    /// `k` is clamped into `1 ..= min(n, MAX_SHARDS)` (with a floor of one
    /// shard for the empty graph): zero means one, and a request beyond
    /// the node count or [`MAX_SHARDS`] is reduced — shards beyond `n`
    /// could only ever be empty, while their boundary-matrix and scratch
    /// memory would still be paid. Check [`Partition::shard_count`] for
    /// the effective `k`.
    #[must_use]
    pub fn new(graph: &Graph, strategy: PartitionStrategy, k: usize) -> Self {
        let n = graph.node_count();
        let k = clamp_shard_count(n, k);
        let shard_of = match strategy {
            PartitionStrategy::Contiguous => assign_chunked(&(0..n).collect::<Vec<_>>(), k),
            // af-audit: allow(no-lossy-id-cast): v % k < k <= n, bounded by u32::MAX
            PartitionStrategy::RoundRobin => (0..n).map(|v| (v % k) as u32).collect(),
            PartitionStrategy::Bfs => assign_chunked(&bfs_order(graph), k),
        };
        Self::from_assignment(graph, strategy, k, shard_of)
    }

    /// Builds the per-shard CSRs and the boundary map from a node → shard
    /// assignment (every entry must be `< k`).
    fn from_assignment(
        graph: &Graph,
        strategy: PartitionStrategy,
        k: usize,
        shard_of: Vec<u32>,
    ) -> Self {
        let n = graph.node_count();
        debug_assert_eq!(shard_of.len(), n);

        let mut shards: Vec<ShardCsr> = (0..k)
            .map(|_| ShardCsr {
                nodes: Vec::new(),
                offsets: vec![0],
                arcs: Vec::new(),
            })
            .collect();
        let mut local_index = vec![0u32; n];
        let mut boundary = vec![0u64; k * k];

        for v in graph.nodes() {
            let s = shard_of[v.index()] as usize;
            let shard = &mut shards[s];
            // af-audit: allow(no-unwrap-in-lib): a shard holds at most n <= u32::MAX nodes
            local_index[v.index()] = u32::try_from(shard.nodes.len()).expect("node count fits u32");
            shard.nodes.push(v);
            for (w, out) in graph.incident_arcs(v) {
                let t = shard_of[w.index()];
                shard.arcs.push((out, t));
                boundary[s * k + t as usize] += 1;
            }
            // af-audit: allow(no-unwrap-in-lib): a shard holds at most 2m <= u32::MAX arcs
            let end = u32::try_from(shard.arcs.len()).expect("arc count fits u32");
            shard.offsets.push(end);
        }

        Partition {
            strategy,
            node_count: n,
            shard_of,
            local_index,
            shards,
            boundary,
        }
    }

    /// The strategy this partition was built with.
    #[must_use]
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// Number of shards `k` (always at least one).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes of the partitioned graph.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The shard owning node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v.index()] as usize
    }

    /// The nodes owned by shard `s`, in increasing id order.
    ///
    /// # Panics
    ///
    /// Panics if `s >= k`.
    #[must_use]
    pub fn nodes_of(&self, s: usize) -> &[NodeId] {
        &self.shards[s].nodes
    }

    /// The index of `v` within its owning shard's node list
    /// (`nodes_of(shard_of(v))[local_index(v)] == v`). Lets per-shard
    /// simulator state be sized to the shard instead of the whole graph.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn local_index(&self, v: NodeId) -> usize {
        self.local_index[v.index()] as usize
    }

    /// Number of out-arcs whose tail is owned by shard `s` (the size of its
    /// local CSR). Summed over all shards this is exactly `2m`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= k`.
    #[must_use]
    pub fn arc_count_of(&self, s: usize) -> usize {
        self.shards[s].arcs.len()
    }

    /// The out-arcs of node `v` from its shard's local CSR, in neighbour
    /// order: `(arc, destination shard)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn out_arcs(&self, v: NodeId) -> &[(ArcId, u32)] {
        let shard = &self.shards[self.shard_of[v.index()] as usize];
        let li = self.local_index[v.index()] as usize;
        let lo = shard.offsets[li] as usize;
        let hi = shard.offsets[li + 1] as usize;
        &shard.arcs[lo..hi]
    }

    /// Boundary map entry: the number of arcs with tail in shard `s` and
    /// head in shard `t`. For `s == t` this counts intra-shard arcs; for
    /// `s != t` the map is symmetric (each cut edge contributes one arc in
    /// each direction).
    ///
    /// # Panics
    ///
    /// Panics if `s >= k` or `t >= k`.
    #[must_use]
    pub fn boundary_arcs(&self, s: usize, t: usize) -> u64 {
        assert!(s < self.shard_count() && t < self.shard_count());
        self.boundary[s * self.shard_count() + t]
    }

    /// Total number of cross-shard arcs (the off-diagonal mass of the
    /// boundary map) — the per-round worst-case exchange volume.
    #[must_use]
    pub fn cut_arc_count(&self) -> u64 {
        let k = self.shard_count();
        let mut cut = 0;
        for s in 0..k {
            for t in 0..k {
                if s != t {
                    cut += self.boundary[s * k + t];
                }
            }
        }
        cut
    }

    /// The fraction of arcs that cross shards, in `0.0 ..= 1.0` (`0.0` for
    /// an edgeless graph) — the headline partition-quality number.
    #[must_use]
    pub fn cut_fraction(&self) -> f64 {
        let total: u64 = self.boundary.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.cut_arc_count() as f64 / total as f64
        }
    }
}

/// The effective shard count [`Partition::new`] uses for a graph with `n`
/// nodes when `k` shards are requested: `1 ..= min(n, MAX_SHARDS)`, with a
/// floor of one shard for the empty graph. Exposed so callers (CLIs,
/// reports) can echo the count that will actually run.
#[must_use]
pub fn clamp_shard_count(n: usize, k: usize) -> usize {
    k.clamp(1, n.clamp(1, MAX_SHARDS))
}

/// Splits `order` (a permutation of `0..n`) into `k` near-equal contiguous
/// chunks and returns the node → shard assignment.
fn assign_chunked(order: &[usize], k: usize) -> Vec<u32> {
    let n = order.len();
    let mut shard_of = vec![0u32; n];
    for (pos, &v) in order.iter().enumerate() {
        // Chunk boundaries at floor(i * n / k): sizes differ by at most one.
        // af-audit: allow(no-unwrap-in-lib): the quotient is < k <= n <= u32::MAX
        shard_of[v] = u32::try_from(pos * k / n.max(1)).expect("shard fits u32");
    }
    shard_of
}

/// A BFS visit order covering every node: BFS from the lowest-id unvisited
/// node, restarted per component.
fn bfs_order(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    for root in 0..n {
        if seen[root] {
            continue;
        }
        seen[root] = true;
        queue.push_back(NodeId::new(root));
        while let Some(u) = queue.pop_front() {
            order.push(u.index());
            for &w in graph.neighbors(u) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_invariants(g: &Graph, p: &Partition) {
        let k = p.shard_count();
        // Every node in exactly one shard, and shard node lists agree with
        // the shard_of map.
        let mut owned = vec![0usize; g.node_count()];
        for s in 0..k {
            for &v in p.nodes_of(s) {
                owned[v.index()] += 1;
                assert_eq!(p.shard_of(v), s);
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "every node in one shard");
        // Per-shard out-arc counts sum to 2m.
        let arcs: usize = (0..k).map(|s| p.arc_count_of(s)).sum();
        assert_eq!(arcs, g.arc_count());
        // Boundary map row sums match per-shard arc counts; off-diagonal
        // symmetric.
        for s in 0..k {
            let row: u64 = (0..k).map(|t| p.boundary_arcs(s, t)).sum();
            assert_eq!(row, p.arc_count_of(s) as u64);
            for t in 0..k {
                if s != t {
                    assert_eq!(p.boundary_arcs(s, t), p.boundary_arcs(t, s));
                }
            }
        }
        // Local CSR rows are exactly incident_arcs with correct dest shards.
        for v in g.nodes() {
            let row = p.out_arcs(v);
            let want: Vec<(ArcId, u32)> = g
                .incident_arcs(v)
                .map(|(w, a)| (a, p.shard_of(w) as u32))
                .collect();
            assert_eq!(row, want.as_slice(), "CSR row of {v}");
        }
    }

    #[test]
    fn invariants_hold_for_all_strategies_and_k() {
        for g in [
            generators::petersen(),
            generators::grid(5, 7),
            generators::cycle(9),
            generators::star(6),
            generators::sparse_connected(40, 30, 7),
        ] {
            for strategy in PartitionStrategy::all() {
                for k in [1, 2, 3, 8, 64] {
                    let p = Partition::new(&g, strategy, k);
                    assert_eq!(p.shard_count(), k.min(g.node_count()));
                    assert_eq!(p.strategy(), strategy);
                    check_invariants(&g, &p);
                }
            }
        }
    }

    #[test]
    fn degenerate_graphs() {
        for strategy in PartitionStrategy::all() {
            for n in [0usize, 1, 2] {
                let g = Graph::empty(n);
                for k in [1, 2, 5] {
                    let p = Partition::new(&g, strategy, k);
                    assert_eq!(p.node_count(), n);
                    assert_eq!(p.shard_count(), k.clamp(1, n.max(1)));
                    check_invariants(&g, &p);
                    assert_eq!(p.cut_arc_count(), 0);
                    assert_eq!(p.cut_fraction(), 0.0);
                }
            }
        }
    }

    #[test]
    fn k_is_clamped_at_both_ends() {
        let g = generators::cycle(5);
        // Zero means one.
        let p = Partition::new(&g, PartitionStrategy::Contiguous, 0);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.nodes_of(0).len(), 5);
        assert_eq!(p.cut_arc_count(), 0);
        // Oversharding clamps to the node count (one node per shard), so
        // wild thread requests cannot allocate k x k boundary matrices.
        let p = Partition::new(&g, PartitionStrategy::Bfs, 1_000_000);
        assert_eq!(p.shard_count(), 5);
        check_invariants(&g, &p);
        // MAX_SHARDS caps even node-rich graphs.
        let big = Graph::empty(MAX_SHARDS * 2);
        let p = Partition::new(&big, PartitionStrategy::RoundRobin, MAX_SHARDS * 2);
        assert_eq!(p.shard_count(), MAX_SHARDS);
    }

    #[test]
    fn oversharding_clamps_instead_of_leaving_empty_shards() {
        let g = generators::path(3);
        for strategy in PartitionStrategy::all() {
            let p = Partition::new(&g, strategy, 16);
            assert_eq!(p.shard_count(), 3);
            for s in 0..3 {
                assert_eq!(p.nodes_of(s).len(), 1, "one node per shard");
            }
            check_invariants(&g, &p);
        }
    }

    #[test]
    fn disconnected_graphs_are_fully_covered() {
        // Two triangles plus two isolated nodes.
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        for strategy in PartitionStrategy::all() {
            let p = Partition::new(&g, strategy, 3);
            check_invariants(&g, &p);
        }
    }

    #[test]
    fn contiguous_ranges_are_contiguous_and_balanced() {
        let g = Graph::empty(10);
        let p = Partition::new(&g, PartitionStrategy::Contiguous, 3);
        let sizes: Vec<usize> = (0..3).map(|s| p.nodes_of(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&c| (3..=4).contains(&c)), "{sizes:?}");
        for s in 0..3 {
            let nodes = p.nodes_of(s);
            for w in nodes.windows(2) {
                assert_eq!(w[1].index(), w[0].index() + 1, "contiguous ids");
            }
        }
    }

    #[test]
    fn round_robin_strides() {
        let g = Graph::empty(7);
        let p = Partition::new(&g, PartitionStrategy::RoundRobin, 3);
        for v in g.nodes() {
            assert_eq!(p.shard_of(v), v.index() % 3);
        }
    }

    #[test]
    fn bfs_beats_round_robin_on_grids() {
        // The locality-aware partitioner must produce a dramatically
        // smaller cut than the adversarial baseline on a mesh.
        let g = generators::grid(16, 16);
        let bfs = Partition::new(&g, PartitionStrategy::Bfs, 4);
        let rr = Partition::new(&g, PartitionStrategy::RoundRobin, 4);
        assert!(
            bfs.cut_arc_count() * 3 < rr.cut_arc_count(),
            "bfs cut {} vs round-robin cut {}",
            bfs.cut_arc_count(),
            rr.cut_arc_count()
        );
        assert!(bfs.cut_fraction() < 0.25);
    }

    #[test]
    fn strategy_names_roundtrip() {
        for s in PartitionStrategy::all() {
            assert_eq!(s.name().parse::<PartitionStrategy>(), Ok(s));
            assert_eq!(s.to_string(), s.name());
        }
        assert_eq!(
            "roundrobin".parse::<PartitionStrategy>(),
            Ok(PartitionStrategy::RoundRobin)
        );
        assert!("metis".parse::<PartitionStrategy>().is_err());
    }
}
