//! The core [`Graph`] type: a compact, immutable, undirected simple graph.
//!
//! Graphs are built through [`GraphBuilder`] (or the convenience
//! [`Graph::from_edges`]) and are immutable afterwards, which lets the
//! representation be a cache-friendly CSR (compressed sparse row) layout
//! with sorted neighbour lists and stable edge/arc identifiers.

use crate::error::GraphError;
use crate::id::{ArcId, Direction, EdgeId, NodeId};
use std::collections::BTreeSet;

/// A finite, undirected, simple graph (no self-loops, no parallel edges).
///
/// The node set is always `0..n`. Isolated nodes are allowed (the flooding
/// theory only ever runs on connected graphs, but the substrate does not
/// force that; use [`crate::algo::is_connected`] to check).
///
/// # Representation
///
/// Adjacency is stored CSR-style: `offsets[v]..offsets[v+1]` indexes into a
/// flat `neighbors` array sorted per node, with a parallel `incident_edges`
/// array giving the [`EdgeId`] of each incident edge. Edge `e`'s canonical
/// endpoints `(u, v)` with `u < v` are stored in `endpoints[e]`, sorted
/// lexicographically so edge identifiers are deterministic for a given edge
/// set regardless of insertion order.
///
/// # Examples
///
/// ```
/// use af_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(1.into()), 2);
/// assert!(g.contains_edge(2.into(), 1.into()));
/// # Ok::<(), af_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    incident_edges: Vec<EdgeId>,
    endpoints: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    ///
    /// # Examples
    ///
    /// ```
    /// use af_graph::Graph;
    /// let g = Graph::empty(5);
    /// assert_eq!(g.node_count(), 5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            incident_edges: Vec::new(),
            endpoints: Vec::new(),
        }
    }

    /// Builds a graph with `n` nodes from an iterator of endpoint pairs.
    ///
    /// Duplicate edges (in either orientation) are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if both endpoints of a pair coincide.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Number of nodes `n`.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Number of directed arcs, always `2m`.
    #[inline]
    #[must_use]
    pub fn arc_count(&self) -> usize {
        2 * self.edge_count()
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterates over all node identifiers `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count()).map(NodeId::new)
    }

    /// Iterates over all edge identifiers `0..m`.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edge_count()).map(EdgeId::new)
    }

    /// Iterates over all arc identifiers `0..2m`.
    pub fn arcs(&self) -> impl ExactSizeIterator<Item = ArcId> + Clone {
        (0..self.arc_count()).map(ArcId::from_index)
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Iterates over `(neighbor, edge)` pairs incident to `v`, in neighbour
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident(&self, v: NodeId) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.incident_edges[lo..hi].iter().copied())
    }

    /// Iterates over `(neighbor, arc)` pairs for `v`, in neighbour order,
    /// where the arc points *from* `v` *to* the neighbour.
    ///
    /// Arc identifiers are derived directly from the CSR layout, so hot
    /// loops over a node's out-arcs need no per-neighbour binary search
    /// (unlike repeated [`Graph::arc_between`] calls).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use af_graph::Graph;
    ///
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
    /// for (w, a) in g.incident_arcs(1.into()) {
    ///     assert_eq!(g.arc_tail(a), 1.into());
    ///     assert_eq!(g.arc_head(a), w);
    /// }
    /// # Ok::<(), af_graph::GraphError>(())
    /// ```
    pub fn incident_arcs(&self, v: NodeId) -> impl ExactSizeIterator<Item = (NodeId, ArcId)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.incident_edges[lo..hi].iter().copied())
            .map(move |(w, e)| {
                let dir = if v < w {
                    Direction::Forward
                } else {
                    Direction::Reverse
                };
                (w, ArcId::new(e, dir))
            })
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Maximum degree, or 0 for an empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree, or 0 for an empty graph.
    #[must_use]
    pub fn min_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// The canonical `(min, max)` endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    #[must_use]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// Returns `true` if `u` and `v` are adjacent.
    ///
    /// Runs in `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Returns the identifier of the edge between `u` and `v`, if present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let lo = self.offsets[u.index()] as usize;
        let hi = self.offsets[u.index() + 1] as usize;
        let pos = self.neighbors[lo..hi].binary_search(&v).ok()?;
        Some(self.incident_edges[lo + pos])
    }

    /// Returns the arc *from* `tail` *to* `head`, if the edge exists.
    ///
    /// # Panics
    ///
    /// Panics if `tail` is out of range.
    #[must_use]
    pub fn arc_between(&self, tail: NodeId, head: NodeId) -> Option<ArcId> {
        let e = self.edge_between(tail, head)?;
        let dir = if tail < head {
            Direction::Forward
        } else {
            Direction::Reverse
        };
        Some(ArcId::new(e, dir))
    }

    /// Returns the `(tail, head)` pair of arc `a` (the arc points tail → head).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    #[must_use]
    pub fn arc_endpoints(&self, a: ArcId) -> (NodeId, NodeId) {
        let (u, v) = self.endpoints(a.edge());
        match a.direction() {
            Direction::Forward => (u, v),
            Direction::Reverse => (v, u),
        }
    }

    /// The node an arc points at.
    #[inline]
    #[must_use]
    pub fn arc_head(&self, a: ArcId) -> NodeId {
        self.arc_endpoints(a).1
    }

    /// The node an arc originates from.
    #[inline]
    #[must_use]
    pub fn arc_tail(&self, a: ArcId) -> NodeId {
        self.arc_endpoints(a).0
    }

    /// Iterates over the canonical endpoint pairs of all edges, in edge-id
    /// order.
    pub fn edge_list(&self) -> impl ExactSizeIterator<Item = (NodeId, NodeId)> + '_ {
        self.endpoints.iter().copied()
    }

    /// Sum of all degrees divided by node count, or 0.0 for an empty graph.
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }
}

impl core::fmt::Debug for Graph {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.node_count())
            .field("m", &self.edge_count())
            .field("edges", &self.endpoints)
            .finish()
    }
}

impl core::fmt::Display for Graph {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.node_count(), self.edge_count())
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::empty(0)
    }
}

#[cfg(feature = "serde")]
mod serde_impl {
    use super::*;
    use serde::de::Error as _;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct GraphRepr {
        n: usize,
        edges: Vec<(usize, usize)>,
    }

    impl Serialize for Graph {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let repr = GraphRepr {
                n: self.node_count(),
                edges: self
                    .edge_list()
                    .map(|(u, v)| (u.index(), v.index()))
                    .collect(),
            };
            repr.serialize(serializer)
        }
    }

    impl<'de> Deserialize<'de> for Graph {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let repr = GraphRepr::deserialize(deserializer)?;
            Graph::from_edges(repr.n, repr.edges).map_err(D::Error::custom)
        }
    }
}

/// Incremental builder for [`Graph`] ([C-BUILDER]).
///
/// The builder validates endpoints eagerly and collapses duplicate edges, so
/// the built graph is always a valid simple graph.
///
/// # Examples
///
/// ```
/// use af_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// assert!(b.add_edge(0, 1)?);  // newly inserted
/// assert!(!b.add_edge(1, 0)?); // duplicate (other orientation)
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), af_graph::GraphError>(())
/// ```
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of distinct edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Returns `Ok(true)` if the edge was
    /// newly inserted and `Ok(false)` if it was already present.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`, or
    /// [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<bool, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        // af-audit: allow(no-lossy-id-cast): u, v < n, checked just above, and
        // GraphBuilder::new rejects n > u32::MAX
        let key = (u.min(v) as u32, u.max(v) as u32);
        Ok(self.edges.insert(key))
    }

    /// Adds every edge from an iterator, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`GraphBuilder::add_edge`].
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Returns `true` if the edge `{u, v}` has been added.
    #[must_use]
    pub fn contains_edge(&self, u: usize, v: usize) -> bool {
        // af-audit: allow(no-lossy-id-cast): out-of-range endpoints simply miss,
        // since no stored key can exceed n
        let key = (u.min(v) as u32, u.max(v) as u32);
        self.edges.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// Does not consume the builder, so variations of a graph can be built
    /// incrementally.
    #[must_use]
    pub fn build(&self) -> Graph {
        let n = self.n;
        let m = self.edges.len();

        // The BTreeSet iterates in lexicographic (min, max) order, which
        // fixes edge ids deterministically.
        let endpoints: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .map(|&(u, v)| (NodeId::new(u as usize), NodeId::new(v as usize)))
            .collect();

        let mut deg = vec![0u32; n];
        for &(u, v) in &endpoints {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }

        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![NodeId::default(); 2 * m];
        let mut incident_edges = vec![EdgeId::default(); 2 * m];
        for (e, &(u, v)) in endpoints.iter().enumerate() {
            let cu = cursor[u.index()] as usize;
            neighbors[cu] = v;
            incident_edges[cu] = EdgeId::new(e);
            cursor[u.index()] += 1;
            let cv = cursor[v.index()] as usize;
            neighbors[cv] = u;
            incident_edges[cv] = EdgeId::new(e);
            cursor[v.index()] += 1;
        }

        // Neighbour lists must be sorted for binary-search lookups. Because
        // endpoint pairs were visited in lexicographic order, each node's
        // list is already sorted... for the *first* endpoints, but a node can
        // appear as both min and max endpoint in interleaved order, so sort
        // defensively (cheap: lists are short and nearly sorted).
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut pairs: Vec<(NodeId, EdgeId)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(incident_edges[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (nb, ie)) in pairs.into_iter().enumerate() {
                neighbors[lo + i] = nb;
                incident_edges[lo + i] = ie;
            }
        }

        Graph {
            offsets,
            neighbors,
            incident_edges,
            endpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // 0 - 1 - 2
        //     |  /
        //     3
        Graph::from_edges(4, [(0, 1), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.arc_count(), 8);
        assert!(!g.is_empty());
        assert!(Graph::empty(0).is_empty());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = sample();
        assert_eq!(g.neighbors(1.into()), &[0.into(), 2.into(), 3.into()]);
        assert_eq!(g.neighbors(0.into()), &[1.into()]);
        assert_eq!(g.neighbors(3.into()), &[1.into(), 2.into()]);
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.degree(0.into()), 1);
        assert_eq!(g.degree(1.into()), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_ids_are_lexicographic() {
        let g = sample();
        let pairs: Vec<_> = g.edge_list().collect();
        assert_eq!(
            pairs,
            vec![
                (0.into(), 1.into()),
                (1.into(), 2.into()),
                (1.into(), 3.into()),
                (2.into(), 3.into()),
            ]
        );
    }

    #[test]
    fn edge_ids_do_not_depend_on_insertion_order() {
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3), (2, 3)]).unwrap();
        let b = Graph::from_edges(4, [(3, 2), (3, 1), (2, 1), (1, 0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn contains_and_lookup() {
        let g = sample();
        assert!(g.contains_edge(0.into(), 1.into()));
        assert!(g.contains_edge(1.into(), 0.into()));
        assert!(!g.contains_edge(0.into(), 3.into()));
        assert_eq!(g.edge_between(2.into(), 3.into()), Some(EdgeId::new(3)));
        assert_eq!(g.edge_between(0.into(), 2.into()), None);
    }

    #[test]
    fn arcs_point_the_right_way() {
        let g = sample();
        let a = g.arc_between(3.into(), 1.into()).unwrap();
        assert_eq!(g.arc_tail(a), 3.into());
        assert_eq!(g.arc_head(a), 1.into());
        assert_eq!(a.direction(), Direction::Reverse);
        let b = a.reversed();
        assert_eq!(g.arc_tail(b), 1.into());
        assert_eq!(g.arc_head(b), 3.into());
        assert_eq!(g.arc_between(1.into(), 3.into()), Some(b));
    }

    #[test]
    fn incident_arcs_agree_with_arc_between() {
        let g = sample();
        for v in g.nodes() {
            let pairs: Vec<(NodeId, ArcId)> = g.incident_arcs(v).collect();
            assert_eq!(pairs.len(), g.degree(v));
            for (w, a) in pairs {
                assert_eq!(Some(a), g.arc_between(v, w));
                assert_eq!(g.arc_tail(a), v);
                assert_eq!(g.arc_head(a), w);
            }
        }
    }

    #[test]
    fn incident_pairs_match_neighbors() {
        let g = sample();
        for v in g.nodes() {
            let via_incident: Vec<NodeId> = g.incident(v).map(|(w, _)| w).collect();
            assert_eq!(via_incident.as_slice(), g.neighbors(v));
            for (w, e) in g.incident(v) {
                let (a, b) = g.endpoints(e);
                assert!((a, b) == (v.min(w), v.max(w)));
            }
        }
    }

    #[test]
    fn builder_rejects_bad_edges() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(
            b.add_edge(0, 3),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
        assert_eq!(
            b.add_edge(5, 0),
            Err(GraphError::NodeOutOfRange { node: 5, n: 3 })
        );
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
        assert_eq!(b.edge_count(), 0);
    }

    #[test]
    fn builder_collapses_duplicates() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 1).unwrap());
        assert!(!b.add_edge(0, 1).unwrap());
        assert!(!b.add_edge(1, 0).unwrap());
        assert!(b.contains_edge(1, 0));
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g1 = b.build();
        b.add_edge(1, 2).unwrap();
        let g2 = b.build();
        assert_eq!(g1.edge_count(), 1);
        assert_eq!(g2.edge_count(), 2);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = Graph::empty(3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.neighbors(0.into()), &[]);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(Graph::default().node_count(), 0);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let g = sample();
        assert!(format!("{g:?}").contains("Graph"));
        assert_eq!(g.to_string(), "Graph(n=4, m=4)");
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_roundtrip() {
        let g = sample();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_rejects_invalid() {
        let bad = r#"{"n": 2, "edges": [[0, 5]]}"#;
        assert!(serde_json::from_str::<Graph>(bad).is_err());
        let loop_edge = r#"{"n": 2, "edges": [[1, 1]]}"#;
        assert!(serde_json::from_str::<Graph>(loop_edge).is_err());
    }
}
