//! Plain-text graph input/output: a line-oriented edge-list format and a
//! Graphviz DOT emitter.
//!
//! The edge-list format is:
//!
//! ```text
//! # comments and blank lines are ignored
//! n 6          # node count (must appear before any edge)
//! 0 1
//! 1 2
//! ```

use crate::error::GraphError;
use crate::graph::{Graph, GraphBuilder};
use crate::id::NodeId;
use std::fmt::Write as _;

/// Serializes a graph to the edge-list text format parsed by
/// [`from_edge_list`].
///
/// # Examples
///
/// ```
/// use af_graph::{generators, io};
///
/// let g = generators::path(3);
/// let text = io::to_edge_list(&g);
/// let back = io::from_edge_list(&text)?;
/// assert_eq!(g, back);
/// # Ok::<(), af_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", graph.node_count());
    for (u, v) in graph.edge_list() {
        let _ = writeln!(out, "{} {}", u.index(), v.index());
    }
    out
}

/// Parses graph text in either supported format, auto-detected.
///
/// A first non-comment, non-blank line starting with the `n` node-count
/// header selects the edge-list format; anything else is parsed as
/// graph6. This is the sniffing rule every text entry point shares — the
/// CLI's file loader and the `af-serve` daemon's `Load` verb both call
/// it, so a file that loads in one loads in the other.
///
/// # Errors
///
/// Returns the parse error of the format that was attempted.
///
/// # Examples
///
/// ```
/// use af_graph::{generators, io};
///
/// let g = generators::cycle(3);
/// assert_eq!(io::from_text(&io::to_edge_list(&g))?, g);
/// assert_eq!(io::from_text("Bw")?, g); // graph6 C_3
/// # Ok::<(), af_graph::GraphError>(())
/// ```
pub fn from_text(text: &str) -> Result<Graph, GraphError> {
    let looks_like_edge_list = text
        .lines()
        .map(str::trim)
        .find(|l| !l.is_empty() && !l.starts_with('#'))
        .is_some_and(|l| l.starts_with("n ") || l == "n");
    if looks_like_edge_list {
        from_edge_list(text)
    } else {
        from_graph6(text)
    }
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, a missing or duplicate
/// `n` header, or edges before the header; and the underlying construction
/// error for out-of-range endpoints or self-loops.
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut builder: Option<GraphBuilder> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // af-audit: allow(no-unwrap-in-lib): the line was checked non-empty above
        let first = tokens.next().expect("non-empty line has a token");
        if first == "n" {
            if builder.is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "duplicate node-count header".into(),
                });
            }
            let count: usize = tokens
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "missing node count after 'n'".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid node count: {e}"),
                })?;
            builder = Some(GraphBuilder::new(count));
        } else {
            let b = builder.as_mut().ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "edge before 'n <count>' header".into(),
            })?;
            let u: usize = first.parse().map_err(|e| GraphError::Parse {
                line: line_no,
                message: format!("invalid endpoint: {e}"),
            })?;
            let v: usize = tokens
                .next()
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: "edge line needs two endpoints".into(),
                })?
                .parse()
                .map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid endpoint: {e}"),
                })?;
            if tokens.next().is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: "trailing tokens on edge line".into(),
                });
            }
            b.add_edge(u, v)?;
        }
    }
    let builder = builder.ok_or(GraphError::Parse {
        line: 0,
        message: "missing 'n <count>' header".into(),
    })?;
    Ok(builder.build())
}

/// Emits the graph in Graphviz DOT syntax (undirected), one edge per line.
///
/// # Examples
///
/// ```
/// use af_graph::{generators, io};
/// let dot = io::to_dot(&generators::path(3), "p3");
/// assert!(dot.starts_with("graph p3 {"));
/// assert!(dot.contains("0 -- 1;"));
/// ```
#[must_use]
pub fn to_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in graph.nodes() {
        if graph.degree(v) == 0 {
            let _ = writeln!(out, "    {};", v.index());
        }
    }
    for (u, v) in graph.edge_list() {
        let _ = writeln!(out, "    {} -- {};", u.index(), v.index());
    }
    out.push_str("}\n");
    out
}

/// Serializes a graph to the **graph6** format (McKay's nauty/geng
/// format): the standard interchange format for exhaustive graph
/// catalogues, supported so enumeration results can be cross-checked
/// against external tools.
///
/// Supports `n ≤ 258047` (the one- and four-byte size headers).
///
/// # Panics
///
/// Panics if the graph has more than 258047 nodes.
///
/// # Examples
///
/// ```
/// use af_graph::{generators, io};
///
/// // The triangle is "Bw" in graph6.
/// assert_eq!(io::to_graph6(&generators::cycle(3)), "Bw");
/// let back = io::from_graph6("Bw")?;
/// assert_eq!(back, generators::cycle(3));
/// # Ok::<(), af_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_graph6(graph: &Graph) -> String {
    let n = graph.node_count();
    assert!(
        n <= 258_047,
        "graph6 supports at most 258047 nodes, got {n}"
    );
    let mut bytes: Vec<u8> = Vec::new();
    if n <= 62 {
        // af-audit: allow(no-lossy-id-cast): n <= 62 here
        bytes.push(63 + n as u8);
    } else {
        bytes.push(126);
        // af-audit: allow(no-lossy-id-cast): masked to 6 bits
        bytes.push(63 + ((n >> 12) & 0x3f) as u8);
        // af-audit: allow(no-lossy-id-cast): masked to 6 bits
        bytes.push(63 + ((n >> 6) & 0x3f) as u8);
        // af-audit: allow(no-lossy-id-cast): masked to 6 bits
        bytes.push(63 + (n & 0x3f) as u8);
    }
    // Upper-triangle bits, column-major: (0,1), (0,2), (1,2), (0,3), ...
    let mut acc = 0u8;
    let mut filled = 0u8;
    for v in 1..n {
        for u in 0..v {
            let bit = u8::from(graph.contains_edge(NodeId::new(u), NodeId::new(v)));
            acc = (acc << 1) | bit;
            filled += 1;
            if filled == 6 {
                bytes.push(63 + acc);
                acc = 0;
                filled = 0;
            }
        }
    }
    if filled > 0 {
        acc <<= 6 - filled;
        bytes.push(63 + acc);
    }
    // af-audit: allow(no-unwrap-in-lib): every pushed byte is 63..=126
    String::from_utf8(bytes).expect("graph6 bytes are printable ASCII")
}

/// Parses a **graph6**-encoded graph (see [`to_graph6`]).
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for empty input, characters outside the
/// printable graph6 range, or truncated adjacency data.
pub fn from_graph6(text: &str) -> Result<Graph, GraphError> {
    let parse_err = |message: &str| GraphError::Parse {
        line: 1,
        message: message.into(),
    };
    let bytes = text.trim_end().as_bytes();
    if bytes.is_empty() {
        return Err(parse_err("empty graph6 input"));
    }
    for &b in bytes {
        if !(63..=126).contains(&b) {
            return Err(parse_err(&format!(
                "byte {b} outside graph6 range 63..=126"
            )));
        }
    }
    let (n, mut pos) = if bytes[0] == 126 {
        if bytes.len() < 4 || bytes[1] == 126 {
            return Err(parse_err("unsupported or truncated graph6 size header"));
        }
        let n = ((bytes[1] as usize - 63) << 12)
            | ((bytes[2] as usize - 63) << 6)
            | (bytes[3] as usize - 63);
        (n, 4)
    } else {
        ((bytes[0] - 63) as usize, 1)
    };

    let mut builder = GraphBuilder::new(n);
    let mut bit_index = 0u32;
    let mut current: u8 = 0;
    for v in 1..n {
        for u in 0..v {
            if bit_index.is_multiple_of(6) {
                if pos >= bytes.len() {
                    return Err(parse_err("truncated graph6 adjacency data"));
                }
                current = bytes[pos] - 63;
                pos += 1;
            }
            let shift = 5 - (bit_index % 6);
            if current >> shift & 1 == 1 {
                builder.add_edge(u, v)?;
            }
            bit_index += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_various_graphs() {
        for g in [
            generators::path(5),
            generators::cycle(6),
            generators::petersen(),
            Graph::empty(4),
            Graph::empty(0),
        ] {
            let text = to_edge_list(&g);
            assert_eq!(from_edge_list(&text).unwrap(), g);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# a graph\nn 3   # three nodes\n\n0 1\n1 2 # last\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        let err = from_edge_list("0 1\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = from_edge_list("# nothing\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 0, .. }));
    }

    #[test]
    fn rejects_duplicate_header() {
        let err = from_edge_list("n 3\nn 4\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_malformed_edges() {
        assert!(from_edge_list("n 3\n0\n").is_err());
        assert!(from_edge_list("n 3\n0 x\n").is_err());
        assert!(from_edge_list("n 3\n0 1 2\n").is_err());
        assert!(from_edge_list("n two\n").is_err());
    }

    #[test]
    fn propagates_construction_errors() {
        let err = from_edge_list("n 2\n0 5\n").unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
        let err = from_edge_list("n 2\n1 1\n").unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn graph6_known_values() {
        // Reference strings from the nauty documentation / common usage.
        assert_eq!(to_graph6(&generators::cycle(3)), "Bw");
        assert_eq!(to_graph6(&Graph::empty(0)), "?");
        assert_eq!(to_graph6(&Graph::empty(1)), "@");
        assert_eq!(to_graph6(&generators::path(2)), "A_");
        // C5 is "DqK" per nauty's formats.txt example graphs? Check by
        // roundtrip instead of by constant for the larger cases.
    }

    #[test]
    fn graph6_roundtrip_zoo() {
        for g in [
            generators::path(7),
            generators::cycle(6),
            generators::petersen(),
            generators::complete(9),
            generators::grid(4, 5),
            Graph::empty(5),
            generators::gnp(40, 0.3, 7),
        ] {
            let s = to_graph6(&g);
            assert!(s.bytes().all(|b| (63..=126).contains(&b)));
            assert_eq!(from_graph6(&s).unwrap(), g, "{g}");
        }
    }

    #[test]
    fn graph6_roundtrip_large_n_header() {
        // n > 62 exercises the four-byte header.
        let g = generators::cycle(100);
        let s = to_graph6(&g);
        assert_eq!(s.as_bytes()[0], 126);
        assert_eq!(from_graph6(&s).unwrap(), g);
    }

    #[test]
    fn graph6_rejects_garbage() {
        assert!(from_graph6("").is_err());
        assert!(from_graph6("\u{7}bad").is_err());
        assert!(from_graph6("D").is_err()); // n = 5 but no adjacency bytes
        let tilde_only = "~";
        assert!(from_graph6(tilde_only).is_err());
    }

    #[test]
    fn graph6_trailing_newline_tolerated() {
        assert_eq!(from_graph6("Bw\n").unwrap(), generators::cycle(3));
    }

    #[test]
    fn dot_output_contains_isolated_nodes() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let dot = to_dot(&g, "g");
        assert!(dot.contains("    2;"));
        assert!(dot.contains("    0 -- 1;"));
        assert!(dot.ends_with("}\n"));
    }
}
