//! Fault injection for synchronous floods — a robustness extension beyond
//! the paper's fault-free model ("no messages are lost in transit").
//!
//! [`FaultySyncEngine`] wraps the synchronous semantics with two seeded
//! fault classes:
//!
//! * **message loss** — each in-flight message is independently dropped
//!   with probability `loss_rate` before delivery;
//! * **crash faults** — a node listed in the crash schedule stops at its
//!   crash round: it never receives nor sends afterwards.
//!
//! A finding the test suite pins down (experiment E14): **message loss can
//! break the termination theorem.** Dropping one of two messages that
//! would have collided at a node acts exactly like the Section-4
//! adversary's delay — the surviving wave keeps circulating. On cyclic
//! topologies a lossy flood can therefore outlive the `2D + 1` bound by
//! orders of magnitude or never die at all; on **trees** termination
//! survives any loss pattern (a wave can never turn back without a
//! cycle). Coverage (informed nodes) degrades with the loss rate either
//! way. Theorem 3.1 genuinely needs the paper's "no messages are lost"
//! assumption.

use crate::protocol::Protocol;
use af_graph::{ArcId, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A crash schedule entry: `node` stops participating at the *start* of
/// `round` (it neither receives nor sends from then on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// The first round the node is dead in.
    pub round: u32,
}

/// Synchronous engine with seeded message loss and crash faults.
///
/// # Examples
///
/// ```
/// use af_engine::faults::FaultySyncEngine;
/// use af_engine::Protocol;
/// use af_graph::{generators, Graph, NodeId};
///
/// #[derive(Debug)]
/// struct Af;
/// impl Protocol for Af {
///     type State = ();
///     fn initiate(&self, v: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).to_vec()
///     }
///     fn on_receive(&self, v: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).iter().copied().filter(|w| !from.contains(w)).collect()
///     }
/// }
///
/// // Trees keep the termination guarantee under any loss rate...
/// let g = generators::binary_tree(4);
/// let mut e = FaultySyncEngine::new(&g, Af, [NodeId::new(0)], 0.2, 7);
/// assert!(e.run(1000).is_terminated());
/// // ...while cyclic graphs may not (see the module docs).
/// ```
#[derive(Debug)]
pub struct FaultySyncEngine<'g, P: Protocol> {
    graph: &'g Graph,
    protocol: P,
    states: Vec<P::State>,
    pending: Vec<ArcId>,
    round: u32,
    delivered_messages: u64,
    dropped_messages: u64,
    loss_rate: f64,
    rng: ChaCha8Rng,
    crashed_at: Vec<Option<u32>>,
    informed: Vec<bool>,
    inbox: Vec<Vec<NodeId>>,
}

impl<'g, P: Protocol> FaultySyncEngine<'g, P> {
    /// Creates a faulty engine with the given per-message loss probability
    /// and RNG seed. Crashes are added with
    /// [`FaultySyncEngine::schedule_crash`].
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `0.0..=1.0`, an initiator is out
    /// of range, or the protocol targets a non-neighbour.
    pub fn new<I>(graph: &'g Graph, protocol: P, initiators: I, loss_rate: f64, seed: u64) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be in [0, 1], got {loss_rate}"
        );
        let n = graph.node_count();
        let mut states = vec![P::State::default(); n];
        let mut inits: Vec<NodeId> = initiators.into_iter().collect();
        inits.sort_unstable();
        inits.dedup();
        let mut pending = Vec::new();
        let mut informed = vec![false; n];
        for &v in &inits {
            assert!(v.index() < n, "initiator {v} out of range");
            informed[v.index()] = true;
            for t in protocol.initiate(v, &mut states[v.index()], graph) {
                let arc = graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                pending.push(arc);
            }
        }
        pending.sort_unstable();
        pending.dedup();
        FaultySyncEngine {
            graph,
            protocol,
            states,
            pending,
            round: 0,
            delivered_messages: 0,
            dropped_messages: 0,
            loss_rate,
            rng: ChaCha8Rng::seed_from_u64(seed),
            crashed_at: vec![None; n],
            informed,
            inbox: vec![Vec::new(); n],
        }
    }

    /// Schedules a crash: `node` is dead from the start of `crash.round`.
    /// Scheduling a node twice keeps the earlier round.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn schedule_crash(&mut self, crash: Crash) {
        let slot = &mut self.crashed_at[crash.node.index()];
        *slot = Some(slot.map_or(crash.round, |r| r.min(crash.round)));
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Messages actually delivered (loss and crashes excluded).
    #[must_use]
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages
    }

    /// Messages dropped by loss or crashed receivers.
    #[must_use]
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }

    /// Returns `true` if no message is in flight.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of nodes that have received the message at least once
    /// (initiators count as informed).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.iter().filter(|&&b| b).count()
    }

    fn is_dead(&self, v: NodeId, round: u32) -> bool {
        self.crashed_at[v.index()].is_some_and(|r| round >= r)
    }

    /// Executes one round; returns the round number, or `None` if already
    /// terminated.
    pub fn step(&mut self) -> Option<u32> {
        if self.pending.is_empty() {
            return None;
        }
        self.round += 1;
        let round = self.round;
        let delivered = core::mem::take(&mut self.pending);

        let mut receivers: Vec<NodeId> = Vec::new();
        for arc in delivered {
            let (tail, head) = self.graph.arc_endpoints(arc);
            // A node dead in the sending round never actually sends; a
            // message to a dead node is lost; and the channel itself may
            // drop it.
            if self.is_dead(tail, round) {
                self.dropped_messages += 1;
                continue;
            }
            if self.is_dead(head, round) || self.rng.gen_bool(self.loss_rate) {
                self.dropped_messages += 1;
                continue;
            }
            self.delivered_messages += 1;
            let inbox = &mut self.inbox[head.index()];
            if inbox.is_empty() {
                receivers.push(head);
            }
            inbox.push(tail);
        }
        receivers.sort_unstable();

        let mut sends: Vec<ArcId> = Vec::new();
        for &v in &receivers {
            let mut from = core::mem::take(&mut self.inbox[v.index()]);
            from.sort_unstable();
            self.informed[v.index()] = true;
            let targets =
                self.protocol
                    .on_receive(v, &from, &mut self.states[v.index()], self.graph);
            for t in targets {
                let arc = self
                    .graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                sends.push(arc);
            }
            from.clear();
            self.inbox[v.index()] = from;
        }
        sends.sort_unstable();
        sends.dedup();
        self.pending = sends;
        Some(round)
    }

    /// Runs until termination or `max_rounds`.
    pub fn run(&mut self, max_rounds: u32) -> crate::sync::Outcome {
        use crate::sync::Outcome;
        while self.round < max_rounds {
            if self.step().is_none() {
                return Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        }
        if self.pending.is_empty() {
            Outcome::Terminated {
                last_active_round: self.round,
            }
        } else {
            Outcome::CapReached {
                rounds_executed: self.round,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::test_protocols::TestAmnesiacFlooding;
    use af_graph::generators;

    #[test]
    fn zero_loss_matches_fault_free_run() {
        let g = generators::petersen();
        let mut faulty = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.0, 1);
        let out = faulty.run(1000);
        let mut clean = crate::sync::SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)]);
        let clean_out = clean.run(1000);
        assert_eq!(out, clean_out);
        assert_eq!(faulty.delivered_messages(), clean.total_messages());
        assert_eq!(faulty.dropped_messages(), 0);
        // Non-bipartite: even the source receives the message back.
        assert_eq!(faulty.informed_count(), 10);
    }

    #[test]
    fn total_loss_kills_the_flood_in_one_round() {
        let g = generators::complete(6);
        let mut e = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 1.0, 1);
        let out = e.run(100);
        assert!(out.is_terminated());
        assert_eq!(e.delivered_messages(), 0);
        assert_eq!(e.dropped_messages(), 5);
        assert_eq!(e.informed_count(), 1, "only the source itself");
    }

    #[test]
    fn trees_terminate_under_any_loss_pattern() {
        // Without a cycle no wave can turn back, so loss cannot sustain
        // the flood: termination survives every loss rate and seed.
        for seed in 0..10 {
            for g in [
                generators::path(20),
                generators::binary_tree(4),
                generators::star(15),
                generators::caterpillar(6, 2),
            ] {
                for rate in [0.1, 0.3, 0.6] {
                    let mut e = FaultySyncEngine::new(
                        &g,
                        TestAmnesiacFlooding,
                        [NodeId::new(0)],
                        rate,
                        seed,
                    );
                    let out = e.run(10_000);
                    assert!(out.is_terminated(), "{g} seed {seed} rate {rate}");
                }
            }
        }
    }

    #[test]
    fn loss_can_break_the_termination_bound_on_cyclic_graphs() {
        // The headline finding: a dropped message splits colliding waves
        // like the Section-4 adversary's delay, and the flood outlives the
        // fault-free 2D + 1 bound. Search a few seeds for a witness — the
        // effect is common, not a corner case.
        let g = generators::grid(8, 8); // D = 14, bound = 29 (non-bip? grid IS bipartite: bound = D = 14)
        let bound = 2 * 14 + 1;
        let mut witnessed = false;
        for seed in 0..20 {
            let mut e =
                FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.1, seed);
            match e.run(5_000) {
                crate::sync::Outcome::Terminated { last_active_round } => {
                    if last_active_round > bound {
                        witnessed = true;
                        break;
                    }
                }
                crate::sync::Outcome::CapReached { .. } => {
                    witnessed = true;
                    break;
                }
            }
        }
        assert!(
            witnessed,
            "10% loss should sustain a wave past 2D+1 for some seed"
        );
    }

    #[test]
    fn lossy_runs_are_seed_deterministic() {
        let g = generators::grid(5, 5);
        let run = |seed| {
            let mut e =
                FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.25, seed);
            let out = e.run(10_000);
            (out, e.delivered_messages(), e.informed_count())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn crashed_node_blocks_the_only_route() {
        // Path 0-1-2-3: crashing node 1 at round 1 stops everything past it.
        let g = generators::path(4);
        let mut e = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.0, 1);
        e.schedule_crash(Crash {
            node: NodeId::new(1),
            round: 1,
        });
        let out = e.run(100);
        assert!(out.is_terminated());
        assert_eq!(
            e.informed_count(),
            1,
            "only the source; the dead node blocks all receipt"
        );
    }

    #[test]
    fn crash_after_forwarding_still_informs_downstream() {
        let g = generators::path(4);
        let mut e = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.0, 1);
        // Node 1 receives in round 1 and sends in round 2; crashing it at
        // round 3 changes nothing for 2 and 3.
        e.schedule_crash(Crash {
            node: NodeId::new(1),
            round: 3,
        });
        e.run(100);
        assert_eq!(e.informed_count(), 4, "source plus nodes 1, 2, 3");
    }

    #[test]
    fn redundant_topology_survives_a_crash() {
        // On a cycle, one crash leaves the other direction intact.
        let g = generators::cycle(8);
        let mut e = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.0, 1);
        e.schedule_crash(Crash {
            node: NodeId::new(1),
            round: 1,
        });
        e.run(100);
        // Everyone except the dead node hears the message the long way
        // (the source is informed by construction).
        assert_eq!(e.informed_count(), 7);
    }

    #[test]
    fn earlier_crash_round_wins() {
        let g = generators::path(3);
        let mut e = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 0.0, 1);
        e.schedule_crash(Crash {
            node: NodeId::new(1),
            round: 5,
        });
        e.schedule_crash(Crash {
            node: NodeId::new(1),
            round: 1,
        });
        e.run(100);
        assert_eq!(e.informed_count(), 1);
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1]")]
    fn bad_loss_rate_panics() {
        let g = generators::path(2);
        let _ = FaultySyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)], 1.5, 0);
    }
}
