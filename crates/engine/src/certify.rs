//! Machine-checkable non-termination certificates for asynchronous runs.
//!
//! Section 4 of the paper argues (by example) that a scheduling adversary
//! can keep an amnesiac flood alive forever. An empirical reproduction
//! cannot run forever, but it can do the next best thing: under a
//! **deterministic** adversary the whole run is a function of the current
//! configuration (in-flight messages with ages + node states), and the
//! configuration space of a coalescing engine is finite. Therefore the run
//! either terminates or eventually *revisits* a configuration — a lasso —
//! and a lasso is a finite, checkable proof of an infinite execution.
//!
//! [`certify`] drives an [`AsyncEngine`] while hashing configurations and
//! reports which of the three cases occurred.

use crate::asynchronous::{AsyncEngine, AsyncError, Configuration, DeterministicAdversary};
use crate::protocol::Protocol;
use af_graph::{Graph, NodeId};
use std::collections::HashMap;

/// The verdict of [`certify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The flood died: no message in flight after `last_active_tick`.
    Terminated {
        /// Last tick at which a message was delivered.
        last_active_tick: u64,
    },
    /// The run revisited a configuration: it provably never terminates.
    NonTerminating(Lasso),
    /// The tick cap was reached without termination or a repeat. (With a
    /// deterministic adversary this can only happen if the cap is smaller
    /// than the configuration space actually visited, e.g. when held
    /// message ages grow without bound.)
    Unresolved {
        /// Ticks executed before giving up.
        ticks_executed: u64,
    },
}

impl Certificate {
    /// Returns `true` for [`Certificate::NonTerminating`].
    #[must_use]
    pub fn is_non_terminating(&self) -> bool {
        matches!(self, Certificate::NonTerminating(_))
    }

    /// Returns the lasso if the run was certified non-terminating.
    #[must_use]
    pub fn lasso(&self) -> Option<&Lasso> {
        match self {
            Certificate::NonTerminating(l) => Some(l),
            _ => None,
        }
    }
}

/// A lasso: the run reaches `first_visit_tick`'s configuration again at
/// `repeat_tick`, so the segment between them repeats forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lasso {
    first_visit_tick: u64,
    repeat_tick: u64,
}

impl Lasso {
    /// Tick at which the recurring configuration was first seen.
    #[must_use]
    pub fn first_visit_tick(&self) -> u64 {
        self.first_visit_tick
    }

    /// Tick at which it was seen again.
    #[must_use]
    pub fn repeat_tick(&self) -> u64 {
        self.repeat_tick
    }

    /// Length of the repeating segment.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.repeat_tick - self.first_visit_tick
    }
}

/// Runs `protocol` from `initiators` under a deterministic `adversary`,
/// looking for termination or a configuration repeat, up to `max_ticks`.
///
/// The [`DeterministicAdversary`] bound is what makes a repeat a genuine
/// non-termination proof; see the module docs.
///
/// # Errors
///
/// Propagates [`AsyncError`] if the adversary selects messages that are not
/// in flight.
///
/// # Panics
///
/// Panics if an initiator is out of range or the protocol targets a
/// non-neighbour.
///
/// # Examples
///
/// ```
/// use af_engine::adversary::PerHeadThrottle;
/// use af_engine::certify::{certify, Certificate};
/// use af_engine::Protocol;
/// use af_graph::{generators, Graph, NodeId};
///
/// #[derive(Debug)]
/// struct Af;
/// impl Protocol for Af {
///     type State = ();
///     fn initiate(&self, v: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).to_vec()
///     }
///     fn on_receive(&self, v: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).iter().copied().filter(|w| !from.contains(w)).collect()
///     }
/// }
///
/// // Figure 5: the triangle never terminates under the throttling adversary.
/// let g = generators::cycle(3);
/// let cert = certify(&g, Af, PerHeadThrottle, [NodeId::new(1)], 10_000)?;
/// assert!(cert.is_non_terminating());
/// # Ok::<(), af_engine::AsyncError>(())
/// ```
pub fn certify<P, A, I>(
    graph: &Graph,
    protocol: P,
    adversary: A,
    initiators: I,
    max_ticks: u64,
) -> Result<Certificate, AsyncError>
where
    P: Protocol,
    A: DeterministicAdversary,
    I: IntoIterator<Item = NodeId>,
{
    let mut engine = AsyncEngine::new(graph, protocol, adversary, initiators);
    let mut seen: HashMap<Configuration<P::State>, u64> = HashMap::new();
    seen.insert(engine.configuration(), 0);

    loop {
        match engine.step()? {
            None => {
                return Ok(Certificate::Terminated {
                    last_active_tick: engine.tick(),
                });
            }
            Some(tick) => {
                let config = engine.configuration();
                if let Some(&first) = seen.get(&config) {
                    return Ok(Certificate::NonTerminating(Lasso {
                        first_visit_tick: first,
                        repeat_tick: tick,
                    }));
                }
                if tick >= max_ticks {
                    return Ok(Certificate::Unresolved {
                        ticks_executed: tick,
                    });
                }
                seen.insert(config, tick);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{BoundedDelay, DeliverAll, OneAtATime, PerHeadThrottle};
    use crate::protocol::test_protocols::{TestAmnesiacFlooding, TestClassicFlooding};
    use af_graph::generators;

    #[test]
    fn triangle_under_throttle_is_certified_non_terminating() {
        let g = generators::cycle(3);
        let cert = certify(
            &g,
            TestAmnesiacFlooding,
            PerHeadThrottle,
            [NodeId::new(1)],
            10_000,
        )
        .unwrap();
        let lasso = cert.lasso().expect("figure 5 says non-terminating");
        assert!(lasso.period() > 0);
        assert!(lasso.repeat_tick() <= 20, "the triangle lasso is tiny");
    }

    #[test]
    fn odd_cycles_under_throttle_never_terminate() {
        for n in [3usize, 5, 7] {
            let g = generators::cycle(n);
            let cert = certify(
                &g,
                TestAmnesiacFlooding,
                PerHeadThrottle,
                [NodeId::new(0)],
                100_000,
            )
            .unwrap();
            assert!(cert.is_non_terminating(), "C{n}");
        }
    }

    #[test]
    fn triangle_under_deliver_all_terminates() {
        let g = generators::cycle(3);
        let cert = certify(&g, TestAmnesiacFlooding, DeliverAll, [NodeId::new(0)], 1000).unwrap();
        assert_eq!(
            cert,
            Certificate::Terminated {
                last_active_tick: 3
            }
        );
    }

    #[test]
    fn trees_terminate_under_every_builtin_deterministic_adversary() {
        let g = generators::binary_tree(3);
        let c1 = certify(
            &g,
            TestAmnesiacFlooding,
            DeliverAll,
            [NodeId::new(0)],
            100_000,
        )
        .unwrap();
        let c2 = certify(
            &g,
            TestAmnesiacFlooding,
            OneAtATime,
            [NodeId::new(0)],
            100_000,
        )
        .unwrap();
        let c3 = certify(
            &g,
            TestAmnesiacFlooding,
            PerHeadThrottle,
            [NodeId::new(0)],
            100_000,
        )
        .unwrap();
        let c4 = certify(
            &g,
            TestAmnesiacFlooding,
            BoundedDelay::new(3),
            [NodeId::new(0)],
            100_000,
        )
        .unwrap();
        for c in [c1, c2, c3, c4] {
            assert!(matches!(c, Certificate::Terminated { .. }), "{c:?}");
        }
    }

    #[test]
    fn classic_flooding_terminates_even_under_throttle() {
        // The flag baseline is immune to the adversary: every node forwards
        // at most once, so the message supply is finite.
        for g in [
            generators::cycle(3),
            generators::cycle(5),
            generators::complete(4),
        ] {
            let cert = certify(
                &g,
                TestClassicFlooding,
                PerHeadThrottle,
                [NodeId::new(0)],
                100_000,
            )
            .unwrap();
            assert!(matches!(cert, Certificate::Terminated { .. }), "{g}");
        }
    }

    #[test]
    fn lasso_accessors() {
        let l = Lasso {
            first_visit_tick: 4,
            repeat_tick: 9,
        };
        assert_eq!(l.first_visit_tick(), 4);
        assert_eq!(l.repeat_tick(), 9);
        assert_eq!(l.period(), 5);
    }
}
