//! The [`Protocol`] trait: how a node reacts to receiving the flooded
//! message.
//!
//! The engines in this crate simulate *single-message* broadcast protocols
//! in the paper's model: every message is an identical copy of `M`, so the
//! only information a protocol can react to is *which neighbours the copy
//! arrived from* plus whatever per-node state the protocol keeps. Amnesiac
//! flooding keeps none (`State = ()`); the classic flag-based baseline keeps
//! one bit.

use af_graph::{Graph, NodeId};
use core::fmt::Debug;
use core::hash::Hash;

/// Node behaviour for a single-message broadcast protocol.
///
/// Implementations decide, for each node and round, the set of neighbours to
/// forward the message to. The engine owns the per-node state (`State`) and
/// hands it to the callbacks; `State` must be `Eq + Hash` so that
/// asynchronous runs can be certified by configuration hashing (see
/// [`crate::certify()`]).
///
/// # Examples
///
/// Amnesiac flooding in five lines (the real implementation lives in
/// `af-core`):
///
/// ```
/// use af_engine::Protocol;
/// use af_graph::{Graph, NodeId};
///
/// #[derive(Debug, Clone, Copy)]
/// struct Af;
///
/// impl Protocol for Af {
///     type State = ();
///     fn initiate(&self, node: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(node).to_vec()
///     }
///     fn on_receive(&self, node: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(node).iter().copied().filter(|w| !from.contains(w)).collect()
///     }
/// }
/// ```
pub trait Protocol {
    /// Per-node persistent state. Use `()` for amnesiac (memoryless)
    /// protocols.
    type State: Clone + Default + Eq + Hash + Debug;

    /// Called once, before round 1, on each initiator node. The returned
    /// neighbours receive the message in round 1.
    ///
    /// Every returned node must be a neighbour of `node`.
    fn initiate(&self, node: NodeId, state: &mut Self::State, graph: &Graph) -> Vec<NodeId>;

    /// Called when `node` receives the message from the (sorted, non-empty)
    /// set `from` of neighbours in some round; returns the neighbours to
    /// forward to in the next round.
    ///
    /// Every returned node must be a neighbour of `node`.
    fn on_receive(
        &self,
        node: NodeId,
        from: &[NodeId],
        state: &mut Self::State,
        graph: &Graph,
    ) -> Vec<NodeId>;

    /// Human-readable protocol name, used in traces and experiment tables.
    fn name(&self) -> &'static str {
        "unnamed-protocol"
    }
}

/// Blanket impl so engines can borrow protocols.
impl<P: Protocol> Protocol for &P {
    type State = P::State;

    fn initiate(&self, node: NodeId, state: &mut Self::State, graph: &Graph) -> Vec<NodeId> {
        (**self).initiate(node, state, graph)
    }

    fn on_receive(
        &self,
        node: NodeId,
        from: &[NodeId],
        state: &mut Self::State,
        graph: &Graph,
    ) -> Vec<NodeId> {
        (**self).on_receive(node, from, state, graph)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_protocols {
    use super::*;

    /// Memoryless flooding (the paper's Definition 1.1), duplicated here so
    /// the engine crate can test itself without depending on `af-core`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct TestAmnesiacFlooding;

    impl Protocol for TestAmnesiacFlooding {
        type State = ();

        fn initiate(&self, node: NodeId, (): &mut (), graph: &Graph) -> Vec<NodeId> {
            graph.neighbors(node).to_vec()
        }

        fn on_receive(
            &self,
            node: NodeId,
            from: &[NodeId],
            (): &mut (),
            graph: &Graph,
        ) -> Vec<NodeId> {
            graph
                .neighbors(node)
                .iter()
                .copied()
                .filter(|w| from.binary_search(w).is_err())
                .collect()
        }

        fn name(&self) -> &'static str {
            "test-amnesiac-flooding"
        }
    }

    /// Classic flag flooding: forward once to everyone except the senders,
    /// then fall silent forever.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct TestClassicFlooding;

    impl Protocol for TestClassicFlooding {
        type State = bool; // "have I already forwarded?"

        fn initiate(&self, node: NodeId, state: &mut bool, graph: &Graph) -> Vec<NodeId> {
            *state = true;
            graph.neighbors(node).to_vec()
        }

        fn on_receive(
            &self,
            node: NodeId,
            from: &[NodeId],
            state: &mut bool,
            graph: &Graph,
        ) -> Vec<NodeId> {
            if *state {
                return Vec::new();
            }
            *state = true;
            graph
                .neighbors(node)
                .iter()
                .copied()
                .filter(|w| from.binary_search(w).is_err())
                .collect()
        }

        fn name(&self) -> &'static str {
            "test-classic-flooding"
        }
    }
}
