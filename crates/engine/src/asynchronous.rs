//! The asynchronous engine: message delivery is controlled by a scheduling
//! [`Adversary`](crate::Adversary), as in Section 4 of the paper.
//!
//! Time proceeds in *ticks*. At each tick the adversary picks a non-empty
//! subset of the in-flight messages to deliver; the rest stay in flight and
//! age by one. Receiving nodes react exactly as in the synchronous model.
//!
//! Two modelling choices, both documented in DESIGN.md:
//!
//! * **Messages coalesce per arc.** The flooded message is a single
//!   identical `M`, so two copies in flight on the same directed edge are
//!   indistinguishable; the engine keeps one (retaining the older age).
//!   This keeps the configuration space finite, which is what makes
//!   non-termination *certifiable* (see [`crate::certify`]).
//! * **Pure-delay ticks are legal, but freezing is self-defeating.** The
//!   adversary may deliver nothing at a tick (that *is* a delay). Freezing
//!   messages forever would make "non-termination" trivial, which is why
//!   the certifier ([`crate::certify`]) only accepts *configuration
//!   lassos* as evidence: held messages age every tick, so a frozen run
//!   never revisits a configuration, while a genuine lasso necessarily
//!   delivers messages infinitely often.

use crate::protocol::Protocol;
use af_graph::{ArcId, Graph, NodeId};
use core::fmt;

/// A message in flight: the directed edge it travels on and how many ticks
/// it has already been held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InFlightMessage {
    /// The directed edge the message travels on.
    pub arc: ArcId,
    /// Ticks the message has spent in flight beyond the first opportunity
    /// to deliver it (0 = fresh).
    pub age: u32,
}

/// A scheduling adversary: decides which in-flight messages are delivered
/// at each tick.
pub trait Adversary {
    /// Returns the arcs to deliver this tick. Must be a subset of
    /// `in_flight` (by arc); an empty selection is a pure-delay tick.
    fn select(&mut self, tick: u64, in_flight: &[InFlightMessage], graph: &Graph) -> Vec<ArcId>;

    /// Human-readable adversary name for traces and tables.
    fn name(&self) -> &'static str {
        "unnamed-adversary"
    }
}

/// Marker trait: the adversary's [`Adversary::select`] is a pure function
/// of `(in_flight, graph)` — no internal state, no dependence on `tick`.
///
/// Configuration-repeat certification ([`crate::certify()`]) is only sound
/// for deterministic adversaries: a repeated configuration then implies the
/// *identical* infinite continuation.
pub trait DeterministicAdversary: Adversary {}

impl<A: Adversary> Adversary for &mut A {
    fn select(&mut self, tick: u64, in_flight: &[InFlightMessage], graph: &Graph) -> Vec<ArcId> {
        (**self).select(tick, in_flight, graph)
    }

    fn name(&self) -> &'static str {
        "borrowed-adversary"
    }
}

/// Error returned when an adversary violates the scheduling contract.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsyncError {
    /// The adversary selected an arc that is not in flight.
    NotInFlight {
        /// The offending arc.
        arc: ArcId,
        /// Tick at which the violation occurred.
        tick: u64,
    },
}

impl fmt::Display for AsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncError::NotInFlight { arc, tick } => {
                write!(
                    f,
                    "adversary selected arc {arc} at tick {tick} which is not in flight"
                )
            }
        }
    }
}

impl std::error::Error for AsyncError {}

/// Result of driving an asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AsyncOutcome {
    /// No message in flight: the flood died out.
    Terminated {
        /// Last tick at which a message was delivered.
        last_active_tick: u64,
    },
    /// The tick cap was reached with messages still in flight.
    CapReached {
        /// Ticks executed.
        ticks_executed: u64,
    },
}

impl AsyncOutcome {
    /// Returns `true` if the flood terminated within the cap.
    #[must_use]
    pub fn is_terminated(self) -> bool {
        matches!(self, AsyncOutcome::Terminated { .. })
    }
}

/// A snapshot of everything that determines the future of a run under a
/// deterministic adversary: the in-flight messages (with ages) and all node
/// states.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Configuration<S> {
    messages: Vec<InFlightMessage>,
    states: Vec<S>,
}

impl<S> Configuration<S> {
    /// The in-flight messages, sorted by arc.
    #[must_use]
    pub fn messages(&self) -> &[InFlightMessage] {
        &self.messages
    }

    /// Per-node protocol states.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }
}

/// Asynchronous simulator: a [`Protocol`] driven by an [`Adversary`].
///
/// # Examples
///
/// Delivering everything every tick reduces to the synchronous engine:
///
/// ```
/// use af_engine::{adversary::DeliverAll, AsyncEngine, AsyncOutcome, Protocol};
/// use af_graph::{generators, Graph, NodeId};
///
/// #[derive(Debug)]
/// struct Af;
/// impl Protocol for Af {
///     type State = ();
///     fn initiate(&self, v: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).to_vec()
///     }
///     fn on_receive(&self, v: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).iter().copied().filter(|w| !from.contains(w)).collect()
///     }
/// }
///
/// let g = generators::cycle(6);
/// let mut e = AsyncEngine::new(&g, Af, DeliverAll, [NodeId::new(0)]);
/// let outcome = e.run(100)?;
/// assert_eq!(outcome, AsyncOutcome::Terminated { last_active_tick: 3 });
/// # Ok::<(), af_engine::AsyncError>(())
/// ```
#[derive(Debug)]
pub struct AsyncEngine<'g, P: Protocol, A: Adversary> {
    graph: &'g Graph,
    protocol: P,
    adversary: A,
    states: Vec<P::State>,
    in_flight: Vec<InFlightMessage>,
    tick: u64,
    last_active_tick: u64,
    total_messages: u64,
    inbox: Vec<Vec<NodeId>>,
}

impl<'g, P: Protocol, A: Adversary> AsyncEngine<'g, P, A> {
    /// Creates an engine and performs initiation (the initiators' sends are
    /// in flight at tick 1).
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range or the protocol targets a
    /// non-neighbour.
    pub fn new<I>(graph: &'g Graph, protocol: P, adversary: A, initiators: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut states = vec![P::State::default(); n];
        let mut inits: Vec<NodeId> = initiators.into_iter().collect();
        inits.sort_unstable();
        inits.dedup();
        let mut msgs: Vec<InFlightMessage> = Vec::new();
        for v in inits {
            assert!(v.index() < n, "initiator {v} out of range");
            for t in protocol.initiate(v, &mut states[v.index()], graph) {
                let arc = graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                msgs.push(InFlightMessage { arc, age: 0 });
            }
        }
        msgs.sort_unstable();
        msgs.dedup_by_key(|m| m.arc);
        AsyncEngine {
            graph,
            protocol,
            adversary,
            states,
            in_flight: msgs,
            tick: 0,
            last_active_tick: 0,
            total_messages: 0,
            inbox: vec![Vec::new(); n],
        }
    }

    /// The messages currently in flight, sorted by arc.
    #[must_use]
    pub fn in_flight(&self) -> &[InFlightMessage] {
        &self.in_flight
    }

    /// Returns `true` if no message is in flight.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Ticks executed so far.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// The protocol state of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[v.index()]
    }

    /// Snapshots the current configuration (messages + states). Under a
    /// [`DeterministicAdversary`], equal configurations have equal futures.
    #[must_use]
    pub fn configuration(&self) -> Configuration<P::State> {
        Configuration {
            messages: self.in_flight.clone(),
            states: self.states.clone(),
        }
    }

    /// Executes one tick. Returns `Ok(None)` if already terminated.
    ///
    /// # Errors
    ///
    /// Returns an [`AsyncError`] if the adversary breaks its contract.
    ///
    /// # Panics
    ///
    /// Panics if the protocol targets a non-neighbour.
    pub fn step(&mut self) -> Result<Option<u64>, AsyncError> {
        if self.in_flight.is_empty() {
            return Ok(None);
        }
        let tick = self.tick + 1;
        let mut selected = self.adversary.select(tick, &self.in_flight, self.graph);
        selected.sort_unstable();
        selected.dedup();
        for &arc in &selected {
            if self
                .in_flight
                .binary_search_by_key(&arc, |m| m.arc)
                .is_err()
            {
                return Err(AsyncError::NotInFlight { arc, tick });
            }
        }
        self.tick = tick;
        if !selected.is_empty() {
            self.last_active_tick = tick;
        }
        self.total_messages += selected.len() as u64;

        // Split in-flight into delivered and held (ages bump on held).
        let mut held: Vec<InFlightMessage> = Vec::with_capacity(self.in_flight.len());
        let mut receivers: Vec<NodeId> = Vec::new();
        for m in core::mem::take(&mut self.in_flight) {
            if selected.binary_search(&m.arc).is_ok() {
                let (tail, head) = self.graph.arc_endpoints(m.arc);
                let inbox = &mut self.inbox[head.index()];
                if inbox.is_empty() {
                    receivers.push(head);
                }
                inbox.push(tail);
            } else {
                held.push(InFlightMessage {
                    arc: m.arc,
                    age: m.age + 1,
                });
            }
        }
        receivers.sort_unstable();

        let mut new_msgs: Vec<InFlightMessage> = Vec::new();
        for &v in &receivers {
            let mut from = core::mem::take(&mut self.inbox[v.index()]);
            from.sort_unstable();
            let targets =
                self.protocol
                    .on_receive(v, &from, &mut self.states[v.index()], self.graph);
            for t in targets {
                let arc = self
                    .graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                new_msgs.push(InFlightMessage { arc, age: 0 });
            }
            from.clear();
            self.inbox[v.index()] = from;
        }

        // Merge held + new, coalescing per arc and keeping the older copy.
        held.extend(new_msgs);
        held.sort_unstable_by_key(|m| (m.arc, core::cmp::Reverse(m.age)));
        held.dedup_by_key(|m| m.arc);
        self.in_flight = held;
        Ok(Some(tick))
    }

    /// Runs until termination or `max_ticks`.
    ///
    /// # Errors
    ///
    /// Returns an [`AsyncError`] if the adversary breaks its contract.
    pub fn run(&mut self, max_ticks: u64) -> Result<AsyncOutcome, AsyncError> {
        while self.tick < max_ticks {
            if self.step()?.is_none() {
                return Ok(AsyncOutcome::Terminated {
                    last_active_tick: self.last_active_tick,
                });
            }
        }
        if self.in_flight.is_empty() {
            Ok(AsyncOutcome::Terminated {
                last_active_tick: self.last_active_tick,
            })
        } else {
            Ok(AsyncOutcome::CapReached {
                ticks_executed: self.tick,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{DeliverAll, OneAtATime, PerHeadThrottle};
    use crate::protocol::test_protocols::TestAmnesiacFlooding;
    use crate::sync::SyncEngine;
    use af_graph::generators;

    #[test]
    fn deliver_all_matches_sync_engine() {
        for (g, s) in [
            (generators::path(6), 2usize),
            (generators::cycle(5), 0),
            (generators::petersen(), 3),
            (generators::complete(5), 1),
        ] {
            let mut sync = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(s)]);
            let sync_out = sync.run(1000);
            let mut asy = AsyncEngine::new(&g, TestAmnesiacFlooding, DeliverAll, [NodeId::new(s)]);
            let asy_out = asy.run(1000).unwrap();
            assert_eq!(
                sync_out.termination_round().map(u64::from),
                match asy_out {
                    AsyncOutcome::Terminated { last_active_tick } => Some(last_active_tick),
                    AsyncOutcome::CapReached { .. } => None,
                }
            );
            assert_eq!(sync.total_messages(), asy.total_messages());
        }
    }

    #[test]
    fn per_head_throttle_keeps_triangle_alive() {
        // The paper's Figure 5: the adversary prevents termination on C3.
        let g = generators::cycle(3);
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, PerHeadThrottle, [NodeId::new(1)]);
        let out = e.run(10_000).unwrap();
        assert_eq!(
            out,
            AsyncOutcome::CapReached {
                ticks_executed: 10_000
            }
        );
    }

    #[test]
    fn one_at_a_time_on_a_path_terminates() {
        // Trees cannot sustain the flood: messages only move away from the
        // source region, under any schedule.
        let g = generators::path(6);
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, OneAtATime, [NodeId::new(0)]);
        let out = e.run(10_000).unwrap();
        assert!(out.is_terminated());
    }

    #[test]
    fn freezing_adversary_stalls_but_ages_grow() {
        #[derive(Debug)]
        struct Freezer;
        impl Adversary for Freezer {
            fn select(&mut self, _: u64, _: &[InFlightMessage], _: &Graph) -> Vec<ArcId> {
                Vec::new()
            }
        }
        let g = generators::path(3);
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, Freezer, [NodeId::new(0)]);
        let out = e.run(10).unwrap();
        assert_eq!(out, AsyncOutcome::CapReached { ticks_executed: 10 });
        assert_eq!(e.total_messages(), 0);
        assert!(
            e.in_flight().iter().all(|m| m.age == 10),
            "frozen messages keep aging"
        );
    }

    #[test]
    fn selecting_a_phantom_arc_is_an_error() {
        #[derive(Debug)]
        struct Liar;
        impl Adversary for Liar {
            fn select(&mut self, _: u64, _: &[InFlightMessage], g: &Graph) -> Vec<ArcId> {
                vec![g.arcs().last().expect("graph has arcs")]
            }
        }
        let g = generators::path(4);
        // source 0: only arc 0->1 in flight; the last arc (2-3 reversed) is not.
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, Liar, [NodeId::new(0)]);
        assert!(matches!(e.step(), Err(AsyncError::NotInFlight { .. })));
    }

    #[test]
    fn terminated_engine_steps_to_none() {
        let g = generators::path(2);
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, DeliverAll, [NodeId::new(0)]);
        e.run(100).unwrap();
        assert!(e.is_terminated());
        assert_eq!(e.step(), Ok(None));
    }

    #[test]
    fn ages_grow_on_held_messages() {
        let g = generators::cycle(3);
        let mut e = AsyncEngine::new(&g, TestAmnesiacFlooding, PerHeadThrottle, [NodeId::new(1)]);
        let mut saw_aged = false;
        for _ in 0..50 {
            if e.step().unwrap().is_none() {
                break;
            }
            if e.in_flight().iter().any(|m| m.age > 0) {
                saw_aged = true;
            }
        }
        assert!(saw_aged, "throttle should hold at least one message");
    }

    #[test]
    fn configuration_snapshot_is_stable() {
        let g = generators::cycle(4);
        let e = AsyncEngine::new(&g, TestAmnesiacFlooding, DeliverAll, [NodeId::new(0)]);
        let c1 = e.configuration();
        let c2 = e.configuration();
        assert_eq!(c1, c2);
        assert_eq!(c1.messages().len(), 2);
        assert_eq!(c1.states().len(), 4);
    }
}
