//! Built-in scheduling adversaries for the asynchronous engine.
//!
//! * [`DeliverAll`] — no delays; reduces the asynchronous engine to the
//!   synchronous one (used to cross-check the two engines).
//! * [`PerHeadThrottle`] — the paper's Figure-5 scheduler, generalized:
//!   whenever several messages converge on the same node, all but one are
//!   held back. Convergence at a node is exactly what kills an amnesiac
//!   flood (the receiver's complement shrinks), so preventing it keeps the
//!   flood alive on any graph with a cycle.
//! * [`OneAtATime`] — fully sequential asynchrony (deliver the single
//!   oldest message).
//! * [`BoundedDelay`] — every message is delayed exactly `k` ticks; a
//!   "slow but fair" network.
//! * [`RandomDelay`] — each message is held with probability `p` (seeded,
//!   reproducible), subject to the non-starvation minimum.

use crate::asynchronous::{Adversary, DeterministicAdversary, InFlightMessage};
use af_graph::{ArcId, Graph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Delivers every in-flight message each tick: synchronous behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeliverAll;

impl Adversary for DeliverAll {
    fn select(&mut self, _tick: u64, in_flight: &[InFlightMessage], _graph: &Graph) -> Vec<ArcId> {
        in_flight.iter().map(|m| m.arc).collect()
    }

    fn name(&self) -> &'static str {
        "deliver-all"
    }
}

impl DeterministicAdversary for DeliverAll {}

/// Delivers at most one message per head node per tick (the lowest arc id
/// among those aimed at the node); holds the rest.
///
/// On the triangle with amnesiac flooding this reproduces the paper's
/// Figure 5 schedule: two messages converging on a node would annihilate
/// the flood, so the throttle holds one of them, and the wave circulates
/// forever. Termination-killing collisions are avoided on *any* cyclic
/// topology the same way.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerHeadThrottle;

impl Adversary for PerHeadThrottle {
    fn select(&mut self, _tick: u64, in_flight: &[InFlightMessage], graph: &Graph) -> Vec<ArcId> {
        let mut chosen_heads: Vec<af_graph::NodeId> = Vec::new();
        let mut out = Vec::new();
        // in_flight is sorted by arc id; first arc per head wins.
        for m in in_flight {
            let head = graph.arc_head(m.arc);
            if !chosen_heads.contains(&head) {
                chosen_heads.push(head);
                out.push(m.arc);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "per-head-throttle"
    }
}

impl DeterministicAdversary for PerHeadThrottle {}

/// Delivers exactly one message per tick: the oldest, breaking ties by arc
/// id. Models a fully sequential network.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneAtATime;

impl Adversary for OneAtATime {
    fn select(&mut self, _tick: u64, in_flight: &[InFlightMessage], _graph: &Graph) -> Vec<ArcId> {
        in_flight
            .iter()
            .max_by_key(|m| (m.age, core::cmp::Reverse(m.arc)))
            .map(|m| vec![m.arc])
            .unwrap_or_default()
    }

    fn name(&self) -> &'static str {
        "one-at-a-time"
    }
}

impl DeterministicAdversary for OneAtATime {}

/// Holds every message for exactly `k` ticks, then delivers it: a uniformly
/// slow network. `BoundedDelay::new(0)` behaves like [`DeliverAll`].
#[derive(Debug, Clone, Copy)]
pub struct BoundedDelay {
    k: u32,
}

impl BoundedDelay {
    /// Creates an adversary that delays every message exactly `k` ticks.
    #[must_use]
    pub fn new(k: u32) -> Self {
        BoundedDelay { k }
    }

    /// The configured delay.
    #[must_use]
    pub fn delay(&self) -> u32 {
        self.k
    }
}

impl Adversary for BoundedDelay {
    fn select(&mut self, _tick: u64, in_flight: &[InFlightMessage], _graph: &Graph) -> Vec<ArcId> {
        // Deliver exactly the ripe messages; ticks where nothing is ripe
        // are pure-delay ticks.
        in_flight
            .iter()
            .filter(|m| m.age >= self.k)
            .map(|m| m.arc)
            .collect()
    }

    fn name(&self) -> &'static str {
        "bounded-delay"
    }
}

impl DeterministicAdversary for BoundedDelay {}

/// Holds each message with probability `p` each tick (independently),
/// delivering the rest. If the coin flips would hold everything, the oldest
/// message is delivered instead (non-starvation).
///
/// Seeded and therefore reproducible, but **not** a
/// [`DeterministicAdversary`]: its decisions depend on internal RNG state,
/// so configuration-repeat certification does not apply.
#[derive(Debug, Clone)]
pub struct RandomDelay {
    p_hold: f64,
    rng: ChaCha8Rng,
}

impl RandomDelay {
    /// Creates a random-delay adversary holding each message with
    /// probability `p_hold`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `p_hold` is not within `0.0..=1.0`.
    #[must_use]
    pub fn new(p_hold: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_hold),
            "probability must be in [0, 1], got {p_hold}"
        );
        RandomDelay {
            p_hold,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomDelay {
    fn select(&mut self, _tick: u64, in_flight: &[InFlightMessage], _graph: &Graph) -> Vec<ArcId> {
        let mut out: Vec<ArcId> = in_flight
            .iter()
            .filter(|_| !self.rng.gen_bool(self.p_hold))
            .map(|m| m.arc)
            .collect();
        if out.is_empty() {
            if let Some(m) = in_flight.iter().max_by_key(|m| m.age) {
                out.push(m.arc);
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "random-delay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asynchronous::{AsyncEngine, AsyncOutcome};
    use crate::protocol::test_protocols::TestAmnesiacFlooding;
    use af_graph::{generators, NodeId};

    #[test]
    fn deliver_all_selects_everything() {
        let g = generators::cycle(4);
        let msgs = vec![
            InFlightMessage {
                arc: g.arcs().next().unwrap(),
                age: 0,
            },
            InFlightMessage {
                arc: g.arcs().nth(3).unwrap(),
                age: 2,
            },
        ];
        let sel = DeliverAll.select(1, &msgs, &g);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn per_head_throttle_holds_collisions() {
        // Path 0-1-2, messages 0->1 and 2->1 converge on node 1.
        let g = generators::path(3);
        let msgs = vec![
            InFlightMessage {
                arc: g.arc_between(0.into(), 1.into()).unwrap(),
                age: 0,
            },
            InFlightMessage {
                arc: g.arc_between(2.into(), 1.into()).unwrap(),
                age: 0,
            },
        ];
        let sel = PerHeadThrottle.select(1, &msgs, &g);
        assert_eq!(sel.len(), 1, "one of the two colliding messages is held");
    }

    #[test]
    fn per_head_throttle_passes_distinct_heads() {
        let g = generators::path(3);
        let msgs = vec![
            InFlightMessage {
                arc: g.arc_between(1.into(), 0.into()).unwrap(),
                age: 0,
            },
            InFlightMessage {
                arc: g.arc_between(1.into(), 2.into()).unwrap(),
                age: 0,
            },
        ];
        let sel = PerHeadThrottle.select(1, &msgs, &g);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn one_at_a_time_prefers_oldest() {
        let g = generators::path(3);
        let a01 = g.arc_between(0.into(), 1.into()).unwrap();
        let a21 = g.arc_between(2.into(), 1.into()).unwrap();
        let msgs = vec![
            InFlightMessage {
                arc: a01.min(a21),
                age: 0,
            },
            InFlightMessage {
                arc: a01.max(a21),
                age: 3,
            },
        ];
        let sel = OneAtATime.select(1, &msgs, &g);
        assert_eq!(sel, vec![a01.max(a21)]);
    }

    #[test]
    fn bounded_delay_zero_equals_deliver_all() {
        let g = generators::cycle(6);
        let mut a = AsyncEngine::new(
            &g,
            TestAmnesiacFlooding,
            BoundedDelay::new(0),
            [NodeId::new(0)],
        );
        let out = a.run(100).unwrap();
        assert_eq!(
            out,
            AsyncOutcome::Terminated {
                last_active_tick: 3
            }
        );
    }

    #[test]
    fn bounded_delay_slows_by_factor_k_plus_one() {
        let g = generators::path(4); // sync termination from 0: 3 rounds
        let mut a = AsyncEngine::new(
            &g,
            TestAmnesiacFlooding,
            BoundedDelay::new(2),
            [NodeId::new(0)],
        );
        let out = a.run(1000).unwrap();
        // Every hop now costs 3 ticks (held twice, delivered on the third).
        assert_eq!(
            out,
            AsyncOutcome::Terminated {
                last_active_tick: 9
            }
        );
    }

    #[test]
    fn random_delay_is_reproducible_and_terminates_on_trees() {
        let g = generators::binary_tree(3);
        let run = |seed: u64| {
            let mut e = AsyncEngine::new(
                &g,
                TestAmnesiacFlooding,
                RandomDelay::new(0.5, seed),
                [NodeId::new(0)],
            );
            (e.run(100_000).unwrap(), e.total_messages())
        };
        let (o1, m1) = run(7);
        let (o2, m2) = run(7);
        assert_eq!(o1, o2);
        assert_eq!(m1, m2);
        assert!(o1.is_terminated(), "floods on trees die under any schedule");
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn random_delay_rejects_bad_probability() {
        let _ = RandomDelay::new(1.5, 0);
    }
}
