//! # af-engine
//!
//! Message-passing simulators for the reproduction of *"On Termination of a
//! Flooding Process"* (Hussak & Trehan, PODC 2019).
//!
//! Two engines share one [`Protocol`] abstraction:
//!
//! * [`SyncEngine`] — the paper's synchronous round model: every in-flight
//!   message is delivered each round, receipts trigger the next round's
//!   sends, and termination is "no edge carries the message".
//! * [`AsyncEngine`] — the Section-4 asynchronous variant: an
//!   [`Adversary`] decides which in-flight messages are delivered at each
//!   tick. Deterministic adversaries compose with [`certify()`], which turns
//!   a revisited configuration into a machine-checkable **non-termination
//!   certificate** (a lasso).
//!
//! Built-in adversaries live in [`adversary`]; the paper's Figure-5
//! schedule is generalized by [`adversary::PerHeadThrottle`].
//!
//! # Examples
//!
//! ```
//! use af_engine::{Protocol, SyncEngine};
//! use af_graph::{generators, Graph, NodeId};
//!
//! /// Memoryless flooding (Definition 1.1 of the paper).
//! #[derive(Debug)]
//! struct Af;
//! impl Protocol for Af {
//!     type State = ();
//!     fn initiate(&self, v: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
//!         g.neighbors(v).to_vec()
//!     }
//!     fn on_receive(&self, v: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
//!         g.neighbors(v).iter().copied().filter(|w| !from.contains(w)).collect()
//!     }
//! }
//!
//! // Figure 2: the triangle floods for 2D + 1 = 3 rounds.
//! let g = generators::cycle(3);
//! let mut engine = SyncEngine::new(&g, Af, [NodeId::new(1)]);
//! assert_eq!(engine.run(100).termination_round(), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod certify;
pub mod faults;

mod asynchronous;
mod protocol;
mod sync;

pub use asynchronous::{
    Adversary, AsyncEngine, AsyncError, AsyncOutcome, Configuration, DeterministicAdversary,
    InFlightMessage,
};
pub use certify::{certify, Certificate, Lasso};
pub use protocol::Protocol;
pub use sync::{Outcome, RoundTrace, SyncEngine};
