//! The synchronous round engine: the paper's execution model.
//!
//! Time proceeds in rounds `1, 2, 3, …`. Messages sent "in round `r`" are
//! received by their head nodes within the same round `r` (this matches the
//! paper's counting: the origin sends in round 1, its neighbours are the
//! round-1 receivers `R₁`, and a bipartite flood from `v` is over after
//! round `e(v)`). The process has *terminated* once no message is in
//! flight; [`SyncEngine::run`] reports the last round that carried traffic.

use crate::protocol::Protocol;
use af_graph::{ArcId, Graph, NodeId};

/// Result of driving a synchronous run to completion (or to the cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Outcome {
    /// No message is in flight any more. `last_active_round` is the largest
    /// round in which some edge carried the message (0 when the initiator
    /// set was empty or had no neighbours to send to).
    Terminated {
        /// The paper's termination time.
        last_active_round: u32,
    },
    /// The round cap was hit with messages still in flight.
    CapReached {
        /// Number of rounds that were executed.
        rounds_executed: u32,
    },
}

impl Outcome {
    /// The termination round, or `None` if the run was capped.
    #[must_use]
    pub fn termination_round(self) -> Option<u32> {
        match self {
            Outcome::Terminated { last_active_round } => Some(last_active_round),
            Outcome::CapReached { .. } => None,
        }
    }

    /// Returns `true` if the run terminated within the cap.
    #[must_use]
    pub fn is_terminated(self) -> bool {
        matches!(self, Outcome::Terminated { .. })
    }

    /// Rounds executed either way: the termination round for terminated
    /// runs, the cap for capped runs.
    #[must_use]
    pub fn rounds_executed(self) -> u32 {
        match self {
            Outcome::Terminated { last_active_round } => last_active_round,
            Outcome::CapReached { rounds_executed } => rounds_executed,
        }
    }
}

/// What happened in one synchronous round: the messages delivered (as arcs,
/// sorted by arc id) and therefore who received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundTrace {
    round: u32,
    delivered: Vec<ArcId>,
    receivers: Vec<NodeId>,
}

impl RoundTrace {
    /// The 1-based round number.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The arcs that carried the message this round, sorted by arc id.
    #[must_use]
    pub fn delivered(&self) -> &[ArcId] {
        &self.delivered
    }

    /// The distinct nodes that received this round (the paper's round-set
    /// `R_round`), sorted by node id.
    #[must_use]
    pub fn receivers(&self) -> &[NodeId] {
        &self.receivers
    }
}

/// Synchronous message-passing simulator for a [`Protocol`] on a graph.
///
/// # Examples
///
/// ```
/// use af_engine::{SyncEngine, Protocol};
/// use af_graph::{generators, Graph, NodeId};
///
/// #[derive(Debug)]
/// struct Af;
/// impl Protocol for Af {
///     type State = ();
///     fn initiate(&self, v: NodeId, _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).to_vec()
///     }
///     fn on_receive(&self, v: NodeId, from: &[NodeId], _: &mut (), g: &Graph) -> Vec<NodeId> {
///         g.neighbors(v).iter().copied().filter(|w| !from.contains(w)).collect()
///     }
/// }
///
/// // Figure 1: flooding the line 0-1-2-3 from node 1 ends after round 2.
/// let g = generators::path(4);
/// let mut engine = SyncEngine::new(&g, Af, [NodeId::new(1)]);
/// let outcome = engine.run(100);
/// assert_eq!(outcome.termination_round(), Some(2));
/// ```
#[derive(Debug)]
pub struct SyncEngine<'g, P: Protocol> {
    graph: &'g Graph,
    protocol: P,
    states: Vec<P::State>,
    /// Messages to be delivered in round `round + 1`, sorted by arc id.
    pending: Vec<ArcId>,
    round: u32,
    total_messages: u64,
    trace_enabled: bool,
    trace: Vec<RoundTrace>,
    receipts: Vec<Vec<u32>>,
    /// Scratch: per-node sender lists, reused across rounds.
    inbox: Vec<Vec<NodeId>>,
}

impl<'g, P: Protocol> SyncEngine<'g, P> {
    /// Creates an engine and performs the initiation step: every node in
    /// `initiators` runs [`Protocol::initiate`]; the resulting messages are
    /// the round-1 traffic.
    ///
    /// Duplicate initiators are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range or the protocol returns a
    /// non-neighbour target.
    pub fn new<I>(graph: &'g Graph, protocol: P, initiators: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut engine = SyncEngine {
            graph,
            protocol,
            states: vec![P::State::default(); n],
            pending: Vec::new(),
            round: 0,
            total_messages: 0,
            trace_enabled: true,
            trace: Vec::new(),
            receipts: vec![Vec::new(); n],
            inbox: vec![Vec::new(); n],
        };
        let mut inits: Vec<NodeId> = initiators.into_iter().collect();
        inits.sort_unstable();
        inits.dedup();
        let mut sends = Vec::new();
        for v in inits {
            assert!(v.index() < n, "initiator {v} out of range");
            let targets = engine
                .protocol
                .initiate(v, &mut engine.states[v.index()], graph);
            for t in targets {
                let arc = graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                sends.push(arc);
            }
        }
        sends.sort_unstable();
        sends.dedup();
        engine.pending = sends;
        engine
    }

    /// Enables or disables per-round trace recording (enabled by default).
    /// Disable for large benchmark runs to avoid the allocation cost.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.trace_enabled = enabled;
    }

    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The messages that will be delivered in the next round, sorted by arc
    /// id.
    #[must_use]
    pub fn in_flight(&self) -> &[ArcId] {
        &self.pending
    }

    /// Returns `true` if no message is in flight (the paper's termination
    /// condition).
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total number of point-to-point messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// The per-round trace (empty if tracing was disabled).
    #[must_use]
    pub fn trace(&self) -> &[RoundTrace] {
        &self.trace
    }

    /// The rounds in which `v` received at least one copy of the message,
    /// in increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receipts(&self, v: NodeId) -> &[u32] {
        &self.receipts[v.index()]
    }

    /// The protocol state of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn state(&self, v: NodeId) -> &P::State {
        &self.states[v.index()]
    }

    /// Executes one round: delivers all pending messages and collects the
    /// sends they trigger. Returns the round number executed, or `None` if
    /// the process had already terminated.
    ///
    /// # Panics
    ///
    /// Panics if the protocol returns a non-neighbour target.
    pub fn step(&mut self) -> Option<u32> {
        if self.pending.is_empty() {
            return None;
        }
        self.round += 1;
        let round = self.round;
        let delivered = core::mem::take(&mut self.pending);
        self.total_messages += delivered.len() as u64;

        // Group senders by receiver. Arcs are sorted by arc id, which is not
        // sorted by head; collect then sort each inbox.
        let mut receivers: Vec<NodeId> = Vec::new();
        for &arc in &delivered {
            let (tail, head) = self.graph.arc_endpoints(arc);
            let inbox = &mut self.inbox[head.index()];
            if inbox.is_empty() {
                receivers.push(head);
            }
            inbox.push(tail);
        }
        receivers.sort_unstable();

        let mut sends: Vec<ArcId> = Vec::new();
        for &v in &receivers {
            let from = core::mem::take(&mut self.inbox[v.index()]);
            let mut from = from;
            from.sort_unstable();
            self.receipts[v.index()].push(round);
            let targets =
                self.protocol
                    .on_receive(v, &from, &mut self.states[v.index()], self.graph);
            for t in targets {
                let arc = self
                    .graph
                    .arc_between(v, t)
                    .unwrap_or_else(|| panic!("protocol sent {v} -> {t} on a non-edge"));
                sends.push(arc);
            }
            // Return the (now empty) buffer for reuse.
            self.inbox[v.index()] = from;
            self.inbox[v.index()].clear();
        }
        sends.sort_unstable();
        sends.dedup();
        self.pending = sends;

        if self.trace_enabled {
            self.trace.push(RoundTrace {
                round,
                delivered,
                receivers,
            });
        }
        Some(round)
    }

    /// Runs until termination or until `max_rounds` rounds have executed.
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        while self.round < max_rounds {
            if self.step().is_none() {
                return Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        }
        if self.pending.is_empty() {
            Outcome::Terminated {
                last_active_round: self.round,
            }
        } else {
            Outcome::CapReached {
                rounds_executed: self.round,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::test_protocols::{TestAmnesiacFlooding, TestClassicFlooding};
    use af_graph::generators;

    fn run_af(g: &Graph, source: usize, cap: u32) -> (Outcome, u64) {
        let mut e = SyncEngine::new(g, TestAmnesiacFlooding, [NodeId::new(source)]);
        let o = e.run(cap);
        (o, e.total_messages())
    }

    #[test]
    fn figure1_line_from_b_terminates_in_two_rounds() {
        let g = generators::path(4);
        let (o, _) = run_af(&g, 1, 100);
        assert_eq!(
            o,
            Outcome::Terminated {
                last_active_round: 2
            }
        );
    }

    #[test]
    fn figure2_triangle_terminates_in_three_rounds() {
        let g = generators::cycle(3);
        let (o, msgs) = run_af(&g, 1, 100);
        assert_eq!(o.termination_round(), Some(3));
        // round 1: 2 msgs, round 2: 2 msgs (a<->c), round 3: 2 msgs into b
        assert_eq!(msgs, 6);
    }

    #[test]
    fn figure3_even_cycle_terminates_in_diameter_rounds() {
        let g = generators::cycle(6);
        for s in 0..6 {
            let (o, _) = run_af(&g, s, 100);
            assert_eq!(o.termination_round(), Some(3), "source {s}");
        }
    }

    #[test]
    fn round_sets_match_figure1() {
        let g = generators::path(4);
        let mut e = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(1)]);
        e.run(10);
        let trace = e.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].round(), 1);
        assert_eq!(trace[0].receivers(), &[NodeId::new(0), NodeId::new(2)]);
        assert_eq!(trace[1].receivers(), &[NodeId::new(3)]);
        assert_eq!(e.receipts(NodeId::new(3)), &[2]);
        assert_eq!(e.receipts(NodeId::new(1)), &[] as &[u32]);
    }

    #[test]
    fn single_node_terminates_immediately() {
        let g = Graph::empty(1);
        let (o, msgs) = run_af(&g, 0, 10);
        assert_eq!(
            o,
            Outcome::Terminated {
                last_active_round: 0
            }
        );
        assert_eq!(msgs, 0);
    }

    #[test]
    fn empty_initiator_set_terminates_immediately() {
        let g = generators::cycle(5);
        let mut e = SyncEngine::new(&g, TestAmnesiacFlooding, []);
        assert!(e.is_terminated());
        assert_eq!(
            e.run(10),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
    }

    #[test]
    fn cap_is_reported() {
        // A triangle needs 3 rounds; cap at 2.
        let g = generators::cycle(3);
        let mut e = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)]);
        assert_eq!(e.run(2), Outcome::CapReached { rounds_executed: 2 });
        assert!(!e.is_terminated());
        // Continuing finishes the job.
        assert_eq!(
            e.run(10),
            Outcome::Terminated {
                last_active_round: 3
            }
        );
    }

    #[test]
    fn classic_flooding_informs_everyone_and_goes_quiet() {
        // C5 from node 0: everyone is informed by round e(v) = 2, and the
        // last messages (the already-informed pair 2 <-> 3 exchanging
        // copies that get dropped) travel in round e(v) + 1 = 3.
        let g = generators::cycle(5);
        let mut e = SyncEngine::new(&g, TestClassicFlooding, [NodeId::new(0)]);
        let o = e.run(100);
        assert_eq!(o.termination_round(), Some(3));
        for v in g.nodes() {
            assert!(*e.state(v), "node {v} must hold the flag");
        }
        // On a path (no cross edges) classic flooding goes quiet at exactly
        // the source eccentricity.
        let p = generators::path(5);
        let mut e = SyncEngine::new(&p, TestClassicFlooding, [NodeId::new(0)]);
        assert_eq!(e.run(100).termination_round(), Some(4));
    }

    #[test]
    fn duplicate_initiators_collapse() {
        let g = generators::path(3);
        let mut a = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(1), NodeId::new(1)]);
        let mut b = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(1)]);
        assert_eq!(a.run(10), b.run(10));
        assert_eq!(a.total_messages(), b.total_messages());
    }

    #[test]
    fn multi_source_adjacent_pair_on_edge_terminates_in_one_round() {
        // Both endpoints of a single edge start: they exchange M, then both
        // send to the complement of {other} = nothing.
        let g = generators::path(2);
        let mut e = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0), NodeId::new(1)]);
        assert_eq!(e.run(10).termination_round(), Some(1));
        assert_eq!(e.total_messages(), 2);
    }

    #[test]
    fn trace_can_be_disabled() {
        let g = generators::cycle(6);
        let mut e = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(0)]);
        e.set_trace_enabled(false);
        e.run(100);
        assert!(e.trace().is_empty());
        assert!(e.total_messages() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_initiator_panics() {
        let g = generators::path(2);
        let _ = SyncEngine::new(&g, TestAmnesiacFlooding, [NodeId::new(7)]);
    }

    #[test]
    fn borrowed_protocol_works() {
        let g = generators::cycle(4);
        let p = TestAmnesiacFlooding;
        let mut e = SyncEngine::new(&g, &p, [NodeId::new(0)]);
        assert_eq!(e.run(10).termination_round(), Some(2));
    }

    #[test]
    fn outcome_rounds_executed_covers_both_variants() {
        assert_eq!(
            Outcome::Terminated {
                last_active_round: 4
            }
            .rounds_executed(),
            4
        );
        assert_eq!(
            Outcome::CapReached { rounds_executed: 9 }.rounds_executed(),
            9
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn outcome_serde_roundtrip() {
        for o in [
            Outcome::Terminated {
                last_active_round: 3,
            },
            Outcome::CapReached { rounds_executed: 7 },
        ] {
            let json = serde_json::to_string(&o).unwrap();
            let back: Outcome = serde_json::from_str(&json).unwrap();
            assert_eq!(o, back);
        }
    }
}
