//! E8: Section 4 / Figure 5 — in the asynchronous variant, a scheduling
//! adversary forces non-termination; without adversarial delays (or on
//! trees) the flood still dies.
//!
//! Evidence is *certified*: a deterministic adversary over the finite
//! configuration space either terminates or revisits a configuration, and
//! the revisit (a lasso) is a finite proof of an infinite run.

use crate::table::Table;
use af_core::AmnesiacFloodingProtocol;
use af_engine::adversary::{DeliverAll, OneAtATime, PerHeadThrottle};
use af_engine::{certify, Certificate};
use af_graph::{generators, Graph, NodeId};

/// One certification row: graph, adversary name, certificate.
fn describe(cert: &Certificate) -> String {
    match cert {
        Certificate::Terminated { last_active_tick } => {
            format!("terminates (last activity at tick {last_active_tick})")
        }
        Certificate::NonTerminating(lasso) => format!(
            "NON-TERMINATING: lasso at tick {} with period {}",
            lasso.first_visit_tick(),
            lasso.period()
        ),
        Certificate::Unresolved { ticks_executed } => {
            format!("unresolved after {ticks_executed} ticks")
        }
    }
}

/// The E8 instance grid: `(label, graph, source)`.
#[must_use]
pub fn instances() -> Vec<(String, Graph, NodeId)> {
    vec![
        (
            "triangle (Figure 5)".into(),
            generators::cycle(3),
            NodeId::new(1),
        ),
        ("C4".into(), generators::cycle(4), NodeId::new(0)),
        ("C5".into(), generators::cycle(5), NodeId::new(0)),
        ("C6".into(), generators::cycle(6), NodeId::new(0)),
        ("C9".into(), generators::cycle(9), NodeId::new(0)),
        ("K4".into(), generators::complete(4), NodeId::new(0)),
        ("petersen".into(), generators::petersen(), NodeId::new(0)),
        (
            "path(6) — a tree".into(),
            generators::path(6),
            NodeId::new(0),
        ),
        (
            "star(8) — a tree".into(),
            generators::star(8),
            NodeId::new(0),
        ),
        (
            "binary tree h=3".into(),
            generators::binary_tree(3),
            NodeId::new(0),
        ),
    ]
}

/// Runs the E8 certification sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E8 — §4 asynchronous AF: adversary vs no adversary (certified)",
        [
            "graph",
            "deliver-all (sync)",
            "per-head throttle (Fig. 5 adversary)",
            "one-at-a-time",
        ],
    );
    for (label, g, s) in instances() {
        let sync = certify(&g, AmnesiacFloodingProtocol, DeliverAll, [s], 100_000)
            // af-audit: allow(no-unwrap-in-lib): deterministic adversary, valid by construction
            .expect("deterministic adversaries respect the contract");
        let throttle = certify(&g, AmnesiacFloodingProtocol, PerHeadThrottle, [s], 100_000)
            // af-audit: allow(no-unwrap-in-lib): deterministic adversary, valid by construction
            .expect("deterministic adversaries respect the contract");
        let serial = certify(&g, AmnesiacFloodingProtocol, OneAtATime, [s], 100_000)
            // af-audit: allow(no-unwrap-in-lib): deterministic adversary, valid by construction
            .expect("deterministic adversaries respect the contract");
        t.push_row([
            label,
            describe(&sync),
            describe(&throttle),
            describe(&serial),
        ]);
    }
    t.push_note(
        "the paper's claim: cyclic topologies admit non-terminating schedules \
         (the throttle column), while the synchronous schedule always \
         terminates (Theorem 3.1) and trees terminate under every schedule",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_column_always_terminates() {
        let t = run();
        for row in t.rows() {
            assert!(row[1].starts_with("terminates"), "{}: {}", row[0], row[1]);
        }
    }

    #[test]
    fn figure5_triangle_row_is_certified_non_terminating() {
        let t = run();
        let triangle = &t.rows()[0];
        assert!(triangle[2].contains("NON-TERMINATING"), "{}", triangle[2]);
    }

    #[test]
    fn cycles_are_non_terminating_under_throttle() {
        let t = run();
        for row in t.rows().iter().take(5) {
            assert!(
                row[2].contains("NON-TERMINATING"),
                "{} should lasso under the throttle: {}",
                row[0],
                row[2]
            );
        }
    }

    #[test]
    fn trees_terminate_in_every_column() {
        let t = run();
        for row in t
            .rows()
            .iter()
            .filter(|r| r[0].contains("tree") || r[0].contains("path"))
        {
            for cell in &row[1..] {
                assert!(cell.starts_with("terminates"), "{}: {}", row[0], cell);
            }
        }
    }
}
