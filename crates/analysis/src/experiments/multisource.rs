//! E9 and E16: the multi-source extension (the full paper's generalization
//! of Definition 1.1) — a set `S` of nodes starts the flood simultaneously.
//!
//! [`run`] (E9) checks, per instance: termination, the double-cover
//! oracle's exact receive schedule, the ≤ 2 receipts invariant, and empty
//! `Re`. [`run_scale`] (E16) is the termination-time table: random source
//! sets of size 1, 2, `⌈√n⌉` and `n` across the five benchmark graph
//! families, every row checked against the multi-source oracle and the
//! `e(S) ≤ T ≤ e(S) + D + 1` window of [`theory::termination_bounds`].

use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::table::Table;
use af_core::{roundsets, theory, AmnesiacFlooding};
use af_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The multi-source grid: `(spec, source count)`.
#[must_use]
pub fn grid() -> Vec<(GraphSpec, usize)> {
    vec![
        (GraphSpec::Path { n: 32 }, 2),
        (GraphSpec::Path { n: 32 }, 5),
        (GraphSpec::Cycle { n: 33 }, 2),
        (GraphSpec::Cycle { n: 64 }, 4),
        (GraphSpec::Grid { rows: 6, cols: 6 }, 3),
        (GraphSpec::Petersen, 2),
        (GraphSpec::Complete { n: 12 }, 3),
        (GraphSpec::Barbell { k: 6 }, 2),
        (GraphSpec::Hypercube { d: 5 }, 4),
        (
            GraphSpec::SparseConnected {
                n: 100,
                extra: 50,
                seed: 1,
            },
            5,
        ),
        (GraphSpec::RandomTree { n: 80, seed: 2 }, 6),
    ]
}

/// Runs the E9 sweep. Sources are drawn deterministically from the given
/// seed so the table is reproducible.
#[must_use]
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "E9 — multi-source amnesiac flooding (full-paper extension)",
        [
            "graph",
            "|I|",
            "terminates",
            "T",
            "oracle exact",
            "≤2 receipts",
            "Re empty",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for (spec, k) in grid() {
        let g = spec.build();
        let mut sources: Vec<NodeId> = Vec::new();
        while sources.len() < k {
            let v = NodeId::new(rng.gen_range(0..g.node_count()));
            if !sources.contains(&v) {
                sources.push(v);
            }
        }
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let pred = theory::predict(&g, sources.iter().copied());

        let mut oracle = ClaimCheck::new();
        oracle.record(run.termination_round() == Some(pred.termination_round()));
        for v in g.nodes() {
            oracle.record(run.receive_rounds(v) == pred.receive_rounds(v));
        }
        let twice_max = run.max_receive_count() <= 2;
        let re_empty = roundsets::analyze(&run).even_sequences_empty();

        t.push_row([
            spec.label(),
            k.to_string(),
            if run.terminated() { "yes" } else { "NO" }.to_string(),
            run.termination_round()
                .map_or("DNF".to_string(), |r| r.to_string()),
            oracle.to_string(),
            if twice_max { "yes" } else { "NO" }.to_string(),
            if re_empty { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.push_note("sources drawn from ChaCha8(seed); every boolean column must read yes / ok");
    t
}

/// The E16 family grid: one modest instance of each of the five benchmark
/// families (the same families `af_analysis::bench` floods at scale).
#[must_use]
pub fn scale_grid() -> Vec<(&'static str, GraphSpec)> {
    vec![
        (
            "sparse-random",
            GraphSpec::SparseConnected {
                n: 256,
                extra: 256,
                seed: 11,
            },
        ),
        (
            "pref-attach",
            GraphSpec::PreferentialAttachment {
                n: 256,
                k: 4,
                seed: 12,
            },
        ),
        (
            "geometric",
            GraphSpec::RandomGeometric {
                n: 225,
                radius: 0.12,
                seed: 13,
            },
        ),
        (
            "small-world",
            GraphSpec::WattsStrogatz {
                n: 225,
                k: 8,
                beta: 0.05,
                seed: 14,
            },
        ),
        ("grid", GraphSpec::Grid { rows: 15, cols: 15 }),
    ]
}

/// The E16 source-set sizes for a graph with `n` nodes:
/// `1, 2, ⌈√n⌉, n` (deduplicated, clamped to `n`).
#[must_use]
pub fn scale_set_sizes(n: usize) -> Vec<usize> {
    let root = (n as f64).sqrt().ceil() as usize;
    let mut sizes = vec![1, 2, root.max(1), n.max(1)];
    sizes.retain(|&k| k <= n.max(1));
    sizes.dedup();
    sizes
}

/// Runs the E16 sweep: the multi-source termination-time table. Sources
/// are drawn deterministically from `seed`; the `|S| = n` row floods from
/// every node.
///
/// Hard per-row invariants (panicking on violation): the frontier engine
/// matches the multi-source oracle's termination round and full receive
/// schedule, no node receives more than twice, and — on connected
/// instances — `T` lies inside the `termination_bounds` window (which
/// collapses to `T = e(S)` for monochromatic-bipartite sets).
#[must_use]
pub fn run_scale(seed: u64) -> Table {
    let mut t = Table::new(
        "E16 — multi-source termination times across the benchmark families",
        [
            "family",
            "n",
            "m",
            "|S|",
            "T",
            "e(S)",
            "window",
            "in window",
            "oracle",
            "≤2 receipts",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for (family, spec) in scale_grid() {
        let g = spec.build();
        let n = g.node_count();
        for k in scale_set_sizes(n) {
            let sources: Vec<NodeId> = if k == n {
                g.nodes().collect()
            } else {
                let mut set = Vec::with_capacity(k);
                while set.len() < k {
                    let v = NodeId::new(rng.gen_range(0..n));
                    if !set.contains(&v) {
                        set.push(v);
                    }
                }
                set
            };

            let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
            let pred = theory::predict(&g, sources.iter().copied());
            let mut oracle = ClaimCheck::new();
            oracle.record(run.termination_round() == Some(pred.termination_round()));
            for v in g.nodes() {
                oracle.record(run.receive_rounds(v) == pred.receive_rounds(v));
            }
            let t_exact = pred.termination_round();
            let ecc = theory::set_eccentricity(&g, sources.iter().copied());
            let bounds = theory::termination_bounds(&g, sources.iter().copied());
            let in_window = bounds.map(|(lo, hi)| lo <= t_exact && t_exact <= hi);
            let twice_max = run.max_receive_count() <= 2;
            assert!(oracle.holds(), "{family} |S|={k}: oracle mismatch");
            assert!(twice_max, "{family} |S|={k}: > 2 receipts");
            assert!(
                in_window != Some(false),
                "{family} |S|={k}: T = {t_exact} outside {bounds:?}"
            );

            t.push_row([
                family.to_string(),
                n.to_string(),
                g.edge_count().to_string(),
                k.to_string(),
                t_exact.to_string(),
                ecc.map_or("n/a".to_string(), |e| e.to_string()),
                bounds.map_or("n/a".to_string(), |(lo, hi)| format!("{lo}..{hi}")),
                in_window
                    .map_or("n/a", |ok| if ok { "yes" } else { "NO" })
                    .to_string(),
                oracle.to_string(),
                if twice_max { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.push_note(
        "sources drawn from ChaCha8(seed) (|S| = n floods from every node); \
         window is theory::termination_bounds — e(S) exactly for \
         monochromatic-bipartite sets, (e(S)+1)..(e(S)+D+1) otherwise; \
         n/a appears only on instances not fully reachable from S",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_passes_every_claim() {
        let t = run(42);
        assert_eq!(t.rows().len(), grid().len());
        for row in t.rows() {
            assert_eq!(row[2], "yes", "{} did not terminate", row[0]);
            assert!(
                row[4].ends_with("ok"),
                "{}: oracle mismatch {}",
                row[0],
                row[4]
            );
            assert_eq!(row[5], "yes", "{}", row[0]);
            assert_eq!(row[6], "yes", "{}", row[0]);
        }
    }

    #[test]
    fn different_seeds_change_sources_not_claims() {
        for seed in [0u64, 7, 99] {
            let t = run(seed);
            for row in t.rows() {
                assert_eq!(row[2], "yes", "seed {seed}: {}", row[0]);
            }
        }
    }

    #[test]
    fn scale_table_covers_all_families_and_sizes() {
        let t = run_scale(42);
        let expected: usize = scale_grid()
            .iter()
            .map(|(_, spec)| scale_set_sizes(spec.build().node_count()).len())
            .sum();
        assert_eq!(t.rows().len(), expected);
        for (family, _) in scale_grid() {
            assert!(t.rows().iter().any(|r| r[0] == family), "{family} missing");
        }
        for row in t.rows() {
            // The in-window and correctness columns must never read NO
            // (n/a is tolerated only for unreachable instances).
            assert_ne!(row[7], "NO", "{}: T outside window", row[0]);
            assert!(row[8].ends_with("ok"), "{}: oracle {}", row[0], row[8]);
            assert_eq!(row[9], "yes", "{}", row[0]);
        }
        // |S| = 1, 2, and n all appear.
        assert!(t.rows().iter().any(|r| r[3] == "1"));
        assert!(t.rows().iter().any(|r| r[3] == "2"));
        assert!(t.rows().iter().any(|r| r[3] == r[1]));
    }

    #[test]
    fn scale_set_sizes_cover_the_ladder() {
        assert_eq!(scale_set_sizes(225), vec![1, 2, 15, 225]);
        assert_eq!(scale_set_sizes(256), vec![1, 2, 16, 256]);
        assert_eq!(scale_set_sizes(2), vec![1, 2]);
        assert_eq!(scale_set_sizes(1), vec![1]);
    }

    #[test]
    fn more_sources_never_slow_a_grid_flood_down() {
        // On the bipartite grid every random set is dominated by the
        // single worst source: T(|S| = n) = 1 or 2 while T(|S| = 1) is
        // within [radius, diameter]. The table's T column must reflect
        // the monotone trend from |S| = 1 to |S| = n per family.
        let t = run_scale(7);
        for (family, _) in scale_grid() {
            let rows: Vec<_> = t.rows().iter().filter(|r| r[0] == family).collect();
            let first: u32 = rows.first().unwrap()[4].parse().unwrap();
            let last: u32 = rows.last().unwrap()[4].parse().unwrap();
            assert!(
                last <= first,
                "{family}: flooding from every node ({last}) should not be \
                 slower than from one ({first})"
            );
        }
    }

    #[test]
    fn all_nodes_as_sources_terminates_in_one_round() {
        // Extreme case: everyone initiates. Every node then receives from
        // every neighbour in round 1 and the complement is empty.
        let g = af_graph::generators::complete(6);
        let run = AmnesiacFlooding::multi_source(&g, g.nodes()).run();
        assert_eq!(run.termination_round(), Some(1));
    }
}
