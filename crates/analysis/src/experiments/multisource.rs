//! E9: the multi-source extension (the full paper's generalization of
//! Definition 1.1) — a set `I` of nodes starts the flood simultaneously.
//!
//! Checks, per instance: termination, the double-cover oracle's exact
//! receive schedule, the ≤ 2 receipts invariant, and empty `Re`.

use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::table::Table;
use af_core::{roundsets, theory, AmnesiacFlooding};
use af_graph::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The multi-source grid: `(spec, source count)`.
#[must_use]
pub fn grid() -> Vec<(GraphSpec, usize)> {
    vec![
        (GraphSpec::Path { n: 32 }, 2),
        (GraphSpec::Path { n: 32 }, 5),
        (GraphSpec::Cycle { n: 33 }, 2),
        (GraphSpec::Cycle { n: 64 }, 4),
        (GraphSpec::Grid { rows: 6, cols: 6 }, 3),
        (GraphSpec::Petersen, 2),
        (GraphSpec::Complete { n: 12 }, 3),
        (GraphSpec::Barbell { k: 6 }, 2),
        (GraphSpec::Hypercube { d: 5 }, 4),
        (
            GraphSpec::SparseConnected {
                n: 100,
                extra: 50,
                seed: 1,
            },
            5,
        ),
        (GraphSpec::RandomTree { n: 80, seed: 2 }, 6),
    ]
}

/// Runs the E9 sweep. Sources are drawn deterministically from the given
/// seed so the table is reproducible.
#[must_use]
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "E9 — multi-source amnesiac flooding (full-paper extension)",
        [
            "graph",
            "|I|",
            "terminates",
            "T",
            "oracle exact",
            "≤2 receipts",
            "Re empty",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for (spec, k) in grid() {
        let g = spec.build();
        let mut sources: Vec<NodeId> = Vec::new();
        while sources.len() < k {
            let v = NodeId::new(rng.gen_range(0..g.node_count()));
            if !sources.contains(&v) {
                sources.push(v);
            }
        }
        let run = AmnesiacFlooding::multi_source(&g, sources.iter().copied()).run();
        let pred = theory::predict(&g, sources.iter().copied());

        let mut oracle = ClaimCheck::new();
        oracle.record(run.termination_round() == Some(pred.termination_round()));
        for v in g.nodes() {
            oracle.record(run.receive_rounds(v) == pred.receive_rounds(v));
        }
        let twice_max = run.max_receive_count() <= 2;
        let re_empty = roundsets::analyze(&run).even_sequences_empty();

        t.push_row([
            spec.label(),
            k.to_string(),
            if run.terminated() { "yes" } else { "NO" }.to_string(),
            run.termination_round()
                .map_or("DNF".to_string(), |r| r.to_string()),
            oracle.to_string(),
            if twice_max { "yes" } else { "NO" }.to_string(),
            if re_empty { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.push_note("sources drawn from ChaCha8(seed); every boolean column must read yes / ok");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_passes_every_claim() {
        let t = run(42);
        assert_eq!(t.rows().len(), grid().len());
        for row in t.rows() {
            assert_eq!(row[2], "yes", "{} did not terminate", row[0]);
            assert!(
                row[4].ends_with("ok"),
                "{}: oracle mismatch {}",
                row[0],
                row[4]
            );
            assert_eq!(row[5], "yes", "{}", row[0]);
            assert_eq!(row[6], "yes", "{}", row[0]);
        }
    }

    #[test]
    fn different_seeds_change_sources_not_claims() {
        for seed in [0u64, 7, 99] {
            let t = run(seed);
            for row in t.rows() {
                assert_eq!(row[2], "yes", "seed {seed}: {}", row[0]);
            }
        }
    }

    #[test]
    fn all_nodes_as_sources_terminates_in_one_round() {
        // Extreme case: everyone initiates. Every node then receives from
        // every neighbour in round 1 and the complement is empty.
        let g = af_graph::generators::complete(6);
        let run = AmnesiacFlooding::multi_source(&g, g.nodes()).run();
        assert_eq!(run.termination_round(), Some(1));
    }
}
