//! E7: Theorem 3.3 — on connected non-bipartite graphs the flood
//! terminates by round `2D + 1`, always strictly after round `e(source)`,
//! and strictly after `D` from a maximum-eccentricity source.

use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::table::Table;
use af_core::AmnesiacFlooding;
use af_graph::{algo, NodeId};

/// The non-bipartite sweep grid.
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    let mut v = vec![
        GraphSpec::Cycle { n: 3 },
        GraphSpec::Cycle { n: 7 },
        GraphSpec::Cycle { n: 65 },
        GraphSpec::Cycle { n: 501 },
        GraphSpec::Complete { n: 4 },
        GraphSpec::Complete { n: 16 },
        GraphSpec::Complete { n: 64 },
        GraphSpec::Wheel { k: 8 },
        GraphSpec::Wheel { k: 40 },
        GraphSpec::Petersen,
        GraphSpec::Barbell { k: 6 },
        GraphSpec::Barbell { k: 16 },
        GraphSpec::Lollipop { k: 8, p: 16 },
        GraphSpec::Torus { rows: 3, cols: 9 },
    ];
    for seed in 0..4 {
        v.push(GraphSpec::SparseConnected {
            n: 120,
            extra: 80,
            seed,
        });
        v.push(GraphSpec::PreferentialAttachment { n: 150, k: 2, seed });
    }
    v
}

/// Runs the E7 sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E7 — Theorem 3.3: non-bipartite termination in (e(src), 2D + 1]",
        [
            "graph",
            "n",
            "D",
            "2D+1",
            "sources",
            "e(src) < T ≤ 2D+1",
            "worst-src T > D",
            "T (min/mean/max)",
        ],
    );

    for spec in specs() {
        let g = spec.build();
        if algo::is_bipartite(&g) {
            // Random specs occasionally come out bipartite; skip those
            // instances (they belong to E4/E5).
            continue;
        }
        let d = super::connected_diameter(&g);
        let sources: Vec<NodeId> = super::bipartite::sample_sources(g.node_count());
        let mut in_range = ClaimCheck::new();
        let mut rounds = Vec::new();
        for &s in &sources {
            let run = AmnesiacFlooding::single_source(&g, s).run();
            let tr = super::must_terminate(run.termination_round());
            let ecc = super::connected_ecc(&g, s);
            in_range.record(tr > ecc && tr <= 2 * d + 1);
            rounds.push(u64::from(tr));
        }
        // Worst-case source: eccentricity = D forces T > D.
        let worst = g
            .nodes()
            .max_by_key(|&v| super::connected_ecc(&g, v))
            // af-audit: allow(no-unwrap-in-lib): experiment graphs are non-empty
            .expect("non-empty");
        let t_worst = super::must_terminate(
            AmnesiacFlooding::single_source(&g, worst)
                .run()
                .termination_round(),
        );
        let summary = super::nonempty_summary(rounds.iter().copied());
        t.push_row([
            spec.label(),
            g.node_count().to_string(),
            d.to_string(),
            (2 * d + 1).to_string(),
            sources.len().to_string(),
            in_range.to_string(),
            if t_worst > d {
                format!("yes ({t_worst} > {d})")
            } else {
                format!("NO ({t_worst} <= {d})")
            },
            format!("{}/{:.1}/{}", summary.min(), summary.mean(), summary.max()),
        ]);
    }
    t.push_note(
        "odd cycles attain the extreme: C_n from any source terminates in \
         exactly n = 2D + 1 rounds",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_in_range() {
        let t = run();
        assert!(t.rows().len() >= 14);
        for row in t.rows() {
            assert!(row[5].ends_with("ok"), "{}: {}", row[0], row[5]);
            assert!(row[6].starts_with("yes"), "{}: {}", row[0], row[6]);
        }
    }

    #[test]
    fn odd_cycles_attain_two_d_plus_one() {
        for n in [3usize, 5, 9, 15] {
            let g = af_graph::generators::cycle(n);
            let d = algo::diameter(&g).unwrap();
            let run = AmnesiacFlooding::single_source(&g, 0.into()).run();
            assert_eq!(run.termination_round(), Some(2 * d + 1), "C{n}");
            assert_eq!(run.termination_round(), Some(n as u32), "C{n}");
        }
    }

    #[test]
    fn cliques_terminate_in_three_rounds() {
        // K_n (n >= 3): D = 1, termination = 3 = 2D + 1.
        for n in [3usize, 5, 10, 30] {
            let g = af_graph::generators::complete(n);
            let run = AmnesiacFlooding::single_source(&g, 0.into()).run();
            assert_eq!(run.termination_round(), Some(3), "K{n}");
        }
    }
}
