//! E17: amnesiac flooding under mid-flood topology churn — which of the
//! paper's guarantees survive on a dynamic graph, and at what cost.
//!
//! The termination theorem (Theorem 3.1) is proved for a fixed graph. E17
//! floods the five benchmark families while a seeded churn schedule edits
//! the topology at round boundaries ([`af_graph::dynamic`]), in two
//! regimes per nonzero rate:
//!
//! * **one-shot** — a single edit batch (sized by the rate) lands before
//!   round 2, while the first wave is in flight, and the topology is
//!   static afterwards: the minimal perturbation. The flood either
//!   re-terminates (the `rounds` column then shows the inflation over the
//!   static exact time `T₀`) or the single batch already left a
//!   persistently cycling arc configuration;
//! * **sustained** — a fresh batch every round for the whole run: the
//!   adversarial regime, where each round's new edges keep re-exciting
//!   the flood.
//!
//! The **zero-churn row is the anchor**: it runs the same
//! [`DynamicFlooding`] engine under the empty schedule and is *hard
//! asserted* (panicking on violation) to match both the exact-time
//! double-cover oracle and the static frontier engine's full record — so
//! any divergence in the nonzero rows is attributable to churn, not to
//! the engine. Nonzero rates reach configurations the paper's
//! node-initiated setting cannot: a mid-flood edit turns the in-flight
//! state into an *arbitrary arc configuration* of the new graph, where
//! synchronous non-termination is possible (the E12 census exhibits such
//! configurations) — capped rows are therefore findings, not bugs.

use crate::experiments::multisource::scale_grid;
use crate::table::Table;
use af_core::{theory, DynamicFlooding, FrontierFlooding};
use af_graph::dynamic::{ChurnKind, ChurnSchedule, ChurnSpec};
use af_graph::NodeId;

/// The churn-rate ladder, in per mille of current edges edited per churn
/// round: the oracle-checked zero-churn anchor plus three nonzero rates.
#[must_use]
pub fn rates_pm() -> [u32; 4] {
    [0, 10, 50, 100]
}

/// The two nonzero-churn regimes: a single mid-flood edit batch (before
/// round 2), or a fresh batch every round.
const REGIMES: [&str; 2] = ["one-shot", "sustained"];

/// Builds the schedule for one `(rate, regime)` cell: `None` for the
/// zero-churn anchor, a single round-2 delta for `one-shot`, and a
/// per-round schedule up to `cap` for `sustained`.
fn schedule_for(g: &af_graph::Graph, churn: ChurnSpec, regime: &str, cap: u32) -> ChurnSchedule {
    if churn.is_none() {
        return ChurnSchedule::empty();
    }
    if regime == "one-shot" {
        // Generate one batch against the base graph, then land it at the
        // round-2 boundary — mid-flight, after the first wave moved. The
        // batch stays valid: no other delta precedes it.
        let mut schedule = ChurnSchedule::empty();
        if let Some(delta) = ChurnSchedule::generate(g, churn, 1).delta_at(1) {
            schedule.insert(2, delta.clone());
        }
        schedule
    } else {
        ChurnSchedule::generate(g, churn, cap)
    }
}

/// Runs the E17 sweep: one flood from node 0 per `(family, rate, regime)`
/// cell, under [`ChurnKind::Mix`] batches seeded with `seed` (edge flips
/// plus probabilistic node joins/leaves), capped at the static `2n + 2`
/// bound.
///
/// Hard invariants (panicking on violation): the zero-churn row matches
/// the exact-time oracle *and* the static frontier engine's termination
/// round, message total, and per-round message counts, and loses no
/// messages.
#[must_use]
pub fn run(seed: u64) -> Table {
    let mut t = Table::new(
        "E17 — flooding under mid-flood churn across the benchmark families",
        [
            "family",
            "n",
            "m",
            "churn ‰",
            "regime",
            "terminated",
            "rounds",
            "T/T0",
            "messages",
            "lost",
        ],
    );
    for (family, spec) in scale_grid() {
        let g = spec.build();
        // af-audit: allow(no-lossy-id-cast): node counts are bounded by u32::MAX
        let cap = 2 * g.node_count() as u32 + 2;
        let source = NodeId::new(0);
        let t0 = theory::predict(&g, [source]).termination_round();
        for rate_pm in rates_pm() {
            let churn = ChurnSpec {
                kind: ChurnKind::Mix,
                rate_pm,
                seed,
            };
            let regimes: &[&str] = if rate_pm == 0 { &[""] } else { &REGIMES };
            for &regime in regimes {
                let schedule = schedule_for(&g, churn, regime, cap);
                let mut sim = DynamicFlooding::new(&g, [source], schedule);
                let outcome = sim.run(cap);

                if rate_pm == 0 {
                    assert_eq!(
                        outcome.termination_round(),
                        Some(t0),
                        "{family}: zero-churn column disagrees with the oracle"
                    );
                    let mut frontier = FrontierFlooding::new(&g, [source]);
                    assert_eq!(outcome, frontier.run(cap), "{family}: engine mismatch");
                    assert_eq!(sim.total_messages(), frontier.total_messages());
                    assert_eq!(sim.messages_per_round(), frontier.messages_per_round());
                    assert_eq!(sim.messages_lost(), 0);
                }

                let rounds = outcome.rounds_executed();
                t.push_row([
                    family.to_string(),
                    g.node_count().to_string(),
                    g.edge_count().to_string(),
                    rate_pm.to_string(),
                    if regime.is_empty() { "-" } else { regime }.to_string(),
                    if outcome.is_terminated() {
                        "yes"
                    } else {
                        "NO (cap)"
                    }
                    .to_string(),
                    rounds.to_string(),
                    format!("{:.2}", f64::from(rounds) / f64::from(t0)),
                    sim.total_messages().to_string(),
                    sim.messages_lost().to_string(),
                ]);
            }
        }
    }
    t.push_note(
        "one flood from node 0 per cell under mix:rate:seed churn batches \
         (edge flips + probabilistic joins/leaves; round cap 2n + 2); \
         one-shot = a single batch at the round-2 boundary, static \
         afterwards; sustained = a fresh batch every round; T0 is the \
         static exact time from theory::predict, hard-asserted on the \
         churn = 0 rows together with bit-agreement against the frontier \
         engine; NO (cap) rows carry a persistently cycling arc \
         configuration (the E12 regime) — termination is not a theorem on \
         dynamic graphs, and even one mid-flood batch can tip a flood into \
         it",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rows per family: one zero-churn anchor plus two regimes per
    /// nonzero rate.
    fn rows_per_family() -> usize {
        1 + (rates_pm().len() - 1) * REGIMES.len()
    }

    #[test]
    fn covers_every_family_rate_and_regime() {
        let t = run(42);
        assert_eq!(t.rows().len(), scale_grid().len() * rows_per_family());
        for (family, _) in scale_grid() {
            assert!(
                t.rows()
                    .iter()
                    .any(|r| r[0] == family && r[3] == "0" && r[4] == "-"),
                "{family}: zero-churn anchor missing"
            );
            for rate in &rates_pm()[1..] {
                for regime in REGIMES {
                    assert!(
                        t.rows()
                            .iter()
                            .any(|r| r[0] == family && r[3] == rate.to_string() && r[4] == regime),
                        "{family} @ {rate}‰ {regime} missing"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_churn_rows_are_exact_and_lossless() {
        let t = run(42);
        for row in t.rows().iter().filter(|r| r[3] == "0") {
            assert_eq!(row[5], "yes", "{}: static flood must terminate", row[0]);
            assert_eq!(row[7], "1.00", "{}: zero churn inflates nothing", row[0]);
            assert_eq!(row[9], "0", "{}: no losses without churn", row[0]);
        }
    }

    #[test]
    fn rows_record_consistent_counters() {
        let t = run(42);
        for row in t.rows() {
            let n: u32 = row[1].parse().unwrap();
            let rounds: u32 = row[6].parse().unwrap();
            let messages: u64 = row[8].parse().unwrap();
            assert!(rounds <= 2 * n + 2, "{}: rounds within cap", row[0]);
            assert!(messages > 0, "{}: some messages always flow", row[0]);
            if row[5] == "NO (cap)" {
                assert_eq!(rounds, 2 * n + 2, "{}: capped runs run to the cap", row[0]);
            }
        }
    }

    #[test]
    fn different_seeds_keep_the_anchor_rows() {
        for seed in [7u64, 99] {
            let t = run(seed);
            for row in t.rows().iter().filter(|r| r[3] == "0") {
                assert_eq!(row[5], "yes", "seed {seed}: {}", row[0]);
            }
        }
    }
}
