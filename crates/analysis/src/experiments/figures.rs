//! E1–E3: the paper's worked examples, regenerated.
//!
//! * **E1 / Figure 1** — the 4-node line flooded from `b`: terminates in 2
//!   rounds (< diameter 3).
//! * **E2 / Figure 2** — the triangle from `b`: terminates in 3 rounds
//!   `= 2D + 1`, `D = 1`.
//! * **E3 / Figure 3** — the even cycle `C6`: terminates in `D = 3` rounds
//!   from every source.

use crate::table::Table;
use af_core::{flood, trace};
use af_graph::generators;

/// Expected (figure, termination round) pairs asserted by the integration
/// tests: Figure 1 → 2, Figure 2 → 3, Figure 3 → 3.
pub const EXPECTED_ROUNDS: [(&str, u32); 3] = [("figure-1", 2), ("figure-2", 3), ("figure-3", 3)];

/// Runs E1–E3 and returns the summary table.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E1–E3 — Figures 1–3: worked examples",
        [
            "figure",
            "graph",
            "source",
            "D",
            "e(src)",
            "bound",
            "T measured",
            "T paper",
        ],
    );

    // Figure 1: line a-b-c-d from b.
    let g = generators::path(4);
    let r = flood(&g, 1.into());
    t.push_row([
        "Figure 1".to_string(),
        "path(4)".into(),
        "b".into(),
        super::connected_diameter(&g).to_string(),
        super::connected_ecc(&g, 1.into()).to_string(),
        "D = 3".into(),
        super::must_terminate(r.termination_round()).to_string(),
        "2".into(),
    ]);

    // Figure 2: triangle from b.
    let g = generators::cycle(3);
    let r = flood(&g, 1.into());
    t.push_row([
        "Figure 2".to_string(),
        "cycle(3)".into(),
        "b".into(),
        super::connected_diameter(&g).to_string(),
        super::connected_ecc(&g, 1.into()).to_string(),
        "2D+1 = 3".into(),
        super::must_terminate(r.termination_round()).to_string(),
        "3".into(),
    ]);

    // Figure 3: C6 from every source (vertex-transitive; report node a).
    let g = generators::cycle(6);
    let r = flood(&g, 0.into());
    t.push_row([
        "Figure 3".to_string(),
        "cycle(6)".into(),
        "a".into(),
        super::connected_diameter(&g).to_string(),
        super::connected_ecc(&g, 0.into()).to_string(),
        "D = 3".into(),
        super::must_terminate(r.termination_round()).to_string(),
        "3".into(),
    ]);

    t.push_note(
        "T measured must equal T paper row-for-row; the traces below each \
         figure are rendered by examples/replicate_figures.rs",
    );
    t
}

/// The three figure traces as rendered text (what the example binary
/// prints).
#[must_use]
pub fn rendered_traces() -> Vec<(String, String)> {
    let mut out = Vec::new();
    let g = generators::path(4);
    out.push((
        "Figure 1 — line a-b-c-d from b".to_string(),
        trace::render_run(&g, &flood(&g, 1.into())),
    ));
    let g = generators::cycle(3);
    out.push((
        "Figure 2 — triangle a-b-c from b".to_string(),
        trace::render_run(&g, &flood(&g, 1.into())),
    ));
    let g = generators::cycle(6);
    out.push((
        "Figure 3 — even cycle C6 from a".to_string(),
        trace::render_run(&g, &flood(&g, 0.into())),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_equals_paper_in_every_row() {
        let t = run();
        assert_eq!(t.rows().len(), 3);
        for row in t.rows() {
            let measured = &row[6];
            let paper = &row[7];
            assert_eq!(measured, paper, "figure {} diverges from the paper", row[0]);
        }
    }

    #[test]
    fn traces_render_for_all_three_figures() {
        let traces = rendered_traces();
        assert_eq!(traces.len(), 3);
        assert!(traces[0].1.contains("terminated after round 2"));
        assert!(traces[1].1.contains("terminated after round 3"));
        assert!(traces[2].1.contains("terminated after round 3"));
    }

    #[test]
    fn expected_rounds_constant_matches_table() {
        let t = run();
        for ((_, expected), row) in EXPECTED_ROUNDS.iter().zip(t.rows()) {
            assert_eq!(expected.to_string(), row[6]);
        }
    }
}
