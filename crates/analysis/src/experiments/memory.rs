//! E15 (extension): the memory ladder — what does each extra round of
//! memory buy?
//!
//! The paper motivates amnesiac flooding as the zero-memory end of a
//! spectrum whose other end is the classic 1-bit flag. `KMemoryFlooding`
//! interpolates: remember the sender sets of the last `k` receive events.
//! Measured shape:
//!
//! * `k = 0` (echo everything back) never terminates — even one edge
//!   ping-pongs forever;
//! * `k = 1` **is** amnesiac flooding: terminating, `2m` messages on
//!   non-bipartite graphs;
//! * `k ≥ 2` trims the second wave: messages and rounds decrease
//!   monotonically toward the classic baseline's cost.

use crate::spec::GraphSpec;
use crate::table::Table;
use af_core::{ClassicFloodingProtocol, KMemoryFlooding};
use af_engine::{Outcome, SyncEngine};
use af_graph::{Graph, NodeId};

/// The memory-ladder grid (non-bipartite graphs — on bipartite ones every
/// `k ≥ 1` behaves identically, which the tests assert separately).
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::Cycle { n: 9 },
        GraphSpec::Cycle { n: 33 },
        GraphSpec::Complete { n: 16 },
        GraphSpec::Petersen,
        GraphSpec::Wheel { k: 12 },
        GraphSpec::Barbell { k: 8 },
        GraphSpec::Torus { rows: 3, cols: 7 },
        GraphSpec::SparseConnected {
            n: 80,
            extra: 60,
            seed: 9,
        },
    ]
}

/// The window sizes measured (`0` is reported as a non-terminating row).
pub const WINDOWS: [usize; 5] = [0, 1, 2, 3, 8];

fn measure(g: &Graph, k: usize) -> (Outcome, u64) {
    let mut e = SyncEngine::new(g, KMemoryFlooding::new(k), [NodeId::new(0)]);
    e.set_trace_enabled(false);
    let out = e.run(500);
    (out, e.total_messages())
}

/// Runs the E15 ladder.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E15 — (extension) the memory ladder: k-memory flooding",
        [
            "graph",
            "k=0",
            "k=1 (= AF)",
            "k=2",
            "k=3",
            "k=8",
            "classic flag",
        ],
    );
    for spec in specs() {
        let g = spec.build();
        let mut cells = vec![spec.label()];
        for &k in &WINDOWS {
            let (out, msgs) = measure(&g, k);
            cells.push(match out.termination_round() {
                Some(t) => format!("T={t}, {msgs} msgs"),
                None => "does not terminate".to_string(),
            });
        }
        let mut classic = SyncEngine::new(&g, ClassicFloodingProtocol, [NodeId::new(0)]);
        classic.set_trace_enabled(false);
        let out = classic.run(500);
        cells.push(format!(
            "T={}, {} msgs",
            super::must_terminate(out.termination_round()),
            classic.total_messages()
        ));
        t.push_row(cells);
    }
    t.push_note(
        "k = 0 must never terminate; k = 1 equals amnesiac flooding (2m \
         messages on these non-bipartite graphs); costs fall monotonically \
         in k toward the classic flag's",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_core::AmnesiacFloodingProtocol;

    #[test]
    fn ladder_shape_holds() {
        let t = run();
        for row in t.rows() {
            assert_eq!(row[1], "does not terminate", "{}: k=0", row[0]);
            for cell in &row[2..] {
                assert!(cell.starts_with("T="), "{}: {cell}", row[0]);
            }
        }
    }

    #[test]
    fn k1_column_matches_af_exactly() {
        for spec in specs() {
            let g = spec.build();
            let (out, msgs) = measure(&g, 1);
            let mut af = SyncEngine::new(&g, AmnesiacFloodingProtocol, [NodeId::new(0)]);
            af.set_trace_enabled(false);
            let af_out = af.run(500);
            assert_eq!(out, af_out, "{spec}");
            assert_eq!(msgs, af.total_messages(), "{spec}");
        }
    }

    #[test]
    fn messages_fall_monotonically_in_k() {
        for spec in specs() {
            let g = spec.build();
            let mut prev = u64::MAX;
            for &k in &WINDOWS[1..] {
                let (out, msgs) = measure(&g, k);
                assert!(out.is_terminated(), "{spec} k={k}");
                assert!(msgs <= prev, "{spec}: {msgs} > {prev} at k={k}");
                prev = msgs;
            }
        }
    }

    #[test]
    fn on_bipartite_graphs_every_positive_k_is_identical() {
        let g = af_graph::generators::grid(4, 4);
        let baseline = measure(&g, 1);
        for k in [2usize, 3, 8] {
            assert_eq!(measure(&g, k), baseline, "k={k}");
        }
    }
}
