//! E6: Theorem 3.1 — amnesiac flooding terminates on every finite graph.
//!
//! Two layers of evidence:
//!
//! 1. **Exhaustive** — all connected labelled graphs with `n ≤ max_n`
//!    nodes, every source, every claim (delegates to
//!    [`crate::exhaustive`]).
//! 2. **Random families at scale** — ER, regular, preferential-attachment
//!    and sparse-connected graphs up to thousands of nodes, checking
//!    termination within the `D`/`2D + 1` bound.

use crate::exhaustive::verify_all_connected;
use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::sweep::{default_threads, run_parallel};
use crate::table::Table;
use af_core::AmnesiacFlooding;

/// The random-family grid for the at-scale layer.
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    let mut v = Vec::new();
    for seed in 0..3 {
        v.push(GraphSpec::GnpConnected {
            n: 128,
            p: 0.05,
            seed,
        });
        v.push(GraphSpec::GnpConnected {
            n: 512,
            p: 0.02,
            seed,
        });
        v.push(GraphSpec::SparseConnected {
            n: 1024,
            extra: 512,
            seed,
        });
        v.push(GraphSpec::RandomRegular { n: 256, d: 4, seed });
        v.push(GraphSpec::PreferentialAttachment {
            n: 1024,
            k: 3,
            seed,
        });
    }
    v.push(GraphSpec::GnpConnected {
        n: 2048,
        p: 0.01,
        seed: 0,
    });
    v.push(GraphSpec::SparseConnected {
        n: 4096,
        extra: 2048,
        seed: 0,
    });
    v
}

/// Runs the exhaustive layer and returns its summary table.
///
/// `max_n` of 6 enumerates 26 704 graphs (about a second in release mode);
/// tests use smaller values.
#[must_use]
pub fn run_exhaustive(max_n: usize) -> Table {
    let mut t = Table::new(
        "E6a — Theorem 3.1 exhaustively: ALL connected graphs, ALL sources",
        [
            "n",
            "graphs",
            "runs (graph x source)",
            "all claims hold",
            "max T observed",
        ],
    );
    for n in 1..=max_n {
        let report = verify_all_connected(n);
        t.push_row([
            n.to_string(),
            report.graphs_checked().to_string(),
            report.runs_checked().to_string(),
            if report.all_claims_hold() {
                "yes".to_string()
            } else {
                format!("NO — {} violations", report.violations().len())
            },
            report.max_termination_round().to_string(),
        ]);
    }
    t.push_note(
        "claims per run: terminates; T ≤ D or 2D+1; bipartite T = e(src); \
         oracle exact; ≤ 2 receipts (opposite parity); Re empty; messages = m or 2m",
    );
    t
}

/// Runs the random-families-at-scale layer.
#[must_use]
pub fn run_random() -> Table {
    let mut t = Table::new(
        "E6b — Theorem 3.1 at scale: random families",
        [
            "graph",
            "n",
            "m",
            "bipartite",
            "bound",
            "T",
            "terminates ≤ bound",
        ],
    );
    let results = run_parallel(specs(), default_threads(), |spec| {
        let g = spec.build();
        let bound = super::connected_bound(&g);
        let bip = af_graph::algo::is_bipartite(&g);
        let run = AmnesiacFlooding::single_source(&g, 0.into()).run();
        let mut check = ClaimCheck::new();
        let tr = run.termination_round();
        check.record(tr.is_some_and(|t| t <= bound));
        (
            spec.label(),
            g.node_count(),
            g.edge_count(),
            bip,
            bound,
            tr.map_or("DNF".to_string(), |t| t.to_string()),
            check,
        )
    });
    for (label, n, m, bip, bound, tr, check) in results {
        t.push_row([
            label,
            n.to_string(),
            m.to_string(),
            if bip { "yes" } else { "no" }.to_string(),
            bound.to_string(),
            tr,
            check.to_string(),
        ]);
    }
    t.push_note("every row must terminate within its bound (1/1 ok)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_core::theory;

    #[test]
    fn exhaustive_layer_holds_to_n4() {
        let t = run_exhaustive(4);
        assert_eq!(t.rows().len(), 4);
        for row in t.rows() {
            assert_eq!(row[3], "yes", "n = {}", row[0]);
        }
    }

    #[test]
    fn random_layer_smoke() {
        // Full grid is exercised by the bench binary; verify a small slice.
        let spec = GraphSpec::SparseConnected {
            n: 128,
            extra: 64,
            seed: 7,
        };
        let g = spec.build();
        let bound = theory::upper_bound(&g).unwrap();
        let run = AmnesiacFlooding::single_source(&g, 0.into()).run();
        assert!(run.termination_round().unwrap() <= bound);
    }

    #[test]
    fn spec_grid_is_nonempty_and_buildable() {
        let specs = specs();
        assert!(specs.len() >= 15);
        // Building one large spec exercises the generators at sweep scale.
        let g = GraphSpec::PreferentialAttachment {
            n: 1024,
            k: 3,
            seed: 0,
        }
        .build();
        assert_eq!(g.node_count(), 1024);
    }
}
