//! E12 (extension): how special are the paper's node-initiated floods?
//!
//! The synchronous dynamics of amnesiac flooding are defined on *any* set
//! of in-flight arcs. Theorem 3.1 covers only the configurations produced
//! by node initiators — and indeed only those are universally terminating:
//! arbitrary arc configurations can orbit forever (a single message on a
//! cycle never meets an annihilating counter-wave). This experiment
//! exhaustively classifies all `2^(2m)` configurations of small graphs and
//! reports the census.

use crate::table::Table;
use af_core::arbitrary::classify_all_configurations;
use af_graph::enumerate::connected_graphs;
use af_graph::{generators, Graph};

/// The named instances censused exhaustively (all must have ≤ 12 edges).
#[must_use]
pub fn instances() -> Vec<(String, Graph)> {
    vec![
        ("path(5)".into(), generators::path(5)),
        ("star(6)".into(), generators::star(6)),
        ("cycle(3)".into(), generators::cycle(3)),
        ("cycle(4)".into(), generators::cycle(4)),
        ("cycle(5)".into(), generators::cycle(5)),
        ("cycle(6)".into(), generators::cycle(6)),
        ("complete(4)".into(), generators::complete(4)),
        ("K(2,3)".into(), generators::complete_bipartite(2, 3)),
        ("wheel(4)".into(), generators::wheel(4)),
        ("friendship(2)".into(), generators::friendship(2)),
        ("binary tree h=2".into(), generators::binary_tree(2)),
        ("grid(2,3)".into(), generators::grid(2, 3)),
    ]
}

/// Runs the E12 census over the named instances.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E12 — (extension) flooding from arbitrary arc configurations",
        [
            "graph",
            "m",
            "configs (4^m)",
            "terminating",
            "cycling",
            "lone arcs cycling",
            "max T",
            "max period",
            "node-initiated all terminate",
        ],
    );
    for (label, g) in instances() {
        let census = classify_all_configurations(&g);
        t.push_row([
            label,
            g.edge_count().to_string(),
            census.configurations().to_string(),
            census.terminating().to_string(),
            census.cycling().to_string(),
            format!("{}/{}", census.single_arc_cycling(), g.arc_count()),
            census.max_termination_round().to_string(),
            census.max_period().to_string(),
            if census.node_initiated_all_terminate() {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    t.push_note(
        "trees flush every configuration out; any graph with a cycle has \
         non-terminating arc configurations (e.g. every lone arc on the \
         cycle) — Theorem 3.1's node-initiated setting is essential, not \
         an artifact",
    );
    t
}

/// Census aggregated over *all* connected graphs on `n` nodes (small `n`).
///
/// # Panics
///
/// Panics if some enumerated graph exceeds the 12-edge census cap
/// (first possible at `n = 6`; callers should stay at `n ≤ 5`).
#[must_use]
pub fn run_exhaustive(max_n: usize) -> Table {
    let mut t = Table::new(
        "E12b — arbitrary-configuration census over ALL connected graphs",
        [
            "n",
            "graphs",
            "trees (never cycle)",
            "cyclic graphs",
            "cyclic graphs with non-terminating configs",
        ],
    );
    for n in 2..=max_n {
        let mut graphs = 0u64;
        let mut trees = 0u64;
        let mut cyclic = 0u64;
        let mut cyclic_with_nonterm = 0u64;
        for g in connected_graphs(n) {
            graphs += 1;
            let census = classify_all_configurations(&g);
            let is_tree = g.edge_count() == n - 1;
            if is_tree {
                trees += 1;
                assert_eq!(census.cycling(), 0, "a tree configuration cycled");
            } else {
                cyclic += 1;
                if census.cycling() > 0 {
                    cyclic_with_nonterm += 1;
                }
            }
            assert!(
                census.node_initiated_all_terminate(),
                "Theorem 3.1 violated"
            );
        }
        t.push_row([
            n.to_string(),
            graphs.to_string(),
            trees.to_string(),
            cyclic.to_string(),
            cyclic_with_nonterm.to_string(),
        ]);
    }
    t.push_note(
        "measured: every connected graph that contains a cycle admits a \
         non-terminating arc configuration, and no tree does",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_census_rows_have_consistent_counts() {
        let t = run();
        for row in t.rows() {
            let configs: u64 = row[2].parse().unwrap();
            let term: u64 = row[3].parse().unwrap();
            let cyc: u64 = row[4].parse().unwrap();
            assert_eq!(term + cyc, configs, "{}", row[0]);
            assert_eq!(row[8], "yes", "{}: Theorem 3.1", row[0]);
        }
    }

    #[test]
    fn trees_never_cycle_and_cycles_always_do() {
        let t = run();
        for row in t.rows() {
            let cyc: u64 = row[4].parse().unwrap();
            match row[0].as_str() {
                "path(5)" | "star(6)" | "binary tree h=2" => {
                    assert_eq!(cyc, 0, "{}", row[0]);
                }
                _ => assert!(cyc > 0, "{} contains a cycle", row[0]),
            }
        }
    }

    #[test]
    fn exhaustive_census_to_n4() {
        let t = run_exhaustive(4);
        // n = 4: 38 connected graphs, 16 of them trees, 22 cyclic.
        let row = &t.rows()[2];
        assert_eq!(row[1], "38");
        assert_eq!(row[2], "16");
        assert_eq!(row[3], "22");
        assert_eq!(
            row[4], "22",
            "every cyclic 4-node graph has a non-terminating config"
        );
    }
}
