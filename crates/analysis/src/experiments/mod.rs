//! The experiment registry: one module per paper artifact (see DESIGN.md's
//! experiment index). Every function returns [`Table`](crate::Table)s that
//! the `af-bench` binaries print and EXPERIMENTS.md records.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1–E3 | Figures 1, 2, 3 (worked examples) | [`figures::run`] |
//! | E4–E5 | Lemma 2.1 / Corollary 2.2 (bipartite exactness) | [`bipartite::run`] |
//! | E6 | Theorem 3.1 (termination, exhaustive + random) | [`termination::run_exhaustive`], [`termination::run_random`] |
//! | E7 | Theorem 3.3 (non-bipartite ≤ 2D + 1) | [`nonbipartite::run`] |
//! | E8 | Figure 5 / §4 (asynchronous adversary) | [`asynchronous::run`] |
//! | E9 | multi-source extension | [`multisource::run`] |
//! | E10 | topology detection application | [`detection::run`] |
//! | E11 | AF vs classic flag flooding | [`comparison::run`] |
//! | E12 | (extension) arbitrary arc configurations | [`arbitrary_config::run`] |
//! | E13 | (extension) termination-time scaling series | [`scaling::run`] |
//! | E14 | (extension) robustness under message loss & crashes | [`faults::run`] |
//! | E15 | (extension) the memory ladder (k-memory flooding) | [`memory::run`] |
//! | E16 | multi-source termination times across the benchmark families | [`multisource::run_scale`] |
//! | E17 | (extension) flooding under mid-flood topology churn | [`churn::run`] |

pub mod arbitrary_config;
pub mod asynchronous;
pub mod bipartite;
pub mod churn;
pub mod comparison;
pub mod detection;
pub mod faults;
pub mod figures;
pub mod memory;
pub mod multisource;
pub mod nonbipartite;
pub mod scaling;
pub mod termination;
