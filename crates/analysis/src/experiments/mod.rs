//! The experiment registry: one module per paper artifact (see DESIGN.md's
//! experiment index). Every function returns [`Table`](crate::Table)s that
//! the `af-bench` binaries print and EXPERIMENTS.md records.
//!
//! | id | paper artifact | function |
//! |----|----------------|----------|
//! | E1–E3 | Figures 1, 2, 3 (worked examples) | [`figures::run`] |
//! | E4–E5 | Lemma 2.1 / Corollary 2.2 (bipartite exactness) | [`bipartite::run`] |
//! | E6 | Theorem 3.1 (termination, exhaustive + random) | [`termination::run_exhaustive`], [`termination::run_random`] |
//! | E7 | Theorem 3.3 (non-bipartite ≤ 2D + 1) | [`nonbipartite::run`] |
//! | E8 | Figure 5 / §4 (asynchronous adversary) | [`asynchronous::run`] |
//! | E9 | multi-source extension | [`multisource::run`] |
//! | E10 | topology detection application | [`detection::run`] |
//! | E11 | AF vs classic flag flooding | [`comparison::run`] |
//! | E12 | (extension) arbitrary arc configurations | [`arbitrary_config::run`] |
//! | E13 | (extension) termination-time scaling series | [`scaling::run`] |
//! | E14 | (extension) robustness under message loss & crashes | [`faults::run`] |
//! | E15 | (extension) the memory ladder (k-memory flooding) | [`memory::run`] |
//! | E16 | multi-source termination times across the benchmark families | [`multisource::run_scale`] |
//! | E17 | (extension) flooding under mid-flood topology churn | [`churn::run`] |

use crate::stats::Summary;
use af_graph::{algo, Graph, NodeId};

/// Diameter of an experiment graph. Every registered experiment builds
/// connected graphs, so the invariant is asserted in exactly one place.
pub(crate) fn connected_diameter(g: &Graph) -> u32 {
    // af-audit: allow(no-unwrap-in-lib): experiment graphs are connected
    algo::diameter(g).expect("experiment graphs are connected")
}

/// Eccentricity of a node in an experiment graph (connected, see above).
pub(crate) fn connected_ecc(g: &Graph, v: NodeId) -> u32 {
    // af-audit: allow(no-unwrap-in-lib): experiment graphs are connected
    algo::eccentricity(g, v).expect("experiment graphs are connected")
}

/// The paper's termination bound for an experiment graph (connected, see
/// above).
pub(crate) fn connected_bound(g: &Graph) -> u32 {
    // af-audit: allow(no-unwrap-in-lib): experiment graphs are connected
    af_core::theory::upper_bound(g).expect("experiment graphs are connected")
}

/// Unwraps a termination round the paper guarantees to exist: Theorem 3.1
/// for amnesiac flooding, the classic argument for flag flooding. Every
/// experiment runs with a cap at or above the proven bound, so `None`
/// would falsify the theorem — worth a panic in an experiment driver.
pub(crate) fn must_terminate(round: Option<u32>) -> u32 {
    // af-audit: allow(no-unwrap-in-lib): the paper's termination theorems
    // guarantee the flood ends within every experiment's round cap
    round.expect("flood terminates within the proven bound")
}

/// Summarises a sample set every experiment constructs non-empty.
pub(crate) fn nonempty_summary<I: IntoIterator<Item = u64>>(samples: I) -> Summary {
    // af-audit: allow(no-unwrap-in-lib): experiments always record >= 1 sample
    Summary::of(samples).expect("at least one sample")
}

pub mod arbitrary_config;
pub mod asynchronous;
pub mod bipartite;
pub mod churn;
pub mod comparison;
pub mod detection;
pub mod faults;
pub mod figures;
pub mod memory;
pub mod multisource;
pub mod nonbipartite;
pub mod scaling;
pub mod termination;
