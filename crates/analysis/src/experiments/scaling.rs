//! E13 (extension figure): termination time as a function of graph size —
//! the "O(D)" shape of the paper's bounds drawn as data series.
//!
//! For each family, the series reports `n`, `D`, the bound (`D` or
//! `2D + 1`), and the measured worst-case termination round over sampled
//! sources. The reproduced shape: bipartite families hug `D` exactly;
//! non-bipartite families sit strictly above `D` but never above `2D + 1`;
//! odd cycles attain `2D + 1` exactly.

use crate::stats::Summary;
use crate::table::Table;
use af_core::FloodBatch;
use af_graph::{algo, Graph};

/// One family's series: `(label, sizes, builder)`.
type Series = (&'static str, Vec<usize>, fn(usize) -> Graph);

/// The scaling grid.
#[must_use]
pub fn series() -> Vec<Series> {
    vec![
        ("path", vec![8, 16, 32, 64, 128, 256], |n| {
            af_graph::generators::path(n)
        }),
        ("even cycle", vec![8, 16, 32, 64, 128, 256], |n| {
            af_graph::generators::cycle(n)
        }),
        ("odd cycle", vec![9, 17, 33, 65, 129, 257], |n| {
            af_graph::generators::cycle(n)
        }),
        ("grid k x k", vec![3, 4, 6, 8, 11, 16], |k| {
            af_graph::generators::grid(k, k)
        }),
        ("hypercube Q_d", vec![3, 4, 5, 6, 7, 8], |d| {
            af_graph::generators::hypercube(d as u32)
        }),
        ("complete K_n", vec![4, 8, 16, 32, 64, 128], |n| {
            af_graph::generators::complete(n)
        }),
        ("barbell", vec![4, 8, 16, 32, 64, 96], |k| {
            af_graph::generators::barbell(k)
        }),
        ("wheel", vec![4, 8, 16, 32, 64, 128], |k| {
            af_graph::generators::wheel(k)
        }),
        ("friendship", vec![2, 4, 8, 16, 32, 64], |k| {
            af_graph::generators::friendship(k)
        }),
        ("pref. attachment", vec![32, 64, 128, 256, 512, 1024], |n| {
            af_graph::generators::preferential_attachment(n, 2, 13)
        }),
    ]
}

/// Runs the E13 scaling sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E13 — (extension) termination-time scaling: the O(D) shape",
        [
            "family",
            "param",
            "n",
            "bipartite",
            "D",
            "bound",
            "worst T",
            "T (min/mean/max)",
        ],
    );
    for (family, sizes, build) in series() {
        for param in sizes {
            let g = build(param);
            let d = algo::diameter(&g).expect("series graphs are connected");
            let bip = algo::is_bipartite(&g);
            let bound = if bip { d } else { 2 * d + 1 };
            let mut sources = super::bipartite::sample_sources(g.node_count());
            // The worst case over all sources is attained at a
            // maximum-eccentricity node (bipartite worst T = D needs
            // e(s) = D, and Theorem 3.3's strictness is only guaranteed
            // from such a source); a stride sample can miss every one of
            // them on irregular families, so add one explicitly.
            let peripheral = g
                .nodes()
                .max_by_key(|&v| algo::eccentricity(&g, v).expect("connected"))
                .expect("series graphs are non-empty");
            sources.push(peripheral);
            // One batched simulator floods every sampled source, reusing
            // its allocations across the whole series entry.
            let mut batch = FloodBatch::new(&g);
            let rounds: Vec<u64> = sources
                .iter()
                .map(|&s| {
                    u64::from(
                        batch
                            .run_from([s])
                            .termination_round()
                            .expect("Theorem 3.1"),
                    )
                })
                .collect();
            let summary = Summary::of(rounds.iter().copied()).expect("non-empty");
            assert!(
                summary.max() <= u64::from(bound),
                "{family}({param}) exceeded bound"
            );
            t.push_row([
                family.to_string(),
                param.to_string(),
                g.node_count().to_string(),
                if bip { "yes" } else { "no" }.to_string(),
                d.to_string(),
                bound.to_string(),
                summary.max().to_string(),
                format!("{}/{:.1}/{}", summary.min(), summary.mean(), summary.max()),
            ]);
        }
    }
    t.push_note(
        "shape: bipartite families have worst T = D exactly; odd cycles \
         attain worst T = 2D + 1 exactly; all other non-bipartite families \
         fall strictly between",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold_per_family() {
        let t = run();
        for row in t.rows() {
            let bip = &row[3];
            let d: u64 = row[4].parse().unwrap();
            let bound: u64 = row[5].parse().unwrap();
            let worst: u64 = row[6].parse().unwrap();
            assert!(worst <= bound, "{} {}", row[0], row[1]);
            if bip == "yes" {
                assert_eq!(
                    worst, d,
                    "bipartite worst T must equal D: {} {}",
                    row[0], row[1]
                );
            } else {
                assert!(
                    worst > d,
                    "non-bipartite worst T must exceed D: {} {}",
                    row[0],
                    row[1]
                );
            }
            if row[0] == "odd cycle" {
                assert_eq!(worst, 2 * d + 1, "odd cycles attain the bound");
            }
        }
    }

    #[test]
    fn series_covers_both_classes_at_scale() {
        let t = run();
        assert!(t.rows().len() >= 50);
        assert!(t.rows().iter().any(|r| r[3] == "yes"));
        assert!(t.rows().iter().any(|r| r[3] == "no"));
    }
}
