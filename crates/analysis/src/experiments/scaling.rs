//! E13 (extension figure): termination time as a function of graph size —
//! the "O(D)" shape of the paper's bounds drawn as data series — plus the
//! [`strong_scaling`] companion: the same floods executed by the sharded
//! multicore engine at increasing thread counts, recording wall time,
//! speedup over one shard, and (always) exact agreement with the serial
//! frontier engine.
//!
//! For each family, the main series reports `n`, `D`, the bound (`D` or
//! `2D + 1`), and the measured worst-case termination round over sampled
//! sources. The reproduced shape: bipartite families hug `D` exactly;
//! non-bipartite families sit strictly above `D` but never above `2D + 1`;
//! odd cycles attain `2D + 1` exactly.

use crate::table::Table;
use af_core::{FloodBatch, FloodEngine};
use af_graph::{algo, Graph, NodeId, PartitionStrategy};
use std::time::Instant;

/// One family's series: `(label, sizes, builder)`.
type Series = (&'static str, Vec<usize>, fn(usize) -> Graph);

/// The scaling grid.
#[must_use]
pub fn series() -> Vec<Series> {
    vec![
        ("path", vec![8, 16, 32, 64, 128, 256], |n| {
            af_graph::generators::path(n)
        }),
        ("even cycle", vec![8, 16, 32, 64, 128, 256], |n| {
            af_graph::generators::cycle(n)
        }),
        ("odd cycle", vec![9, 17, 33, 65, 129, 257], |n| {
            af_graph::generators::cycle(n)
        }),
        ("grid k x k", vec![3, 4, 6, 8, 11, 16], |k| {
            af_graph::generators::grid(k, k)
        }),
        ("hypercube Q_d", vec![3, 4, 5, 6, 7, 8], |d| {
            // af-audit: allow(no-lossy-id-cast): d <= 8 in this series
            af_graph::generators::hypercube(d as u32)
        }),
        ("complete K_n", vec![4, 8, 16, 32, 64, 128], |n| {
            af_graph::generators::complete(n)
        }),
        ("barbell", vec![4, 8, 16, 32, 64, 96], |k| {
            af_graph::generators::barbell(k)
        }),
        ("wheel", vec![4, 8, 16, 32, 64, 128], |k| {
            af_graph::generators::wheel(k)
        }),
        ("friendship", vec![2, 4, 8, 16, 32, 64], |k| {
            af_graph::generators::friendship(k)
        }),
        ("pref. attachment", vec![32, 64, 128, 256, 512, 1024], |n| {
            af_graph::generators::preferential_attachment(n, 2, 13)
        }),
    ]
}

/// Runs the E13 scaling sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E13 — (extension) termination-time scaling: the O(D) shape",
        [
            "family",
            "param",
            "n",
            "bipartite",
            "D",
            "bound",
            "worst T",
            "T (min/mean/max)",
        ],
    );
    for (family, sizes, build) in series() {
        for param in sizes {
            let g = build(param);
            let d = super::connected_diameter(&g);
            let bip = algo::is_bipartite(&g);
            let bound = if bip { d } else { 2 * d + 1 };
            let mut sources = super::bipartite::sample_sources(g.node_count());
            // The worst case over all sources is attained at a
            // maximum-eccentricity node (bipartite worst T = D needs
            // e(s) = D, and Theorem 3.3's strictness is only guaranteed
            // from such a source); a stride sample can miss every one of
            // them on irregular families, so add one explicitly.
            let peripheral = g
                .nodes()
                .max_by_key(|&v| super::connected_ecc(&g, v))
                // af-audit: allow(no-unwrap-in-lib): series graphs are non-empty
                .expect("series graphs are non-empty");
            sources.push(peripheral);
            // One batched simulator floods every sampled source, reusing
            // its allocations across the whole series entry.
            let mut batch = FloodBatch::new(&g);
            let rounds: Vec<u64> = sources
                .iter()
                .map(|&s| {
                    u64::from(super::must_terminate(
                        batch.run_from([s]).termination_round(),
                    ))
                })
                .collect();
            let summary = super::nonempty_summary(rounds.iter().copied());
            assert!(
                summary.max() <= u64::from(bound),
                "{family}({param}) exceeded bound"
            );
            t.push_row([
                family.to_string(),
                param.to_string(),
                g.node_count().to_string(),
                if bip { "yes" } else { "no" }.to_string(),
                d.to_string(),
                bound.to_string(),
                summary.max().to_string(),
                format!("{}/{:.1}/{}", summary.min(), summary.mean(), summary.max()),
            ]);
        }
    }
    t.push_note(
        "shape: bipartite families have worst T = D exactly; odd cycles \
         attain worst T = 2D + 1 exactly; all other non-bipartite families \
         fall strictly between",
    );
    t
}

/// The strong-scaling grid: `(label, graph, sources)` triples large enough
/// that a single flood has real per-round work, yet small enough for CI.
fn strong_scaling_workloads() -> Vec<(&'static str, Graph, Vec<NodeId>)> {
    let specs: Vec<(&'static str, Graph)> = vec![
        (
            "sparse-random n=4096",
            af_graph::generators::sparse_connected(4096, 4096, 17),
        ),
        (
            "small-world n=2048 k=10",
            af_graph::generators::watts_strogatz(2048, 10, 0.05, 18),
        ),
        ("grid 64 x 64", af_graph::generators::grid(64, 64)),
    ];
    specs
        .into_iter()
        .map(|(label, g)| {
            let sources = super::bipartite::sample_sources(g.node_count());
            (label, g, sources)
        })
        .collect()
}

/// The thread counts the strong-scaling column sweeps.
pub const STRONG_SCALING_THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs the E13 strong-scaling sweep: every workload flooded by the
/// sharded engine at 1, 2, 4 and 8 shards (BFS partitioner), with wall
/// time, speedup over the 1-shard run, and a correctness column asserting
/// the engine matched the serial frontier baseline flood-for-flood.
///
/// Timing columns are measurements of *this* host (CI machines and laptops
/// differ); the `agree` column is a hard invariant and panics on mismatch.
#[must_use]
pub fn strong_scaling() -> Table {
    let mut t = Table::new(
        "E13b — (extension) sharded-engine strong scaling on a single flood workload",
        [
            "workload",
            "n",
            "m",
            "threads",
            "partitioner",
            "wall ms",
            "speedup",
            "agree",
        ],
    );
    for (label, g, sources) in strong_scaling_workloads() {
        // Serial reference record: termination rounds and message counts.
        let mut reference = FloodBatch::new(&g);
        let expected: Vec<_> = sources.iter().map(|&s| reference.run_from([s])).collect();

        let mut base_ms = None;
        for threads in STRONG_SCALING_THREADS {
            let strategy = PartitionStrategy::Bfs;
            let start = Instant::now();
            let mut batch = FloodBatch::with_engine(&g, FloodEngine::Sharded { threads, strategy });
            let got: Vec<_> = sources.iter().map(|&s| batch.run_from([s])).collect();
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let agree = got == expected;
            assert!(agree, "{label} x{threads}: sharded run diverged");
            let base = *base_ms.get_or_insert(wall_ms);
            let speedup = if wall_ms > 0.0 { base / wall_ms } else { 1.0 };
            t.push_row([
                label.to_string(),
                g.node_count().to_string(),
                g.edge_count().to_string(),
                threads.to_string(),
                strategy.name().to_string(),
                format!("{wall_ms:.2}"),
                format!("{speedup:.2}x"),
                "yes".to_string(),
            ]);
        }
    }
    t.push_note(
        "speedup is relative to the same engine at 1 shard on this host; \
         the agree column is checked against the serial frontier engine \
         flood-for-flood (hard invariant). Wall times include graph \
         partitioning and the per-flood worker-thread spawns (k - 1 \
         spawns per run), so short floods understate the per-round \
         scaling.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold_per_family() {
        let t = run();
        for row in t.rows() {
            let bip = &row[3];
            let d: u64 = row[4].parse().unwrap();
            let bound: u64 = row[5].parse().unwrap();
            let worst: u64 = row[6].parse().unwrap();
            assert!(worst <= bound, "{} {}", row[0], row[1]);
            if bip == "yes" {
                assert_eq!(
                    worst, d,
                    "bipartite worst T must equal D: {} {}",
                    row[0], row[1]
                );
            } else {
                assert!(
                    worst > d,
                    "non-bipartite worst T must exceed D: {} {}",
                    row[0],
                    row[1]
                );
            }
            if row[0] == "odd cycle" {
                assert_eq!(worst, 2 * d + 1, "odd cycles attain the bound");
            }
        }
    }

    #[test]
    fn series_covers_both_classes_at_scale() {
        let t = run();
        assert!(t.rows().len() >= 50);
        assert!(t.rows().iter().any(|r| r[3] == "yes"));
        assert!(t.rows().iter().any(|r| r[3] == "no"));
    }

    #[test]
    fn strong_scaling_rows_agree_and_cover_the_thread_sweep() {
        let t = strong_scaling();
        assert_eq!(
            t.rows().len(),
            strong_scaling_workloads().len() * STRONG_SCALING_THREADS.len()
        );
        for row in t.rows() {
            assert_eq!(row[7], "yes", "{} x{}", row[0], row[3]);
            assert_eq!(row[4], "bfs");
            let speedup = row[6].trim_end_matches('x');
            assert!(speedup.parse::<f64>().unwrap() > 0.0);
        }
        // The sweep includes the serial anchor and the multicore points.
        for threads in STRONG_SCALING_THREADS {
            assert!(t.rows().iter().any(|r| r[3] == threads.to_string()));
        }
    }
}
