//! E4–E5: Lemma 2.1 and Corollary 2.2 — on connected bipartite graphs the
//! flood terminates in exactly `e(source)` rounds, hence within `D`.
//!
//! Sweep: every bipartite family in the spec zoo, every source (sampled
//! above 64 nodes), asserting exact equality with the eccentricity and the
//! diameter bound.

use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::table::Table;
use af_core::AmnesiacFlooding;
use af_graph::{algo, NodeId};

/// The bipartite sweep grid.
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    let mut v = vec![
        GraphSpec::Path { n: 4 },
        GraphSpec::Path { n: 33 },
        GraphSpec::Path { n: 256 },
        GraphSpec::Cycle { n: 6 },
        GraphSpec::Cycle { n: 64 },
        GraphSpec::Cycle { n: 500 },
        GraphSpec::Star { n: 100 },
        GraphSpec::BinaryTree { h: 6 },
        GraphSpec::Grid { rows: 8, cols: 8 },
        GraphSpec::Grid { rows: 3, cols: 40 },
        GraphSpec::Torus { rows: 4, cols: 6 },
        GraphSpec::Hypercube { d: 7 },
        GraphSpec::CompleteBipartite { a: 7, b: 12 },
        GraphSpec::Caterpillar { spine: 20, legs: 3 },
    ];
    for seed in 0..4 {
        v.push(GraphSpec::RandomTree { n: 200, seed });
    }
    v
}

/// Runs the E4–E5 sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E4–E5 — Lemma 2.1 / Corollary 2.2: bipartite termination = e(src) ≤ D",
        [
            "graph",
            "n",
            "m",
            "D",
            "sources",
            "T = e(src)",
            "T ≤ D",
            "T (min/mean/max)",
        ],
    );

    for spec in specs() {
        let g = spec.build();
        assert!(algo::is_bipartite(&g), "{spec} must be bipartite");
        let d = super::connected_diameter(&g);
        let sources: Vec<NodeId> = sample_sources(g.node_count());
        let mut exact = ClaimCheck::new();
        let mut bounded = ClaimCheck::new();
        let mut rounds = Vec::new();
        for &s in &sources {
            let run = AmnesiacFlooding::single_source(&g, s).run();
            let tr = super::must_terminate(run.termination_round());
            let ecc = super::connected_ecc(&g, s);
            exact.record(tr == ecc);
            bounded.record(tr <= d);
            rounds.push(u64::from(tr));
        }
        let summary = super::nonempty_summary(rounds.iter().copied());
        t.push_row([
            spec.label(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            d.to_string(),
            sources.len().to_string(),
            exact.to_string(),
            bounded.to_string(),
            format!("{}/{:.1}/{}", summary.min(), summary.mean(), summary.max()),
        ]);
    }
    t.push_note("the 'T = e(src)' and 'T ≤ D' columns must read k/k ok on every row");
    t
}

/// All sources for small graphs; a deterministic stride sample above 64.
pub(crate) fn sample_sources(n: usize) -> Vec<NodeId> {
    if n <= 64 {
        (0..n).map(NodeId::new).collect()
    } else {
        let stride = n / 32;
        (0..32).map(|i| NodeId::new(i * stride)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_passes_both_claims() {
        let t = run();
        assert!(!t.rows().is_empty());
        for row in t.rows() {
            assert!(
                row[5].ends_with("ok"),
                "{}: exactness failed: {}",
                row[0],
                row[5]
            );
            assert!(
                row[6].ends_with("ok"),
                "{}: bound failed: {}",
                row[0],
                row[6]
            );
        }
    }

    #[test]
    fn sources_are_sampled_above_threshold() {
        assert_eq!(sample_sources(10).len(), 10);
        assert_eq!(sample_sources(1000).len(), 32);
        assert!(sample_sources(1000).iter().all(|s| s.index() < 1000));
    }

    #[test]
    fn all_specs_are_bipartite_and_connected() {
        for spec in specs() {
            let g = spec.build();
            assert!(algo::is_bipartite(&g), "{spec}");
            assert!(algo::is_connected(&g), "{spec}");
        }
    }
}
