//! E10: the application the paper suggests — topology detection.
//!
//! A node that sees the flooded message twice has witnessed an odd closed
//! walk: flooding doubles as a distributed non-bipartiteness test. The
//! sweep measures detection agreement against the graph-algorithmic ground
//! truth over a mixed pool (it must be 100%: the double-cover theory makes
//! the detector exact on connected graphs).

use crate::spec::GraphSpec;
use crate::stats::ClaimCheck;
use crate::table::Table;
use af_core::detect::{detect_bipartiteness, detect_by_timing};
use af_graph::algo;

/// The mixed detection pool (bipartite and not, deterministic and random).
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    let mut v = vec![
        GraphSpec::Path { n: 17 },
        GraphSpec::Cycle { n: 12 },
        GraphSpec::Cycle { n: 13 },
        GraphSpec::Complete { n: 9 },
        GraphSpec::CompleteBipartite { a: 4, b: 9 },
        GraphSpec::Petersen,
        GraphSpec::Wheel { k: 10 },
        GraphSpec::Grid { rows: 5, cols: 5 },
        GraphSpec::Torus { rows: 3, cols: 7 },
        GraphSpec::Torus { rows: 4, cols: 8 },
        GraphSpec::Hypercube { d: 5 },
        GraphSpec::Barbell { k: 5 },
        GraphSpec::BinaryTree { h: 5 },
    ];
    for seed in 0..6 {
        v.push(GraphSpec::SparseConnected {
            n: 60,
            extra: (seed as usize % 3) * 20,
            seed,
        });
        v.push(GraphSpec::RandomTree { n: 50, seed });
    }
    v
}

/// Runs the E10 sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E10 — topology detection by flooding (paper §1.1 application)",
        [
            "graph",
            "ground truth",
            "double-receipt rule",
            "timing rule",
            "agree (all sources)",
        ],
    );
    for spec in specs() {
        let g = spec.build();
        let truth = algo::is_bipartite(&g);
        let mut agree = ClaimCheck::new();
        let mut first_receipt = None;
        let mut first_timing = None;
        for s in super::bipartite::sample_sources(g.node_count()) {
            let by_receipt = detect_bipartiteness(&g, s).is_bipartite();
            let by_timing = detect_by_timing(&g, s)
                // af-audit: allow(no-unwrap-in-lib): sweep graphs are connected
                .expect("sweep graphs are connected")
                .is_bipartite();
            first_receipt.get_or_insert(by_receipt);
            first_timing.get_or_insert(by_timing);
            agree.record(by_receipt == truth && by_timing == truth);
        }
        let verdict = |b: bool| if b { "bipartite" } else { "non-bipartite" };
        t.push_row([
            spec.label(),
            verdict(truth).to_string(),
            // af-audit: allow(no-unwrap-in-lib): sample_sources is never empty
            verdict(first_receipt.expect("at least one source")).to_string(),
            // af-audit: allow(no-unwrap-in-lib): sample_sources is never empty
            verdict(first_timing.expect("at least one source")).to_string(),
            agree.to_string(),
        ]);
    }
    t.push_note("both detectors are exact on connected graphs; every row must read k/k ok");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_exact_on_the_whole_pool() {
        let t = run();
        assert!(t.rows().len() >= 20);
        for row in t.rows() {
            assert_eq!(row[1], row[2], "{}: receipt rule wrong", row[0]);
            assert_eq!(row[1], row[3], "{}: timing rule wrong", row[0]);
            assert!(row[4].ends_with("ok"), "{}: {}", row[0], row[4]);
        }
    }

    #[test]
    fn pool_contains_both_classes() {
        let (mut bip, mut non) = (0, 0);
        for spec in specs() {
            if algo::is_bipartite(&spec.build()) {
                bip += 1;
            } else {
                non += 1;
            }
        }
        assert!(bip >= 5, "pool needs bipartite instances, found {bip}");
        assert!(non >= 5, "pool needs non-bipartite instances, found {non}");
    }
}
