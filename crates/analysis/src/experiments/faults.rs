//! E14 (extension): what do faults do to amnesiac flooding?
//!
//! The paper's model is fault-free ("no messages are lost in transit"),
//! and the reproduction shows that assumption is **load-bearing**:
//!
//! * **message loss can break termination.** Dropping one of two messages
//!   that would have annihilated at a node acts exactly like the
//!   Section-4 adversary's delay; the surviving wave keeps circulating.
//!   On cyclic topologies, lossy floods routinely outlive the fault-free
//!   `2D + 1` bound and can hit the round cap entirely.
//! * **trees stay safe — and pay in coverage.** Without a cycle no wave
//!   can turn back, so termination survives every loss pattern, but every
//!   dropped message silences a whole subtree.
//! * **dense cyclic graphs invert the trade.** The loss-sustained
//!   circulating waves keep delivering: coverage stays near 100% even at
//!   60% loss — paid for in rounds and messages.

use crate::spec::GraphSpec;
use crate::stats::Summary;
use crate::table::Table;
use af_core::AmnesiacFloodingProtocol;
use af_engine::faults::FaultySyncEngine;
use af_graph::NodeId;

/// The fault sweep grid: cyclic topologies plus tree controls.
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::Path { n: 64 },
        GraphSpec::BinaryTree { h: 5 },
        GraphSpec::Cycle { n: 64 },
        GraphSpec::Grid { rows: 8, cols: 8 },
        GraphSpec::Hypercube { d: 6 },
        GraphSpec::Complete { n: 32 },
        GraphSpec::Petersen,
        GraphSpec::GnpConnected {
            n: 100,
            p: 0.06,
            seed: 5,
        },
        GraphSpec::PreferentialAttachment {
            n: 100,
            k: 2,
            seed: 5,
        },
    ]
}

/// The loss rates measured.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.1, 0.3, 0.6];

/// Number of seeded trials per (graph, rate) cell.
pub const TRIALS: u64 = 12;

/// Round cap per trial, as a multiple of the node count.
const CAP_FACTOR: u32 = 10;

/// Runs the E14 sweep.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E14 — (extension) amnesiac flooding under message loss",
        [
            "graph",
            "tree",
            "loss rate",
            "terminated/trials",
            "within paper bound / terminated",
            "rounds (min/mean/max of terminated)",
            "informed % (mean)",
        ],
    );
    for spec in specs() {
        let g = spec.build();
        let n = g.node_count();
        let is_tree = g.edge_count() == n - 1;
        let bound = super::connected_bound(&g);
        for &rate in &LOSS_RATES {
            let mut terminated = 0u64;
            let mut within_bound = 0u64;
            let mut rounds = Vec::new();
            let mut informed = Vec::new();
            for trial in 0..TRIALS {
                let mut e = FaultySyncEngine::new(
                    &g,
                    AmnesiacFloodingProtocol,
                    [NodeId::new(0)],
                    rate,
                    trial,
                );
                // af-audit: allow(no-lossy-id-cast): n is bounded by u32::MAX nodes
                let out = e.run(CAP_FACTOR * n as u32 + 10);
                if let Some(r) = out.termination_round() {
                    terminated += 1;
                    rounds.push(u64::from(r));
                    if r <= bound {
                        within_bound += 1;
                    }
                }
                informed.push((e.informed_count() as u64 * 100) / n as u64);
            }
            let inf = super::nonempty_summary(informed.iter().copied());
            let rounds_cell = Summary::of(rounds.iter().copied()).map_or("-".to_string(), |s| {
                format!("{}/{:.0}/{}", s.min(), s.mean(), s.max())
            });
            t.push_row([
                spec.label(),
                if is_tree { "yes" } else { "no" }.to_string(),
                format!("{rate:.1}"),
                format!("{terminated}/{TRIALS}"),
                format!("{within_bound}/{terminated}"),
                rounds_cell,
                format!("{:.0}", inf.mean()),
            ]);
        }
    }
    t.push_note(
        "finding: loss rates > 0 let waves escape the 2D+1 bound on cyclic \
         graphs (and sometimes the 10n round cap — 'terminated' < trials), \
         while tree rows terminate in every trial; the paper's no-loss \
         assumption is essential to Theorem 3.1",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is expensive in debug builds; compute it once for all
    /// tests in the module.
    fn table() -> &'static Table {
        static TABLE: OnceLock<Table> = OnceLock::new();
        TABLE.get_or_init(run)
    }

    #[test]
    fn lossless_cells_are_clean() {
        let t = table();
        for row in t.rows().iter().filter(|r| r[2] == "0.0") {
            assert_eq!(row[3], format!("{TRIALS}/{TRIALS}"), "{}", row[0]);
            assert_eq!(row[4], format!("{TRIALS}/{TRIALS}"), "{}", row[0]);
            assert_eq!(row[6], "100", "{}: lossless coverage must be total", row[0]);
        }
    }

    #[test]
    fn tree_rows_always_terminate() {
        let t = table();
        for row in t.rows().iter().filter(|r| r[1] == "yes") {
            assert_eq!(
                row[3],
                format!("{TRIALS}/{TRIALS}"),
                "{} rate {}",
                row[0],
                row[2]
            );
        }
    }

    #[test]
    fn loss_breaks_the_bound_somewhere() {
        // The headline finding must be visible in the table: some cyclic
        // cell with loss has a terminated run beyond 2D+1 or a capped run.
        let t = table();
        let mut witnessed = false;
        for row in t.rows().iter().filter(|r| r[1] == "no" && r[2] != "0.0") {
            let term: u64 = row[3].split('/').next().unwrap().parse().unwrap();
            let within: u64 = row[4].split('/').next().unwrap().parse().unwrap();
            if term < TRIALS || within < term {
                witnessed = true;
            }
        }
        assert!(witnessed, "expected at least one bound-breaking cell");
    }

    #[test]
    fn heavy_loss_reduces_coverage_on_trees() {
        // On trees every drop is fatal to its whole subtree, so coverage
        // must fall. (On dense cyclic graphs the opposite happens: the
        // loss-sustained circulating waves eventually inform everyone —
        // the table shows hypercube/complete rows staying near 100%.)
        let t = table();
        for spec in specs() {
            let g = spec.build();
            if g.edge_count() != g.node_count() - 1 {
                continue;
            }
            let rows: Vec<_> = t.rows().iter().filter(|r| r[0] == spec.label()).collect();
            let mean_at = |rate: &str| -> f64 {
                rows.iter().find(|r| r[2] == rate).expect("rate row")[6]
                    .parse()
                    .unwrap()
            };
            assert!(
                mean_at("0.6") < mean_at("0.0"),
                "{}: tree coverage should drop under 60% loss",
                spec.label()
            );
        }
    }
}
