//! E11: amnesiac flooding vs the classic flag baseline — the comparison
//! the paper's introduction frames ("often flooding is implemented with a
//! flag … we are interested in a variant which does not").
//!
//! Measured per instance: rounds until silence and total messages. The
//! theory says AF uses exactly `m` messages on bipartite graphs — matching
//! classic flooding, which also delivers one message per edge there — and
//! exactly `2m` on non-bipartite graphs, where classic flooding stays below
//! `2m`. The price of forgetting is thus a ≤ 2x message/round penalty on
//! odd-cycle topologies; the payoff is **zero persistent state per node**
//! (classic flooding cannot drop its flag without losing termination, as
//! experiment E8 certifies).

use crate::spec::GraphSpec;
use crate::table::Table;
use af_core::{AmnesiacFlooding, ClassicFloodingProtocol};
use af_engine::SyncEngine;
use af_graph::{algo, Graph, NodeId};

/// The comparison grid.
#[must_use]
pub fn specs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::Path { n: 64 },
        GraphSpec::Cycle { n: 64 },
        GraphSpec::Cycle { n: 65 },
        GraphSpec::Grid { rows: 8, cols: 8 },
        GraphSpec::Hypercube { d: 6 },
        GraphSpec::CompleteBipartite { a: 8, b: 8 },
        GraphSpec::Complete { n: 32 },
        GraphSpec::Petersen,
        GraphSpec::Wheel { k: 16 },
        GraphSpec::Barbell { k: 8 },
        GraphSpec::PreferentialAttachment {
            n: 256,
            k: 2,
            seed: 3,
        },
        GraphSpec::GnpConnected {
            n: 128,
            p: 0.05,
            seed: 3,
        },
        GraphSpec::RandomTree { n: 128, seed: 3 },
    ]
}

/// Classic flooding measurements: (rounds, messages).
fn run_classic(g: &Graph, s: NodeId) -> (u32, u64) {
    let mut e = SyncEngine::new(g, ClassicFloodingProtocol, [s]);
    e.set_trace_enabled(false);
    let outcome = e.run(10_000);
    (
        super::must_terminate(outcome.termination_round()),
        e.total_messages(),
    )
}

/// Runs the E11 comparison.
#[must_use]
pub fn run() -> Table {
    let mut t = Table::new(
        "E11 — amnesiac flooding vs classic flag flooding (source = node 0)",
        [
            "graph",
            "bipartite",
            "m",
            "AF rounds",
            "classic rounds",
            "AF msgs",
            "classic msgs",
            "AF msgs = m or 2m",
            "state/node",
        ],
    );
    for spec in specs() {
        let g = spec.build();
        let bip = algo::is_bipartite(&g);
        let m = g.edge_count() as u64;
        let af = AmnesiacFlooding::single_source(&g, 0.into()).run();
        let af_rounds = super::must_terminate(af.termination_round());
        let (cl_rounds, cl_msgs) = run_classic(&g, 0.into());
        let expected = if bip { m } else { 2 * m };
        t.push_row([
            spec.label(),
            if bip { "yes" } else { "no" }.to_string(),
            m.to_string(),
            af_rounds.to_string(),
            cl_rounds.to_string(),
            af.total_messages().to_string(),
            cl_msgs.to_string(),
            if af.total_messages() == expected {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            "AF: 0 bits, classic: 1 bit".to_string(),
        ]);
    }
    t.push_note(
        "shape to reproduce: AF matches classic flooding exactly (m messages, \
         e(src) rounds) on bipartite graphs and pays a bounded ≤ 2x penalty \
         (2m messages, ≤ 2D+1 rounds) on non-bipartite ones — in exchange \
         for needing zero persistent state per node",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn af_message_count_is_exact_everywhere() {
        let t = run();
        for row in t.rows() {
            assert_eq!(row[7], "yes", "{}: AF messages off", row[0]);
        }
    }

    #[test]
    fn af_matches_classic_exactly_on_bipartite_rows() {
        // On bipartite graphs both protocols deliver exactly one message
        // per edge and go quiet after e(src) rounds: forgetting is free.
        let t = run();
        let mut bipartite_rows = 0;
        for row in t.rows() {
            if row[1] != "yes" {
                continue;
            }
            bipartite_rows += 1;
            let m: u64 = row[2].parse().unwrap();
            let af: u64 = row[5].parse().unwrap();
            let cl: u64 = row[6].parse().unwrap();
            assert_eq!(af, m, "{}", row[0]);
            assert_eq!(cl, m, "{}", row[0]);
            assert_eq!(row[3], row[4], "{}: rounds must match on bipartite", row[0]);
        }
        assert!(bipartite_rows >= 5);
    }

    #[test]
    fn forgetting_costs_at_most_2x_messages_on_non_bipartite_rows() {
        let t = run();
        let mut non_bipartite_rows = 0;
        for row in t.rows() {
            if row[1] != "no" {
                continue;
            }
            non_bipartite_rows += 1;
            let m: u64 = row[2].parse().unwrap();
            let af: u64 = row[5].parse().unwrap();
            let cl: u64 = row[6].parse().unwrap();
            assert_eq!(af, 2 * m, "{}", row[0]);
            assert!(
                cl <= af,
                "{}: classic {cl} should not exceed AF {af}",
                row[0]
            );
            assert!(af <= 2 * cl, "{}: AF {af} > 2x classic {cl}", row[0]);
        }
        assert!(non_bipartite_rows >= 4);
    }

    #[test]
    fn classic_message_count_is_near_two_m() {
        // Classic flooding: the initiator sends deg(v); every other node
        // forwards once to (deg - received) neighbours. Total is bounded
        // by 2m and reaches it only in edge cases; sanity-check the range.
        let t = run();
        for row in t.rows() {
            let m: u64 = row[2].parse().unwrap();
            let cl: u64 = row[6].parse().unwrap();
            assert!(cl <= 2 * m, "{}: classic {cl} > 2m = {}", row[0], 2 * m);
            assert!(cl >= m.min(1), "{}", row[0]);
        }
    }

    #[test]
    fn af_round_penalty_only_on_non_bipartite() {
        let t = run();
        for row in t.rows() {
            let af: u32 = row[3].parse().unwrap();
            let cl: u32 = row[4].parse().unwrap();
            if row[1] == "yes" {
                // Bipartite: AF floods in e(v) <= classic's quiet time.
                assert!(af <= cl, "{}: AF {af} > classic {cl} on bipartite", row[0]);
            } else {
                assert!(af <= 2 * cl + 1, "{}: AF {af} >> classic {cl}", row[0]);
            }
        }
    }
}
