//! Exhaustive verification of the paper's claims on **all** connected
//! graphs of small order — the strongest empirical analogue of the
//! theorems' ∀-quantifiers.
//!
//! For every connected labelled graph on `n ≤ 6` nodes (26 704 graphs at
//! `n = 6`) and every source, [`verify_all_connected`] checks:
//!
//! 1. **Theorem 3.1** — the flood terminates (within cap `2n + 2`);
//! 2. **Corollary 2.2 / Theorem 3.3** — termination ≤ `D` (bipartite) or
//!    `2D + 1` (non-bipartite);
//! 3. **Lemma 2.1** — bipartite termination equals the source
//!    eccentricity, with every node receiving exactly once at its BFS
//!    distance;
//! 4. the double-cover **oracle** predicts the exact receive schedule;
//! 5. nodes receive **at most twice**, with opposite parities;
//! 6. the proof's **`Re` is empty** (no even-duration round-set
//!    recurrences);
//! 7. **message complexity** is exactly `m` (bipartite) / `2m` (else).
//!
//! [`verify_bitlane`] extends the sweep to the bit-parallel engine: all
//! `n ≤ 64` sources of a graph packed as lanes of **one**
//! [`af_core::BitLaneFlooding`] word, every lane checked against the
//! oracle's exact receive schedule — so the exhaustive theorem coverage is
//! not a frontier-only privilege.

use af_core::{roundsets, theory, AmnesiacFlooding, BitLaneFlooding};
use af_graph::enumerate::connected_graphs;
use af_graph::{algo, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Outcome of an exhaustive verification pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExhaustiveReport {
    n: usize,
    graphs_checked: u64,
    runs_checked: u64,
    violations: Vec<String>,
    max_termination_round: u32,
}

impl ExhaustiveReport {
    /// Node count of the enumerated graphs.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of connected graphs enumerated.
    #[must_use]
    pub fn graphs_checked(&self) -> u64 {
        self.graphs_checked
    }

    /// Number of `(graph, source)` floods executed.
    #[must_use]
    pub fn runs_checked(&self) -> u64 {
        self.runs_checked
    }

    /// Human-readable descriptions of every claim violation (empty when
    /// the paper survives).
    #[must_use]
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Returns `true` if every claim held on every run.
    #[must_use]
    pub fn all_claims_hold(&self) -> bool {
        self.violations.is_empty()
    }

    /// The largest termination round observed across all runs.
    #[must_use]
    pub fn max_termination_round(&self) -> u32 {
        self.max_termination_round
    }
}

/// Checks one `(graph, source)` flood against every claim; returns a list
/// of violation descriptions (normally empty).
#[must_use]
pub fn verify_one(graph: &Graph, source: NodeId) -> Vec<String> {
    let mut violations = Vec::new();
    let run = AmnesiacFlooding::single_source(graph, source).run();

    // (1) Theorem 3.1.
    let Some(t) = run.termination_round() else {
        violations.push(format!(
            "{graph} from {source}: did not terminate within 2n+2"
        ));
        return violations;
    };

    // (2) Corollary 2.2 / Theorem 3.3.
    // af-audit: allow(no-unwrap-in-lib): the enumerator only yields connected graphs
    let bound = theory::upper_bound(graph).expect("enumerated graphs are connected");
    if t > bound {
        violations.push(format!(
            "{graph} from {source}: T = {t} exceeds bound {bound}"
        ));
    }

    let bipartite = algo::is_bipartite(graph);
    if bipartite {
        // (3) Lemma 2.1.
        // af-audit: allow(no-unwrap-in-lib): the enumerator only yields connected graphs
        let ecc = algo::eccentricity(graph, source).expect("connected");
        if t != ecc {
            violations.push(format!(
                "{graph} from {source}: bipartite T = {t} != e = {ecc}"
            ));
        }
        let bfs = algo::bfs(graph, source);
        for v in graph.nodes() {
            let want: &[u32] = if v == source {
                &[]
            } else {
                // af-audit: allow(no-unwrap-in-lib): BFS on a connected graph reaches v
                core::slice::from_ref(bfs.distances()[v.index()].as_ref().expect("connected"))
            };
            if run.receive_rounds(v) != want {
                violations.push(format!(
                    "{graph} from {source}: node {v} received at {:?}, BFS says {want:?}",
                    run.receive_rounds(v)
                ));
            }
        }
    }

    // (4) Oracle.
    let pred = theory::predict(graph, [source]);
    if pred.termination_round() != t {
        violations.push(format!(
            "{graph} from {source}: oracle T = {} != measured {t}",
            pred.termination_round()
        ));
    }
    for v in graph.nodes() {
        if pred.receive_rounds(v) != run.receive_rounds(v) {
            violations.push(format!(
                "{graph} from {source}: node {v} oracle {:?} != measured {:?}",
                pred.receive_rounds(v),
                run.receive_rounds(v)
            ));
        }
    }

    // (5) Receive at most twice, opposite parity.
    for v in graph.nodes() {
        let rounds = run.receive_rounds(v);
        if rounds.len() > 2 {
            violations.push(format!(
                "{graph} from {source}: node {v} received {} times",
                rounds.len()
            ));
        }
        if let [a, b] = *rounds {
            if a % 2 == b % 2 {
                violations.push(format!(
                    "{graph} from {source}: node {v} received twice with equal parity ({a}, {b})"
                ));
            }
        }
    }

    // (6) Re empty.
    if !roundsets::analyze(&run).even_sequences_empty() {
        violations.push(format!("{graph} from {source}: Re is non-empty"));
    }

    // (7) Message complexity.
    let m = graph.edge_count() as u64;
    let want = if bipartite { m } else { 2 * m };
    if run.total_messages() != want {
        violations.push(format!(
            "{graph} from {source}: {} messages, expected {want}",
            run.total_messages()
        ));
    }

    violations
}

/// Checks the bit-parallel engine on one graph: every source `s` becomes
/// bit lane `s` of a **single** [`BitLaneFlooding`] word (so the graph
/// must have at most 64 nodes), and each lane's termination round, receive
/// rounds, and message count are compared against the exact-time oracle
/// for that source. Returns violation descriptions (normally empty).
///
/// # Panics
///
/// Panics if the graph has more than 64 nodes (the lane width).
#[must_use]
pub fn verify_bitlane(graph: &Graph) -> Vec<String> {
    let mut violations = Vec::new();
    // af-audit: allow(no-lossy-id-cast): bitlane graphs have at most 64 nodes
    let cap = 2 * graph.node_count() as u32 + 2;
    let mut sim = BitLaneFlooding::new(graph, graph.nodes().map(|s| [s]));
    let outcome = sim.run(cap);
    if !outcome.is_terminated() {
        violations.push(format!("{graph}: bitlane batch did not terminate"));
        return violations;
    }
    for (lane, source) in graph.nodes().enumerate() {
        let pred = theory::predict(graph, [source]);
        let t = sim.lane_outcome(lane).termination_round();
        if t != Some(pred.termination_round()) {
            violations.push(format!(
                "{graph} from {source}: bitlane T = {t:?} != oracle {}",
                pred.termination_round()
            ));
        }
        if sim.lane_messages(lane) != pred.total_messages() {
            violations.push(format!(
                "{graph} from {source}: bitlane {} messages != oracle {}",
                sim.lane_messages(lane),
                pred.total_messages()
            ));
        }
        for v in graph.nodes() {
            if sim.lane_receipts(v, lane) != pred.receive_rounds(v) {
                violations.push(format!(
                    "{graph} from {source}: node {v} bitlane {:?} != oracle {:?}",
                    sim.lane_receipts(v, lane),
                    pred.receive_rounds(v)
                ));
            }
        }
    }
    violations
}

/// Verifies every claim on every connected labelled graph with `n` nodes,
/// from every source.
///
/// # Panics
///
/// Panics if `n` is 0 or exceeds the enumeration limit.
#[must_use]
pub fn verify_all_connected(n: usize) -> ExhaustiveReport {
    let mut graphs_checked = 0u64;
    let mut runs_checked = 0u64;
    let mut violations = Vec::new();
    let mut max_t = 0u32;

    for g in connected_graphs(n) {
        graphs_checked += 1;
        for source in g.nodes() {
            runs_checked += 1;
            let vs = verify_one(&g, source);
            if !vs.is_empty() {
                violations.extend(vs);
            }
            if let Some(t) = AmnesiacFlooding::single_source(&g, source)
                .run()
                .termination_round()
            {
                max_t = max_t.max(t);
            }
        }
    }

    ExhaustiveReport {
        n,
        graphs_checked,
        runs_checked,
        violations,
        max_termination_round: max_t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_graphs_up_to_five_nodes_satisfy_every_claim() {
        for n in 1..=5 {
            let report = verify_all_connected(n);
            assert!(
                report.all_claims_hold(),
                "n = {n}: {:?}",
                &report.violations()[..report.violations().len().min(5)]
            );
            assert_eq!(
                Some(report.graphs_checked()),
                af_graph::enumerate::connected_graph_count(n)
            );
            assert_eq!(report.runs_checked(), report.graphs_checked() * n as u64);
        }
    }

    #[test]
    fn verify_one_flags_nothing_on_good_instances() {
        let g = af_graph::generators::petersen();
        for v in g.nodes() {
            assert!(verify_one(&g, v).is_empty());
        }
    }

    #[test]
    fn verify_bitlane_flags_nothing_on_good_instances() {
        for g in [
            af_graph::generators::petersen(),
            af_graph::generators::grid(5, 6),
            af_graph::generators::cycle(9),
            af_graph::generators::complete(7),
        ] {
            assert!(verify_bitlane(&g).is_empty(), "{g}");
        }
        // A 64-node graph fills the word exactly.
        let g = af_graph::generators::grid(8, 8);
        assert!(verify_bitlane(&g).is_empty());
    }

    #[test]
    fn max_termination_is_positive_for_n_at_least_two() {
        let report = verify_all_connected(3);
        assert!(report.max_termination_round() >= 3); // the triangle needs 3
        assert_eq!(report.n(), 3);
    }
}
