//! Trace-replay verification: re-derive a flood's record from its NDJSON
//! trace and assert it equal to the engine's own [`FloodingRun`].
//!
//! The observability layer ([`af_core::obs`]) makes each engine emit one
//! JSON line per round, carrying the receiver set — which is exactly the
//! paper's round-set `R_i`. That makes a trace *replayable*: the
//! round-sets, per-node receive rounds, per-round message counts, and the
//! termination round of the flood are all derivable from the trace alone,
//! with no engine in the loop. This module does that derivation
//! ([`parse_trace`], [`ParsedTrace::round_sets`],
//! [`ParsedTrace::receive_rounds`]) and checks it against the live record
//! ([`verify`]) — the cross-check behind `flood --trace-out`'s "replay
//! verified" line and the CI obs-smoke job.
//!
//! Parsing is schema-checked: every line must carry the supported version
//! ([`af_core::obs::TRACE_SCHEMA_VERSION`]), the first line must be a
//! `start` event, round numbers must increase by exactly one, each round's
//! `frontier` must equal its receiver count, and the trace must close with
//! an `end` event. Unknown JSON fields are ignored, per the schema's
//! compatibility rule.

use af_core::FloodingRun;
use af_graph::NodeId;
use serde::Value;
use std::fmt;

/// A malformed or inconsistent trace: where it went wrong and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based trace line the error was detected at (0 when the error is
    /// about the trace as a whole, e.g. a record mismatch).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl TraceError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TraceError {
            line,
            message: message.into(),
        }
    }

    fn whole(message: impl Into<String>) -> Self {
        TraceError::at(0, message)
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "trace line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TraceError {}

/// One `round` event from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRound {
    /// 1-based round number.
    pub round: u32,
    /// Messages delivered this round.
    pub delivered: u64,
    /// Messages sent onward for the next round.
    pub sent: u64,
    /// In-flight messages lost to churn at this round's boundary.
    pub lost: u64,
    /// The receiver set — the paper's round-set `R_round` (sorted here,
    /// whatever order the engine emitted).
    pub receivers: Vec<NodeId>,
    /// Engine-specific note (`"dense"`, `"sparse"`, `"exchange"`,
    /// `"churn"`), if any.
    pub note: Option<String>,
}

/// One `end` event from a trace (one per engine `run` call — a capped
/// flood resumed by a second call reports twice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEnd {
    /// Whether the flood had terminated when the `run` call returned.
    pub terminated: bool,
    /// Rounds executed in total at that point.
    pub rounds: u32,
    /// Messages delivered in total at that point.
    pub messages: u64,
}

/// A fully parsed and schema-checked NDJSON flood trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Engine family that produced the trace.
    pub engine: String,
    /// Node count of the flooded graph at seeding time.
    pub nodes: usize,
    /// The seeded sources, sorted and deduplicated.
    pub sources: Vec<NodeId>,
    /// Every executed round, in order (round `i` at index `i - 1`).
    pub rounds: Vec<TraceRound>,
    /// Every `end` event, in order; the last one describes the final
    /// state.
    pub ends: Vec<TraceEnd>,
}

impl ParsedTrace {
    /// The final `end` event (the trace grammar guarantees at least one).
    #[must_use]
    pub fn end(&self) -> TraceEnd {
        // af-audit: allow(no-unwrap-in-lib): parse_trace rejects traces with no
        // end event, so every constructed ParsedTrace has one
        *self.ends.last().expect("parse_trace requires an end event")
    }

    /// Re-derives the paper's round-sets from the trace alone: `R_0` is
    /// the source set, `R_i` the sorted receiver set of round `i`.
    #[must_use]
    pub fn round_sets(&self) -> Vec<Vec<NodeId>> {
        let mut sets = Vec::with_capacity(self.rounds.len() + 1);
        sets.push(self.sources.clone());
        for r in &self.rounds {
            sets.push(r.receivers.clone());
        }
        sets
    }

    /// Re-derives the per-node receive-round table from the trace alone.
    /// The table covers every node id the trace mentions (join churn can
    /// grow the node space past the seeding-time count).
    #[must_use]
    pub fn receive_rounds(&self) -> Vec<Vec<u32>> {
        let max_id = self
            .rounds
            .iter()
            .flat_map(|r| r.receivers.iter())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0);
        let mut table = vec![Vec::new(); self.nodes.max(max_id)];
        for r in &self.rounds {
            for &v in &r.receivers {
                table[v.index()].push(r.round);
            }
        }
        table
    }

    /// Per-round delivered-message counts (index 0 = round 1), the
    /// trace-side mirror of [`FloodingRun::messages_per_round`].
    #[must_use]
    pub fn messages_per_round(&self) -> Vec<u64> {
        self.rounds.iter().map(|r| r.delivered).collect()
    }
}

/// Looks up an object field by key (the shim's `Value` keeps objects as
/// ordered key-value lists).
fn get<'v>(obj: &'v Value, key: &str) -> Option<&'v Value> {
    obj.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// The value as a non-negative integer, if it is one.
fn as_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(x) => Some(x),
        _ => None,
    }
}

/// The value as a string, if it is one.
fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

/// Reads a required integer field as `u64`.
fn field_u64(obj: &Value, key: &str, line: usize) -> Result<u64, TraceError> {
    get(obj, key)
        .and_then(as_u64)
        .ok_or_else(|| TraceError::at(line, format!("missing or non-integer field '{key}'")))
}

/// Like [`field_u64`], but rejects values a round counter cannot hold
/// instead of truncating them.
fn field_u32(obj: &Value, key: &str, line: usize) -> Result<u32, TraceError> {
    let raw = field_u64(obj, key, line)?;
    u32::try_from(raw)
        .map_err(|_| TraceError::at(line, format!("field '{key}' value {raw} exceeds u32")))
}

/// Reads a required node-id array field.
fn field_nodes(obj: &Value, key: &str, line: usize) -> Result<Vec<NodeId>, TraceError> {
    let arr = get(obj, key)
        .and_then(Value::as_seq)
        .ok_or_else(|| TraceError::at(line, format!("missing or non-array field '{key}'")))?;
    arr.iter()
        .map(|v| {
            as_u64(v)
                .map(|id| NodeId::new(id as usize))
                .ok_or_else(|| TraceError::at(line, format!("non-integer node id in '{key}'")))
        })
        .collect()
}

/// Parses and schema-checks one NDJSON flood trace.
///
/// # Errors
///
/// Returns a [`TraceError`] naming the offending line if the trace is not
/// valid JSON-per-line, carries an unsupported schema version, opens with
/// anything but a `start` event, has non-contiguous round numbers, reports
/// a `frontier` unequal to its receiver count, or does not close with an
/// `end` event.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, TraceError> {
    let mut engine = None;
    let mut nodes = 0usize;
    let mut sources: Vec<NodeId> = Vec::new();
    let mut rounds: Vec<TraceRound> = Vec::new();
    let mut ends: Vec<TraceEnd> = Vec::new();
    let mut last_event_was_end = false;

    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj: Value = serde_json::from_str(raw)
            .map_err(|e| TraceError::at(line, format!("invalid JSON: {e}")))?;
        let v = field_u64(&obj, "v", line)?;
        if v != u64::from(af_core::obs::TRACE_SCHEMA_VERSION) {
            return Err(TraceError::at(
                line,
                format!(
                    "unsupported schema version {v} (expected {})",
                    af_core::obs::TRACE_SCHEMA_VERSION
                ),
            ));
        }
        let event = get(&obj, "event")
            .and_then(as_str)
            .ok_or_else(|| TraceError::at(line, "missing 'event' field"))?;
        if engine.is_none() && event != "start" {
            return Err(TraceError::at(
                line,
                format!("trace must open with a 'start' event, found '{event}'"),
            ));
        }
        last_event_was_end = false;
        match event {
            "start" => {
                if engine.is_some() {
                    return Err(TraceError::at(line, "second 'start' event in one trace"));
                }
                engine = Some(
                    get(&obj, "engine")
                        .and_then(as_str)
                        .ok_or_else(|| TraceError::at(line, "missing 'engine' field"))?
                        .to_owned(),
                );
                nodes = field_u64(&obj, "nodes", line)? as usize;
                sources = field_nodes(&obj, "sources", line)?;
                sources.sort_unstable();
                sources.dedup();
            }
            "round" => {
                let round = field_u32(&obj, "round", line)?;
                let expected = u32::try_from(rounds.len() + 1)
                    .map_err(|_| TraceError::at(line, "too many rounds"))?;
                if round != expected {
                    return Err(TraceError::at(
                        line,
                        format!("round {round} out of order (expected {expected})"),
                    ));
                }
                let mut receivers = field_nodes(&obj, "receivers", line)?;
                let frontier = field_u64(&obj, "frontier", line)? as usize;
                if frontier != receivers.len() {
                    return Err(TraceError::at(
                        line,
                        format!(
                            "frontier {frontier} disagrees with {} receivers",
                            receivers.len()
                        ),
                    ));
                }
                receivers.sort_unstable();
                rounds.push(TraceRound {
                    round,
                    delivered: field_u64(&obj, "delivered", line)?,
                    sent: field_u64(&obj, "sent", line)?,
                    lost: field_u64(&obj, "lost", line)?,
                    receivers,
                    note: get(&obj, "note").and_then(as_str).map(str::to_owned),
                });
            }
            "end" => {
                ends.push(TraceEnd {
                    terminated: match get(&obj, "terminated") {
                        Some(&Value::Bool(b)) => b,
                        _ => return Err(TraceError::at(line, "missing 'terminated' field")),
                    },
                    rounds: field_u32(&obj, "rounds", line)?,
                    messages: field_u64(&obj, "messages", line)?,
                });
                last_event_was_end = true;
            }
            other => {
                return Err(TraceError::at(line, format!("unknown event '{other}'")));
            }
        }
    }

    let engine = engine.ok_or_else(|| TraceError::whole("empty trace (no 'start' event)"))?;
    if !last_event_was_end {
        return Err(TraceError::whole(
            "trace does not close with an 'end' event",
        ));
    }
    if let Some(end) = ends.last() {
        if end.rounds as usize != rounds.len() {
            return Err(TraceError::whole(format!(
                "final 'end' reports {} rounds but the trace carries {} round events",
                end.rounds,
                rounds.len()
            )));
        }
    }
    Ok(ParsedTrace {
        engine,
        nodes,
        sources,
        rounds,
        ends,
    })
}

/// One field's mismatch check, for uniform error text.
fn expect_eq<T: PartialEq + fmt::Debug>(what: &str, trace: T, run: T) -> Result<(), TraceError> {
    if trace == run {
        Ok(())
    } else {
        Err(TraceError::whole(format!(
            "replay mismatch in {what}: trace says {trace:?}, run says {run:?}"
        )))
    }
}

/// Asserts that replaying `trace` reproduces `run` exactly: same
/// round-sets, same per-node receive rounds, same per-round and total
/// message counts, same termination state and round.
///
/// The comparison normalises order only (trace receivers and sources are
/// sorted; a [`FloodingRun`]'s are already sorted) — any disagreement in
/// content is an error.
///
/// # Errors
///
/// Returns a [`TraceError`] describing the first field that disagrees.
pub fn verify(trace: &ParsedTrace, run: &FloodingRun) -> Result<(), TraceError> {
    let end = trace.end();
    expect_eq("terminated", end.terminated, run.terminated())?;
    expect_eq("rounds executed", end.rounds, run.rounds_executed())?;
    expect_eq("total messages", end.messages, run.total_messages())?;
    expect_eq("sources", &trace.sources[..], run.sources())?;
    expect_eq(
        "messages per round",
        &trace.messages_per_round()[..],
        run.messages_per_round(),
    )?;

    let trace_sets = trace.round_sets();
    let run_sets = run.round_sets();
    expect_eq("round-set count", trace_sets.len(), run_sets.len())?;
    for (i, (t, r)) in trace_sets.iter().zip(run_sets).enumerate() {
        expect_eq(&format!("round-set R_{i}"), &t[..], &r[..])?;
    }

    let trace_table = trace.receive_rounds();
    expect_eq("node count", trace_table.len().max(trace.nodes), {
        // A trace of a flood that never reaches some tail of the node
        // space still covers it with empty rows; compare against the
        // run's full table size.
        run.node_count()
    })?;
    for (i, rounds) in trace_table.iter().enumerate() {
        expect_eq(
            &format!("receive rounds of node {i}"),
            &rounds[..],
            run.receive_rounds(NodeId::new(i)),
        )?;
    }
    // Nodes past the trace's max id received nothing — the run must agree.
    for i in trace_table.len()..run.node_count() {
        expect_eq(
            &format!("receive rounds of node {i}"),
            &[][..],
            run.receive_rounds(NodeId::new(i)),
        )?;
    }
    Ok(())
}

/// Parses `text` and [`verify`]s it against `run` in one call, returning
/// the parsed trace for further inspection.
///
/// # Errors
///
/// Returns the first parse or replay error.
pub fn check_trace(text: &str, run: &FloodingRun) -> Result<ParsedTrace, TraceError> {
    let trace = parse_trace(text)?;
    verify(&trace, run)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_core::obs::NdjsonTraceWriter;
    use af_core::AmnesiacFlooding;
    use af_graph::generators;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Floods `g` with a trace attached and returns (trace text, run).
    fn traced_flood(g: &af_graph::Graph, sources: &[NodeId]) -> (String, FloodingRun) {
        let writer = Rc::new(RefCell::new(NdjsonTraceWriter::new(Vec::new())));
        let run = AmnesiacFlooding::multi_source(g, sources.iter().copied())
            .with_probe(writer.clone())
            .run();
        let text = String::from_utf8(writer.borrow_mut().take_sink()).unwrap();
        (text, run)
    }

    #[test]
    fn roundtrip_on_cycle() {
        let g = generators::cycle(6);
        let (text, run) = traced_flood(&g, &[NodeId::new(0)]);
        let trace = check_trace(&text, &run).unwrap();
        assert_eq!(trace.engine, "frontier");
        assert_eq!(trace.nodes, 6);
        assert_eq!(trace.rounds.len(), 3);
        assert!(trace.end().terminated);
        assert_eq!(trace.round_sets(), run.round_sets());
    }

    #[test]
    fn tampered_receiver_is_caught() {
        let g = generators::cycle(6);
        let (text, run) = traced_flood(&g, &[NodeId::new(0)]);
        // Swap a receiver id in the round-2 line: replay must notice.
        let tampered = text.replacen("\"receivers\":[2,4]", "\"receivers\":[2,3]", 1);
        assert_ne!(text, tampered, "test must actually tamper");
        let trace = parse_trace(&tampered).unwrap();
        let err = verify(&trace, &run).unwrap_err();
        assert!(err.message.contains("replay mismatch"), "{err}");
    }

    #[test]
    fn out_of_order_rounds_are_rejected() {
        let g = generators::cycle(6);
        let (text, _) = traced_flood(&g, &[NodeId::new(0)]);
        let reordered: Vec<&str> = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.swap(1, 2); // two round lines out of order
            lines
        };
        let err = parse_trace(&reordered.join("\n")).unwrap_err();
        assert!(err.message.contains("out of order"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let err = parse_trace("{\"v\":99,\"event\":\"start\"}").unwrap_err();
        assert!(err.message.contains("unsupported schema version"), "{err}");
    }

    #[test]
    fn missing_end_is_rejected() {
        let g = generators::cycle(6);
        let (text, _) = traced_flood(&g, &[NodeId::new(0)]);
        let truncated: String = {
            let lines: Vec<&str> = text.lines().collect();
            lines[..lines.len() - 1].join("\n")
        };
        let err = parse_trace(&truncated).unwrap_err();
        assert!(err.message.contains("'end' event"), "{err}");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let g = generators::cycle(6);
        let (text, run) = traced_flood(&g, &[NodeId::new(0)]);
        // Forward compatibility: inject an extra field on every line.
        let extended: String = text
            .lines()
            .map(|l| l.replacen('{', "{\"future_field\":\"x\",", 1))
            .collect::<Vec<_>>()
            .join("\n");
        check_trace(&extended, &run).unwrap();
    }

    #[test]
    fn duplicate_sources_normalise() {
        let g = generators::petersen();
        let (text, run) = traced_flood(&g, &[NodeId::new(3), NodeId::new(3), NodeId::new(1)]);
        check_trace(&text, &run).unwrap();
    }
}
