//! A small parallel sweep runner for experiment grids.
//!
//! Experiments are embarrassingly parallel over `(graph, source)` pairs;
//! [`run_parallel`] fans work out over a crossbeam scope with a shared
//! work queue and returns results in input order.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, using up to `threads` worker threads, and
/// returns the results in input order.
///
/// With `threads <= 1` (or a single item) the work runs inline on the
/// calling thread — handy under a debugger and in tests.
///
/// # Panics
///
/// Propagates panics from `f` (the whole sweep aborts).
pub fn run_parallel<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = threads.min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let items_ref = &items;
    let f_ref = &f;
    let next_ref = &next;
    let slots_ref = &slots;

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f_ref(&items_ref[i]);
                *slots_ref[i].lock() = Some(r);
            });
        }
    })
    // af-audit: allow(no-unwrap-in-lib): the vendored scope only errors when a
    // scoped worker panicked; re-raising beats returning partial results
    .expect("sweep worker panicked");

    slots
        .into_iter()
        // af-audit: allow(no-unwrap-in-lib): the counter hands every index to
        // exactly one worker, and workers fill their slot before exiting
        .map(|slot| slot.into_inner().expect("every slot was filled"))
        .collect()
}

/// A sensible default worker count: the available parallelism, capped at 8
/// (experiments are memory-light; more threads rarely help).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_parallel(items, 4, |&x| x * x);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn single_threaded_path() {
        let out = run_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = run_parallel(vec![5u32, 6], 16, |&x| x);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn eight_threads_is_bit_identical_to_sequential() {
        // Determinism contract: for a pure per-item function, the parallel
        // sweep must return *exactly* what a sequential pass returns — same
        // values, same order — regardless of thread interleaving. Use a
        // real experiment grid: full flood records over (graph, source)
        // pairs from three random families.
        let mut items: Vec<(af_graph::Graph, af_graph::NodeId)> = Vec::new();
        for seed in 0..4 {
            for g in [
                af_graph::generators::sparse_connected(24, 10, seed),
                af_graph::generators::preferential_attachment(20, 2, seed),
                af_graph::generators::random_geometric(18, 0.35, seed),
            ] {
                for s in g.nodes() {
                    items.push((g.clone(), s));
                }
            }
        }
        assert!(items.len() > 200, "a real grid, not a toy");
        let flood = |(g, s): &(af_graph::Graph, af_graph::NodeId)| af_core::flood(g, *s);
        let sequential = run_parallel(items.clone(), 1, flood);
        let parallel = run_parallel(items, 8, flood);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_flooding_sweep_smoke() {
        // Realistic use: termination rounds across sources, in parallel.
        let g = af_graph::generators::cycle(9);
        let sources: Vec<af_graph::NodeId> = g.nodes().collect();
        let rounds = run_parallel(sources, 4, |&s| {
            af_core::flood(&g, s).termination_round().unwrap()
        });
        // C9 is vertex-transitive: same answer from every source.
        assert!(rounds.iter().all(|&r| r == rounds[0]));
        assert_eq!(rounds.len(), 9);
    }
}
