//! Experiment tables: the uniform output format every experiment produces,
//! with Markdown and CSV emitters (EXPERIMENTS.md is stitched from these).

use serde::{Deserialize, Serialize};

/// A titled table of strings with named columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new<T, H, S>(title: T, headers: H) -> Self
    where
        T: Into<String>,
        H: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row<R, S>(&mut self, row: R)
    where
        R: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Appends a free-text note rendered under the table.
    pub fn push_note<S: Into<String>>(&mut self, note: S) {
        self.notes.push(note.into());
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The notes.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders the table as GitHub-flavoured Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for note in &self.notes {
            out.push_str(&format!("\n*{note}*\n"));
        }
        out
    }

    /// Renders the table as CSV (headers first; fields quoted when they
    /// contain commas or quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0 — sample", ["graph", "T"]);
        t.push_row(["cycle(3)", "3"]);
        t.push_row(["path(4)", "2"]);
        t.push_note("termination rounds");
        t
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### E0 — sample"));
        assert!(md.contains("| graph | T |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| cycle(3) | 3 |"));
        assert!(md.contains("*termination rounds*"));
    }

    #[test]
    fn csv_shape_and_quoting() {
        let mut t = Table::new("q", ["a", "b"]);
        t.push_row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("t", ["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "E0 — sample");
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.notes().len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<Table>(&json).unwrap(), t);
    }
}
