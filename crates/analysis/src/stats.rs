//! Small statistics helpers for sweep summaries.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `u64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    min: u64,
    max: u64,
    mean: f64,
}

impl Summary {
    /// Summarizes an iterator of observations. Returns `None` for an empty
    /// sample.
    #[must_use]
    pub fn of<I: IntoIterator<Item = u64>>(samples: I) -> Option<Self> {
        let mut count = 0usize;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u128;
        for s in samples {
            count += 1;
            min = min.min(s);
            max = max.max(s);
            sum += u128::from(s);
        }
        if count == 0 {
            return None;
        }
        Some(Summary {
            count,
            min,
            max,
            mean: sum as f64 / count as f64,
        })
    }

    /// Sample size.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "min {} / mean {:.2} / max {} (n={})",
            self.min, self.mean, self.max, self.count
        )
    }
}

/// A pass/fail counter for ∀-style empirical claims ("all runs matched the
/// oracle").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimCheck {
    passed: u64,
    failed: u64,
}

impl ClaimCheck {
    /// A fresh counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.passed += 1;
        } else {
            self.failed += 1;
        }
    }

    /// Observations that satisfied the claim.
    #[must_use]
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Observations that violated the claim.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Returns `true` if every observation satisfied the claim (vacuously
    /// true for zero observations).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failed == 0
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.passed + self.failed
    }
}

impl core::fmt::Display for ClaimCheck {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.holds() {
            write!(f, "{}/{} ok", self.passed, self.total())
        } else {
            write!(f, "{} VIOLATIONS in {} checks", self.failed, self.total())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([3u64, 1, 2]).unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!(s.to_string().contains("mean 2.00"));
    }

    #[test]
    fn summary_of_empty_sample_is_none() {
        assert_eq!(Summary::of([]), None);
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::of([7u64]).unwrap();
        assert_eq!((s.min(), s.max(), s.count()), (7, 7, 1));
    }

    #[test]
    fn claim_check_counts() {
        let mut c = ClaimCheck::new();
        assert!(c.holds());
        c.record(true);
        c.record(true);
        assert!(c.holds());
        assert_eq!(c.to_string(), "2/2 ok");
        c.record(false);
        assert!(!c.holds());
        assert_eq!(c.passed(), 2);
        assert_eq!(c.failed(), 1);
        assert_eq!(c.total(), 3);
        assert!(c.to_string().contains("VIOLATIONS"));
    }
}
