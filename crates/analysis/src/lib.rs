//! # af-analysis
//!
//! Experiment harness for the reproduction of *"On Termination of a
//! Flooding Process"* (Hussak & Trehan, PODC 2019).
//!
//! * [`GraphSpec`] — serializable `(family, parameters, seed)` instance
//!   descriptions; every EXPERIMENTS.md row cites one;
//! * [`experiments`] — one module per paper artifact (E1–E17, see the
//!   module's experiment index), each producing [`Table`]s;
//! * [`exhaustive`] — verification of *every* paper claim on *every*
//!   connected graph with up to 6 nodes, from every source;
//! * [`Table`], [`Summary`], [`ClaimCheck`] — uniform reporting;
//! * [`sweep`] — a small parallel runner for experiment grids;
//! * [`mod@bench`] — the flooding throughput benchmark behind
//!   `BENCH_flooding.json`: the frontier engine vs the scan baseline vs
//!   the sharded multicore engine over graph families up to ~1e6 edges,
//!   flooding from deterministic source sets of any size;
//! * [`tracecheck`] — the NDJSON trace-replay checker: re-derives
//!   round-sets and receive rounds from an [`af_core::obs`] trace and
//!   asserts them equal to the engine's own record.
//!
//! # Examples
//!
//! ```
//! use af_analysis::experiments::figures;
//!
//! // Regenerate the paper's three worked examples (Figures 1–3).
//! let table = figures::run();
//! println!("{}", table.to_markdown());
//! assert_eq!(table.rows().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod exhaustive;
pub mod experiments;
pub mod report;
pub mod sweep;
pub mod tracecheck;

mod spec;
mod stats;
mod table;

pub use spec::GraphSpec;
pub use stats::{ClaimCheck, Summary};
pub use table::Table;
