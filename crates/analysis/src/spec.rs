//! Declarative graph specifications: a serializable `(family, parameters,
//! seed)` triple that pins an experiment instance down exactly.

use af_graph::{generators, Graph};
use serde::{Deserialize, Serialize};

/// A buildable, printable, serializable description of a graph instance.
///
/// Experiment tables cite specs instead of raw graphs so every row of
/// EXPERIMENTS.md can be regenerated bit-for-bit.
///
/// # Examples
///
/// ```
/// use af_analysis::GraphSpec;
///
/// let spec = GraphSpec::Cycle { n: 6 };
/// let g = spec.build();
/// assert_eq!(g.node_count(), 6);
/// assert_eq!(spec.label(), "cycle(6)");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GraphSpec {
    /// Path graph `P_n`.
    Path {
        /// Node count.
        n: usize,
    },
    /// Cycle `C_n` (`n >= 3`).
    Cycle {
        /// Node count.
        n: usize,
    },
    /// Complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Complete bipartite `K_{a,b}`.
    CompleteBipartite {
        /// Left part size.
        a: usize,
        /// Right part size.
        b: usize,
    },
    /// Star on `n` total nodes.
    Star {
        /// Node count (hub + leaves).
        n: usize,
    },
    /// Wheel with rim size `k`.
    Wheel {
        /// Rim size (`k >= 3`).
        k: usize,
    },
    /// Complete binary tree of height `h`.
    BinaryTree {
        /// Height.
        h: u32,
    },
    /// Grid graph.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Torus (`rows, cols >= 3`).
    Torus {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Hypercube `Q_d`.
    Hypercube {
        /// Dimension.
        d: u32,
    },
    /// The Petersen graph.
    Petersen,
    /// Two `K_k` cliques joined by a bridge.
    Barbell {
        /// Clique size (`k >= 2`).
        k: usize,
    },
    /// `K_k` with a path of `p` nodes attached.
    Lollipop {
        /// Clique size (`k >= 3`).
        k: usize,
        /// Path length.
        p: usize,
    },
    /// Caterpillar tree.
    Caterpillar {
        /// Spine length (`>= 1`).
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// Erdős–Rényi `G(n, p)` conditioned on connectivity.
    GnpConnected {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Uniform random labelled tree.
    RandomTree {
        /// Node count.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Random tree plus extra random edges (always connected).
    SparseConnected {
        /// Node count.
        n: usize,
        /// Extra non-tree edges.
        extra: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Random `d`-regular graph (configuration model).
    RandomRegular {
        /// Node count.
        n: usize,
        /// Degree.
        d: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Preferential attachment with `k` links per new node.
    PreferentialAttachment {
        /// Node count.
        n: usize,
        /// Links per new node.
        k: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Random geometric graph: `n` uniform points in the unit square,
    /// edges within Euclidean distance `radius`.
    RandomGeometric {
        /// Node count.
        n: usize,
        /// Connection radius.
        radius: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Watts–Strogatz small world: ring lattice of degree `k`, each edge
    /// rewired with probability `beta`.
    WattsStrogatz {
        /// Node count.
        n: usize,
        /// Lattice degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl GraphSpec {
    /// Builds the described graph.
    ///
    /// # Panics
    ///
    /// Panics if the parameters violate the underlying generator's
    /// requirements (documented on each generator).
    #[must_use]
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Complete { n } => generators::complete(n),
            GraphSpec::CompleteBipartite { a, b } => generators::complete_bipartite(a, b),
            GraphSpec::Star { n } => generators::star(n),
            GraphSpec::Wheel { k } => generators::wheel(k),
            GraphSpec::BinaryTree { h } => generators::binary_tree(h),
            GraphSpec::Grid { rows, cols } => generators::grid(rows, cols),
            GraphSpec::Torus { rows, cols } => generators::torus(rows, cols),
            GraphSpec::Hypercube { d } => generators::hypercube(d),
            GraphSpec::Petersen => generators::petersen(),
            GraphSpec::Barbell { k } => generators::barbell(k),
            GraphSpec::Lollipop { k, p } => generators::lollipop(k, p),
            GraphSpec::Caterpillar { spine, legs } => generators::caterpillar(spine, legs),
            GraphSpec::GnpConnected { n, p, seed } => generators::gnp_connected(n, p, seed),
            GraphSpec::RandomTree { n, seed } => generators::random_tree(n, seed),
            GraphSpec::SparseConnected { n, extra, seed } => {
                generators::sparse_connected(n, extra, seed)
            }
            GraphSpec::RandomRegular { n, d, seed } => generators::random_regular(n, d, seed),
            GraphSpec::PreferentialAttachment { n, k, seed } => {
                generators::preferential_attachment(n, k, seed)
            }
            GraphSpec::RandomGeometric { n, radius, seed } => {
                generators::random_geometric(n, radius, seed)
            }
            GraphSpec::WattsStrogatz { n, k, beta, seed } => {
                generators::watts_strogatz(n, k, beta, seed)
            }
        }
    }

    /// A compact, human-readable label for tables.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::Path { n } => format!("path({n})"),
            GraphSpec::Cycle { n } => format!("cycle({n})"),
            GraphSpec::Complete { n } => format!("complete({n})"),
            GraphSpec::CompleteBipartite { a, b } => format!("K({a},{b})"),
            GraphSpec::Star { n } => format!("star({n})"),
            GraphSpec::Wheel { k } => format!("wheel({k})"),
            GraphSpec::BinaryTree { h } => format!("btree(h={h})"),
            GraphSpec::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            GraphSpec::Torus { rows, cols } => format!("torus({rows}x{cols})"),
            GraphSpec::Hypercube { d } => format!("hypercube({d})"),
            GraphSpec::Petersen => "petersen".into(),
            GraphSpec::Barbell { k } => format!("barbell({k})"),
            GraphSpec::Lollipop { k, p } => format!("lollipop({k},{p})"),
            GraphSpec::Caterpillar { spine, legs } => format!("caterpillar({spine},{legs})"),
            GraphSpec::GnpConnected { n, p, seed } => format!("gnp({n},{p},s{seed})"),
            GraphSpec::RandomTree { n, seed } => format!("rtree({n},s{seed})"),
            GraphSpec::SparseConnected { n, extra, seed } => {
                format!("sparse({n},+{extra},s{seed})")
            }
            GraphSpec::RandomRegular { n, d, seed } => format!("regular({n},d{d},s{seed})"),
            GraphSpec::PreferentialAttachment { n, k, seed } => format!("pa({n},k{k},s{seed})"),
            GraphSpec::RandomGeometric { n, radius, seed } => {
                format!("rgg({n},r{radius:.4},s{seed})")
            }
            GraphSpec::WattsStrogatz { n, k, beta, seed } => {
                format!("ws({n},k{k},b{beta},s{seed})")
            }
        }
    }
}

impl core::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::algo;

    #[test]
    fn every_variant_builds_and_labels() {
        let specs = vec![
            GraphSpec::Path { n: 5 },
            GraphSpec::Cycle { n: 6 },
            GraphSpec::Complete { n: 4 },
            GraphSpec::CompleteBipartite { a: 2, b: 3 },
            GraphSpec::Star { n: 6 },
            GraphSpec::Wheel { k: 5 },
            GraphSpec::BinaryTree { h: 3 },
            GraphSpec::Grid { rows: 3, cols: 4 },
            GraphSpec::Torus { rows: 3, cols: 3 },
            GraphSpec::Hypercube { d: 3 },
            GraphSpec::Petersen,
            GraphSpec::Barbell { k: 3 },
            GraphSpec::Lollipop { k: 3, p: 2 },
            GraphSpec::Caterpillar { spine: 3, legs: 2 },
            GraphSpec::GnpConnected {
                n: 12,
                p: 0.3,
                seed: 1,
            },
            GraphSpec::RandomTree { n: 9, seed: 2 },
            GraphSpec::SparseConnected {
                n: 10,
                extra: 4,
                seed: 3,
            },
            GraphSpec::RandomRegular {
                n: 8,
                d: 3,
                seed: 4,
            },
            GraphSpec::PreferentialAttachment {
                n: 15,
                k: 2,
                seed: 5,
            },
            GraphSpec::RandomGeometric {
                n: 30,
                radius: 0.3,
                seed: 6,
            },
            GraphSpec::WattsStrogatz {
                n: 16,
                k: 4,
                beta: 0.1,
                seed: 7,
            },
        ];
        for spec in specs {
            let g = spec.build();
            assert!(g.node_count() >= 1, "{spec}");
            assert!(!spec.label().is_empty());
            assert_eq!(spec.to_string(), spec.label());
        }
    }

    #[test]
    fn specs_build_deterministically() {
        let spec = GraphSpec::SparseConnected {
            n: 20,
            extra: 10,
            seed: 99,
        };
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn random_specs_are_connected_where_promised() {
        for seed in 0..5 {
            assert!(algo::is_connected(
                &GraphSpec::GnpConnected {
                    n: 20,
                    p: 0.1,
                    seed
                }
                .build()
            ));
            assert!(algo::is_connected(
                &GraphSpec::RandomTree { n: 20, seed }.build()
            ));
        }
    }

    #[test]
    fn serde_roundtrip() {
        let spec = GraphSpec::GnpConnected {
            n: 10,
            p: 0.5,
            seed: 42,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: GraphSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
