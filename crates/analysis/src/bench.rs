//! The flooding throughput benchmark: the measured numbers behind
//! `BENCH_flooding.json`, the repository's recorded perf trajectory.
//!
//! The paper's bounds make one flood's intrinsic work `O(m)` (each arc
//! activates at most twice), so sustained throughput — delivered messages
//! (edge crossings) per second — is the honest scalar to track. The
//! benchmark floods a grid of graph families from roughly `1e4` up to
//! `1e6` edges with five engines:
//!
//! * `frontier` — [`af_core::FrontierFlooding`] via the batched
//!   [`af_core::FloodBatch`] runner (allocation reuse across sources);
//! * `fast` — the scan-all-arcs [`af_core::FastFlooding`] baseline;
//! * `sharded` — [`af_core::ShardedFlooding`]: the same floods split
//!   across `threads` partition shards (the `threads` and `partitioner`
//!   columns record the concurrency axis; the serial engines carry
//!   `threads = 1`, `partitioner = "none"`);
//! * `dynamic` — [`af_core::DynamicFlooding`]: the same floods executed
//!   while the topology churns per the case's churn spec (the `churn`
//!   column). With the default `"none"` spec the dynamic row must agree
//!   bit-for-bit with `frontier` — a permanent cross-check of the
//!   dynamic engine's zero-churn anchor; with a nonzero spec it measures
//!   the churn workload and is excluded from the agreement conjunction
//!   (its floods may legitimately cap out: termination is not a theorem
//!   on dynamic graphs — `floods_terminated` records how many finished);
//! * `bitlane` — [`af_core::BitLaneFlooding`]: the same floods packed up
//!   to 64 at a time into the bit lanes of one `u64` per arc and advanced
//!   together, one CSR pass per round (the `lanes` column records the
//!   packing width: `min(64, floods)` here, 1 on every other engine).
//!   Always measured and always in the agreement conjunction — per-lane
//!   records must be bit-identical to `frontier`'s.
//!
//! All engines flood the same deterministic **source sets** of every graph
//! — size-1 sets reproduce the classic single-source sweep, `--sources k`
//! floods from spread sets of `k` initiators — and must agree
//! flood-for-flood on termination rounds and message counts (recorded as
//! `engines_agree` / `all_engines_agree`; in smoke mode the
//! [`af_core::theory`] multi-source oracle is checked too). CI runs the
//! smoke configuration on every push and fails if the engines disagree or
//! the JSON stops parsing.
//!
//! Every row is measured through the shared [`af_core::api`] request
//! path — [`af_core::api::FloodRequest::execute`] — the same code the
//! CLI's `flood` command and the `af-serve` daemon run, so the recorded
//! numbers are by construction the numbers every other entry point
//! reports for the same request.
//!
//! # `BENCH_flooding.json` schema (version 6)
//!
//! ```json
//! {
//!   "schema_version": 6,
//!   "benchmark": "flooding_throughput",
//!   "mode": "full" | "smoke",
//!   "all_engines_agree": true,
//!   "cases": [
//!     {
//!       "family": "grid",
//!       "spec": { "Grid": { "rows": 708, "cols": 708 } },
//!       "nodes": 501264, "edges": 1001112,
//!       "source_sets": [[0], [7958], ...],
//!       "churn": "none",
//!       "engines_agree": true,
//!       "engines": [
//!         { "engine": "frontier", "engine_spec": "frontier",
//!           "threads": 1, "threads_requested": 1,
//!           "partitioner": "none", "sources": 1, "churn": "none",
//!           "lanes": 1, "rounds_per_source": [1414, ...],
//!           "floods_terminated": 64, "total_messages": 64071168,
//!           "wall_ms": 1234.5, "edges_per_sec": 51900000.0 },
//!         { "engine": "fast", "engine_spec": "fast", ... },
//!         { "engine": "sharded", "engine_spec": "sharded:4:bfs",
//!           "threads": 4, "threads_requested": 4,
//!           "partitioner": "bfs", ... },
//!         { "engine": "dynamic", "engine_spec": "dynamic:none",
//!           "churn": "none", ... },
//!         { "engine": "bitlane", "engine_spec": "bitlane",
//!           "lanes": 64, ... }
//!       ]
//!     }, ...
//!   ]
//! }
//! ```
//!
//! Field names and nesting are stable; extending the file means adding
//! fields (or bumping `schema_version`), never renaming. Version 2 added
//! the required `threads` / `partitioner` fields together with the sharded
//! engine. Version 3 generalized the measured floods from single sources
//! to source sets: the per-case `sources` list became `source_sets`
//! (one inner list per measured flood), and every engine row gained
//! `sources` (the size of each flood's source set) and
//! `threads_requested` (the raw `--threads` request, so a row whose
//! `threads` was clamped to `min(n, MAX_SHARDS)` records both what was
//! asked and what actually ran). Version 4 added the dynamic-graph
//! engine: the per-case `churn` spec (`"none"` or `kind:rate_pm:seed`),
//! the same field on every engine row (always `"none"` on the static
//! engines), the `dynamic` engine row itself, and `floods_terminated`
//! (meaningful on the dynamic row, where churned floods may cap out;
//! always the flood count on static rows). Version 5 added the bit-parallel
//! engine: the `bitlane` row and the required per-engine `lanes` field
//! (how many floods advanced per simulator pass: `min(64, floods)` on the
//! bitlane row, 1 everywhere else); full mode now measures 64 floods per
//! case so the bitlane row exercises a complete 64-lane word. Version 6
//! routed every row through the shared [`af_core::api`] request path and
//! added the required `engine_spec` field: the canonical engine string
//! (the [`FloodEngine`] `Display`/`FromStr` round-trip) that reproduces
//! the row verbatim via the CLI's `--engine` flag or the daemon's wire
//! protocol — it records the *request* (`sharded:2000:bfs` even when the
//! clamp fired; the `threads` column still records what ran). Older files
//! do not deserialize as [`CaseResult`]/[`EngineStats`], hence the bump
//! rather than a silent same-version shape change.

use crate::spec::GraphSpec;
use af_core::api::FloodRequest;
use af_core::bitlane::LANES;
use af_core::{theory, FloodEngine};
use af_graph::dynamic::ChurnSpec;
use af_graph::{Graph, NodeId, PartitionStrategy};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version stamp written into every report. Version 6 = version 5 with
/// every engine row measured through [`af_core::api::FloodRequest`] and
/// stamped with its canonical `engine_spec` string.
pub const SCHEMA_VERSION: u32 = 6;

/// The `partitioner` value recorded for engines that do not partition.
pub const NO_PARTITIONER: &str = "none";

/// The `churn` value recorded for the static engines (and for dynamic
/// rows measured without churn).
pub const NO_CHURN: &str = "none";

/// One engine's aggregate measurement over a case's source sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Engine name: `"frontier"`, `"fast"`, `"sharded"`, `"dynamic"`, or
    /// `"bitlane"`.
    pub engine: String,
    /// The canonical engine string that reproduces this row through any
    /// entry point (`--engine`, the wire protocol, [`FloodRequest`]):
    /// the [`FloodEngine`] `Display` form, e.g. `"sharded:4:bfs"` or
    /// `"dynamic:mix:100:7"`. Records the *request* — an oversharded
    /// `"sharded:2000:bfs"` row keeps that spec while `threads` records
    /// the clamped count that actually ran.
    pub engine_spec: String,
    /// Worker threads the engine actually used (1 for the serial engines;
    /// the sharded engine's request is clamped into
    /// `1 ..= min(n, MAX_SHARDS)` — see `threads_requested`).
    pub threads: usize,
    /// The raw thread/shard request before clamping (equals `threads`
    /// unless the clamp fired; 1 for the serial engines).
    pub threads_requested: usize,
    /// Partition strategy name, or `"none"` for unpartitioned engines.
    pub partitioner: String,
    /// Size of each measured flood's source set (1 = the classic
    /// single-source sweep).
    pub sources: usize,
    /// The churn workload this row measured: `"none"` for the static
    /// engines, the case's churn spec for the `dynamic` row.
    pub churn: String,
    /// Floods advanced per simulator pass: `min(64, floods)` on the
    /// bit-parallel `bitlane` row, 1 on every other engine.
    pub lanes: usize,
    /// Termination round of each measured flood, in source-set order.
    /// For a churned flood that capped out (termination is not a theorem
    /// on dynamic graphs) this records the executed rounds — see
    /// `floods_terminated`.
    pub rounds_per_source: Vec<u32>,
    /// How many of the measured floods actually terminated (always the
    /// flood count on static rows; on dynamic rows churn may prevent
    /// termination within the cap).
    pub floods_terminated: usize,
    /// Messages delivered over all measured floods.
    pub total_messages: u64,
    /// Wall-clock time for all measured floods, in milliseconds.
    pub wall_ms: f64,
    /// Throughput: delivered messages (= edge crossings) per second.
    pub edges_per_sec: f64,
}

impl EngineStats {
    /// A short human label: the engine name, annotated with the thread
    /// count and partitioner when concurrency is in play, with the churn
    /// spec when churn is, or with the lane width when bit-packing is.
    #[must_use]
    pub fn label(&self) -> String {
        if self.threads > 1 {
            format!("{}x{}({})", self.engine, self.threads, self.partitioner)
        } else if self.churn != NO_CHURN {
            format!("{}({})", self.engine, self.churn)
        } else if self.lanes > 1 {
            format!("{}x{}lanes", self.engine, self.lanes)
        } else {
            self.engine.clone()
        }
    }
}

/// One `(family, size)` case: the graph, its source sample, and every
/// engine's measurement on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Family label (shared across the family's sizes).
    pub family: String,
    /// The exact generator instance, rebuildable bit-for-bit.
    pub spec: GraphSpec,
    /// Node count of the built graph.
    pub nodes: usize,
    /// Edge count of the built graph.
    pub edges: usize,
    /// The measured source sets, one inner list (sorted node indices) per
    /// flood. Size-1 sets are the classic single-source sweep.
    pub source_sets: Vec<Vec<usize>>,
    /// The case's churn spec (`"none"` or `kind:rate_pm:seed`) — what the
    /// `dynamic` engine row floods under.
    pub churn: String,
    /// Whether all comparable engines agreed flood-for-flood on rounds
    /// and messages (the `dynamic` row participates only when `churn` is
    /// `"none"`, where it must match `frontier` exactly).
    pub engines_agree: bool,
    /// Per-engine measurements, `frontier` first.
    pub engines: Vec<EngineStats>,
}

/// A full benchmark run, serialized as `BENCH_flooding.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Schema version of this file ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Always `"flooding_throughput"`.
    pub benchmark: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Conjunction of every case's `engines_agree`.
    pub all_engines_agree: bool,
    /// All measured cases.
    pub cases: Vec<CaseResult>,
}

impl ThroughputReport {
    /// Serializes the report to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the report is plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        // af-audit: allow(no-unwrap-in-lib): plain data, no fallible Serialize impls
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// A one-line-per-case human summary (for terminals and CI logs).
    #[must_use]
    pub fn to_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let set_size = self
            .cases
            .first()
            .and_then(|c| c.engines.first())
            .map_or(1, |e| e.sources);
        let _ = writeln!(
            out,
            "flooding throughput ({} mode, |S| = {}) — {} cases, engines agree: {}",
            self.mode,
            set_size,
            self.cases.len(),
            self.all_engines_agree
        );
        for case in &self.cases {
            let _ = write!(
                out,
                "  {:<28} n={:<8} m={:<8}",
                case.spec.label(),
                case.nodes,
                case.edges
            );
            for e in &case.engines {
                let _ = write!(
                    out,
                    "  {}: {:>8.1}ms {:>12.0} edges/s",
                    e.label(),
                    e.wall_ms,
                    e.edges_per_sec
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The benchmark grid: `(family, specs in increasing size)`.
///
/// Full mode targets ~1e4, ~1e5 and ~1e6 edges per family; smoke mode is a
/// single ~2e3-edge instance per family, small enough for CI.
#[must_use]
pub fn cases(smoke: bool) -> Vec<(&'static str, Vec<GraphSpec>)> {
    // Radius giving expected average degree ~10 in the unit square:
    // deg ≈ n·π·r², so r = sqrt(10 / (π n)).
    let rgg_radius = |n: usize| (10.0 / (core::f64::consts::PI * n as f64)).sqrt();
    if smoke {
        return vec![
            (
                "sparse-random",
                vec![GraphSpec::SparseConnected {
                    n: 1_000,
                    extra: 1_000,
                    seed: 1,
                }],
            ),
            (
                "pref-attach",
                vec![GraphSpec::PreferentialAttachment {
                    n: 500,
                    k: 4,
                    seed: 2,
                }],
            ),
            (
                "geometric",
                vec![GraphSpec::RandomGeometric {
                    n: 400,
                    radius: rgg_radius(400),
                    seed: 3,
                }],
            ),
            (
                "small-world",
                vec![GraphSpec::WattsStrogatz {
                    n: 400,
                    k: 10,
                    beta: 0.05,
                    seed: 4,
                }],
            ),
            ("grid", vec![GraphSpec::Grid { rows: 32, cols: 32 }]),
        ];
    }
    vec![
        (
            "sparse-random",
            [5_000usize, 50_000, 500_000]
                .iter()
                .map(|&n| GraphSpec::SparseConnected {
                    n,
                    extra: n,
                    seed: 1,
                })
                .collect(),
        ),
        (
            "pref-attach",
            [2_500usize, 25_000, 250_000]
                .iter()
                .map(|&n| GraphSpec::PreferentialAttachment { n, k: 4, seed: 2 })
                .collect(),
        ),
        (
            "geometric",
            [2_000usize, 20_000, 200_000]
                .iter()
                .map(|&n| GraphSpec::RandomGeometric {
                    n,
                    radius: rgg_radius(n),
                    seed: 3,
                })
                .collect(),
        ),
        (
            "small-world",
            [2_000usize, 20_000, 200_000]
                .iter()
                .map(|&n| GraphSpec::WattsStrogatz {
                    n,
                    k: 10,
                    beta: 0.05,
                    seed: 4,
                })
                .collect(),
        ),
        (
            "grid",
            [71usize, 224, 708]
                .iter()
                .map(|&k| GraphSpec::Grid { rows: k, cols: k })
                .collect(),
        ),
    ]
}

/// A deterministic source sample for a graph with `n` nodes: `count`
/// well-spread node indices (first, stride steps, last).
fn source_sample(n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n).max(1);
    if count == 1 {
        return vec![0];
    }
    let mut sources: Vec<usize> = (0..count - 1).map(|i| i * (n - 1) / (count - 1)).collect();
    sources.push(n - 1);
    sources.dedup();
    sources
}

/// Deterministic source *sets*: `floods` sets of **exactly**
/// `min(set_size, n)` spread node indices each. Each set anchors at one
/// [`source_sample`] index and adds further nodes at stride
/// `n / set_size` (mod `n`); stride collisions (small `n`, wrap-around)
/// are topped up with the smallest unused indices, so every set has the
/// exact requested size and the recorded `sources` field never overstates
/// `|S|`. `set_size` is clamped into `1 ..= n`.
fn source_set_sample(n: usize, floods: usize, set_size: usize) -> Vec<Vec<usize>> {
    let size = set_size.clamp(1, n.max(1));
    source_sample(n, floods)
        .into_iter()
        .map(|anchor| {
            let mut set: std::collections::BTreeSet<usize> =
                (0..size).map(|j| (anchor + j * n / size) % n).collect();
            let mut filler = 0;
            while set.len() < size {
                set.insert(filler);
                filler += 1;
            }
            set.into_iter().collect()
        })
        .collect()
}

// All measurements time the engine's complete workflow over all source
// sets, setup included: the batch runners allocate once (for the sharded
// engine that includes partitioning the graph; for the dynamic engine,
// cloning the base graph and building the delta overlay) and reuse state
// across floods — that amortization is part of what is being measured —
// while the scan engine has no reset and must construct per flood. The
// zero-churn dynamic row therefore reads as frontier throughput plus the
// overlay's setup cost amortized over the case's floods, consistent with
// how the sharded row carries its partitioning cost. The timed window is
// FloodRequest::execute — validation and NodeId conversion included, a
// few nanoseconds per source against milliseconds of flooding — so the
// row measures exactly what a CLI or wire client of the same request
// experiences.

/// Measures one [`FloodRequest`] on `g` exactly the way the committed
/// benchmark rows are measured — same timed window, same per-flood
/// termination audit — and returns the [`EngineStats`] row. This is the
/// entry point behind the daemon's `Bench` verb, so a self-recorded row
/// is the row this harness would have recorded for the same request.
///
/// # Errors
///
/// Rejects what [`FloodRequest::validate`] rejects (unknown engine,
/// out-of-range source), plus `bad_request` for an empty source-set list
/// (a row must measure something) and for a nonzero `max_rounds`: the
/// benchmark path always floods uncapped, because a capped static flood
/// would trip the Theorem 3.1 termination audit instead of producing a
/// comparable row.
pub fn measure_request(
    g: &Graph,
    request: &FloodRequest,
) -> Result<EngineStats, af_core::api::ErrorResponse> {
    use af_core::api::{code, ErrorResponse};
    if request.source_sets.is_empty() {
        return Err(ErrorResponse::new(
            code::BAD_REQUEST,
            "a bench request needs at least one source set",
        ));
    }
    if request.max_rounds != 0 {
        return Err(ErrorResponse::new(
            code::BAD_REQUEST,
            "bench rows are measured uncapped; max_rounds must be 0",
        ));
    }
    let engine = request.validate(g)?;
    Ok(measure_batch(g, &request.source_sets, engine))
}

fn measure_batch(g: &Graph, source_sets: &[Vec<usize>], engine: FloodEngine) -> EngineStats {
    let (name, threads, threads_requested, partitioner, churn) = match engine {
        FloodEngine::Frontier => (
            "frontier",
            1,
            1,
            NO_PARTITIONER.to_string(),
            NO_CHURN.to_string(),
        ),
        FloodEngine::Fast => (
            "fast",
            1,
            1,
            NO_PARTITIONER.to_string(),
            NO_CHURN.to_string(),
        ),
        FloodEngine::Sharded { threads, strategy } => (
            "sharded",
            // Record the shard count that actually runs, not the request
            // (Partition::new clamps into 1 ..= min(n, MAX_SHARDS)) —
            // alongside the request itself, so clamped rows are visible.
            af_graph::partition::clamp_shard_count(g.node_count(), threads),
            threads,
            strategy.name().to_string(),
            NO_CHURN.to_string(),
        ),
        FloodEngine::Dynamic { churn } => (
            "dynamic",
            1,
            1,
            NO_PARTITIONER.to_string(),
            churn.to_string(),
        ),
        FloodEngine::BitLane => (
            "bitlane",
            1,
            1,
            NO_PARTITIONER.to_string(),
            NO_CHURN.to_string(),
        ),
    };
    let lanes = match engine {
        FloodEngine::BitLane => LANES.min(source_sets.len()).max(1),
        _ => 1,
    };
    let is_static = !matches!(engine, FloodEngine::Dynamic { .. });
    // Building the request clones the source sets — input prep, outside
    // the timed window. Executing it is the timed window.
    let request = FloodRequest::new(source_sets.to_vec(), engine);
    let start = Instant::now();
    // execute() floods set after set on the serial/sharded/dynamic
    // engines and packs up to 64 sets per pass on the bitlane engine.
    let response = request
        .execute(g)
        // af-audit: allow(no-unwrap-in-lib): the harness builds requests from the
        // graph itself, so every source is in range
        .expect("benchmark requests are well-formed");
    let wall = start.elapsed();
    let rounds = response
        .floods
        .iter()
        .map(|f| {
            // Only churned floods may cap out; on a static graph
            // non-termination would be a theorem violation.
            assert!(
                f.terminated || !is_static,
                "Theorem 3.1: static floods terminate"
            );
            f.rounds
        })
        .collect();
    let terminated = response.floods.iter().filter(|f| f.terminated).count();
    let messages = response.floods.iter().map(|f| f.messages).sum();
    EngineStats {
        engine: name.to_string(),
        engine_spec: request.engine,
        threads,
        threads_requested,
        partitioner,
        sources: source_sets.first().map_or(1, Vec::len),
        churn,
        lanes,
        rounds_per_source: rounds,
        floods_terminated: terminated,
        total_messages: messages,
        wall_ms: wall.as_secs_f64() * 1e3,
        // 0.0 for an unmeasurably fast run: JSON has no Infinity, and the
        // vendored serializer rejects non-finite floats.
        edges_per_sec: if wall.as_secs_f64() > 0.0 {
            messages as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
    }
}

/// Runs one case: build the graph, sample `floods_per_graph` source sets
/// of `sources_per_flood` nodes each, measure every engine (`frontier`,
/// `fast`, `sharded` with the given concurrency, `dynamic` under `churn`,
/// and the bit-parallel `bitlane`), and cross-check agreement (plus the
/// multi-source oracle when `check_oracle`). The dynamic row joins the
/// agreement conjunction only under the `"none"` churn spec, where it
/// must match `frontier` exactly; the `fast`, `sharded`, and `bitlane`
/// rows are always in it.
#[must_use]
#[allow(clippy::too_many_arguments)] // one axis per benchmark dimension
pub fn run_case(
    family: &str,
    spec: &GraphSpec,
    floods_per_graph: usize,
    sources_per_flood: usize,
    check_oracle: bool,
    threads: usize,
    strategy: PartitionStrategy,
    churn: ChurnSpec,
) -> CaseResult {
    let g = spec.build();
    let source_sets = source_set_sample(g.node_count(), floods_per_graph, sources_per_flood);
    let frontier = measure_batch(&g, &source_sets, FloodEngine::Frontier);
    let fast = measure_batch(&g, &source_sets, FloodEngine::Fast);
    let sharded = measure_batch(&g, &source_sets, FloodEngine::Sharded { threads, strategy });
    let dynamic = measure_batch(&g, &source_sets, FloodEngine::Dynamic { churn });
    let bitlane = measure_batch(&g, &source_sets, FloodEngine::BitLane);

    let mut agree = [&fast, &sharded, &bitlane].iter().all(|e| {
        e.rounds_per_source == frontier.rounds_per_source
            && e.total_messages == frontier.total_messages
    });
    if churn.is_none() {
        // Zero-churn anchor: the dynamic engine must reproduce the static
        // frontier record bit for bit.
        agree &= dynamic.rounds_per_source == frontier.rounds_per_source
            && dynamic.total_messages == frontier.total_messages
            && dynamic.floods_terminated == source_sets.len();
    }
    if check_oracle {
        for (set, &r) in source_sets.iter().zip(&frontier.rounds_per_source) {
            let pred = theory::predict(&g, set.iter().map(|&s| NodeId::new(s)));
            agree &= pred.termination_round() == r;
        }
    }

    CaseResult {
        family: family.to_string(),
        spec: spec.clone(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        source_sets,
        churn: churn.to_string(),
        engines_agree: agree,
        engines: vec![frontier, fast, sharded, dynamic, bitlane],
    }
}

/// Runs the whole benchmark grid with the default concurrency axis
/// (`threads = 4`, BFS partitioner — what CI's perf-smoke job pins) and
/// classic single-source floods.
///
/// `smoke` selects the small CI-friendly grid and additionally checks every
/// measured flood against the exact-time oracle. Progress (one line per
/// case) goes to stderr so stdout can stay machine-readable.
#[must_use]
pub fn run(smoke: bool) -> ThroughputReport {
    run_with(smoke, 4, PartitionStrategy::Bfs, 1, ChurnSpec::NONE)
}

/// [`run`] with an explicit sharded-engine configuration, source-set
/// size, and churn spec (the CLI's `--threads` / `--partitioner` /
/// `--sources` / `--churn` flags end up here). `sources_per_flood = 1` is
/// the classic single-source sweep; larger sizes measure multi-source
/// floods end to end. A non-`NONE` `churn` makes the `dynamic` engine row
/// measure that workload (and drop out of the agreement conjunction).
#[must_use]
pub fn run_with(
    smoke: bool,
    threads: usize,
    strategy: PartitionStrategy,
    sources_per_flood: usize,
    churn: ChurnSpec,
) -> ThroughputReport {
    // Full mode floods each graph 64 times so the bitlane row advances a
    // complete 64-lane word per case (the other engines run the same 64
    // floods sequentially — that contrast is the point of the row).
    // Smoke mode stays at 2 floods, small enough for CI; its bitlane row
    // packs 2 lanes.
    let floods_per_graph = if smoke { 2 } else { 64 };
    let mut results = Vec::new();
    for (family, specs) in cases(smoke) {
        for spec in &specs {
            eprintln!("bench: {} {} ...", family, spec.label());
            results.push(run_case(
                family,
                spec,
                floods_per_graph,
                sources_per_flood,
                smoke,
                threads,
                strategy,
                churn,
            ));
        }
    }
    ThroughputReport {
        schema_version: SCHEMA_VERSION,
        benchmark: "flooding_throughput".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        all_engines_agree: results.iter().all(|c| c.engines_agree),
        cases: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_sample_is_spread_and_deduped() {
        assert_eq!(source_sample(1, 3), vec![0]);
        assert_eq!(source_sample(2, 3), vec![0, 1]);
        assert_eq!(source_sample(100, 3), vec![0, 49, 99]);
        let s = source_sample(5, 10);
        assert!(s.len() <= 5);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn source_set_sample_is_sorted_spread_and_clamped() {
        // Size-1 sets reproduce the single-source sample exactly.
        assert_eq!(
            source_set_sample(100, 3, 1),
            vec![vec![0], vec![49], vec![99]]
        );
        // Larger sets are sorted, duplicate-free, in range, and of the
        // requested size.
        for set in source_set_sample(100, 3, 4) {
            assert_eq!(set.len(), 4);
            assert!(set.windows(2).all(|w| w[0] < w[1]), "{set:?}");
            assert!(set.iter().all(|&s| s < 100));
        }
        // set_size is clamped to n; sets never repeat a node.
        for set in source_set_sample(3, 2, 10) {
            assert_eq!(set, vec![0, 1, 2]);
        }
        // Degenerate single-node graph.
        assert_eq!(source_set_sample(1, 2, 5), vec![vec![0]]);
    }

    proptest::proptest! {
        /// The recorded `sources` field equals the actual set size: for
        /// every small `n` / `floods` / `set_size`, each sampled set has
        /// **exactly** `min(set_size, n)` distinct in-range nodes (the
        /// top-up guards the stride arithmetic against ever under-filling
        /// a set while the JSON still records the request).
        #[test]
        fn source_set_sample_fills_to_exact_size(
            n in 1usize..64,
            floods in 1usize..6,
            set_size in 1usize..80,
        ) {
            let sets = source_set_sample(n, floods, set_size);
            proptest::prop_assert!(!sets.is_empty());
            proptest::prop_assert!(sets.len() <= floods);
            for set in sets {
                proptest::prop_assert_eq!(set.len(), set_size.min(n));
                proptest::prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
                proptest::prop_assert!(set.iter().all(|&s| s < n));
            }
        }
    }

    #[test]
    fn smoke_grid_engines_agree_and_roundtrip() {
        let report = run(true);
        assert!(report.all_engines_agree, "{}", report.to_summary());
        assert!(report.cases.len() >= 3, "at least three families");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.mode, "smoke");
        for case in &report.cases {
            assert_eq!(case.engines.len(), 5);
            assert_eq!(case.engines[0].engine, "frontier");
            assert_eq!(case.engines[1].engine, "fast");
            assert_eq!(case.engines[2].engine, "sharded");
            assert_eq!(case.engines[3].engine, "dynamic");
            assert_eq!(case.engines[4].engine, "bitlane");
            // Every row carries the canonical engine string that replays
            // it (`--engine <spec>` / the wire `engine` field), and the
            // string round-trips through FromStr back onto the same
            // engine family.
            assert_eq!(case.engines[0].engine_spec, "frontier");
            assert_eq!(case.engines[1].engine_spec, "fast");
            assert_eq!(case.engines[2].engine_spec, "sharded:4:bfs");
            assert_eq!(case.engines[3].engine_spec, "dynamic:none");
            assert_eq!(case.engines[4].engine_spec, "bitlane");
            for e in &case.engines {
                let parsed: FloodEngine = e.engine_spec.parse().unwrap();
                assert_eq!(parsed.family(), e.engine, "{}", e.engine_spec);
            }
            assert!(case.engines[0].total_messages > 0);
            // The concurrency, source, and churn axes are recorded in
            // every row: serial engines carry threads = 1 / "none", the
            // sharded engine the configured shard count and partitioner,
            // and all rows the source-set size and churn spec of the
            // measured floods.
            for serial in [
                &case.engines[0],
                &case.engines[1],
                &case.engines[3],
                &case.engines[4],
            ] {
                assert_eq!(serial.threads, 1);
                assert_eq!(serial.threads_requested, 1);
                assert_eq!(serial.partitioner, NO_PARTITIONER);
            }
            assert_eq!(case.engines[2].threads, 4);
            assert_eq!(case.engines[2].threads_requested, 4);
            assert_eq!(case.engines[2].partitioner, "bfs");
            assert_eq!(case.engines[2].label(), "shardedx4(bfs)");
            for e in &case.engines {
                assert_eq!(e.sources, 1, "default run is single-source");
                assert_eq!(e.churn, NO_CHURN, "default run is churn-free");
                assert_eq!(e.floods_terminated, case.source_sets.len());
            }
            assert_eq!(case.churn, NO_CHURN);
            // The lane axis: only the bitlane row packs floods.
            for e in &case.engines[..4] {
                assert_eq!(e.lanes, 1, "{}", e.engine);
            }
            assert_eq!(
                case.engines[4].lanes,
                case.source_sets.len().min(64),
                "bitlane packs one lane per flood"
            );
            assert_eq!(case.engines[4].label(), "bitlanex2lanes");
            // Zero-churn anchor: the dynamic row equals the frontier row.
            assert_eq!(
                case.engines[3].rounds_per_source,
                case.engines[0].rounds_per_source
            );
            assert_eq!(
                case.engines[3].total_messages,
                case.engines[0].total_messages
            );
            // Lane-exactness: the bitlane row equals the frontier row.
            assert_eq!(
                case.engines[4].rounds_per_source,
                case.engines[0].rounds_per_source
            );
            assert_eq!(
                case.engines[4].total_messages,
                case.engines[0].total_messages
            );
            assert!(case.source_sets.iter().all(|s| s.len() == 1));
            // Rebuilding from the recorded spec gives the recorded size.
            let g = case.spec.build();
            assert_eq!(g.node_count(), case.nodes);
            assert_eq!(g.edge_count(), case.edges);
        }
        let json = report.to_json();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.to_summary().is_empty());
    }

    #[test]
    fn single_case_oracle_check_catches_agreement() {
        let case = run_case(
            "grid",
            &GraphSpec::Grid { rows: 9, cols: 7 },
            3,
            1,
            true,
            3,
            PartitionStrategy::RoundRobin,
            ChurnSpec::NONE,
        );
        assert!(case.engines_agree);
        // Bipartite grid, single source, no churn: every flood delivers
        // exactly m messages, on every engine (the dynamic row included).
        let floods = case.source_sets.len() as u64;
        for e in &case.engines {
            assert_eq!(e.total_messages, floods * case.edges as u64, "{}", e.engine);
        }
        assert_eq!(case.engines[2].partitioner, "round-robin");
    }

    #[test]
    fn multi_source_case_agrees_with_the_oracle_and_records_the_axes() {
        let case = run_case(
            "grid",
            &GraphSpec::Grid { rows: 8, cols: 8 },
            2,
            5,
            true,
            // Deliberately overshard: n = 64 clamps a 2000-thread request.
            2000,
            PartitionStrategy::Bfs,
            ChurnSpec::NONE,
        );
        assert!(case.engines_agree, "multi-source engines + oracle agree");
        assert_eq!(case.source_sets.len(), 2);
        for set in &case.source_sets {
            assert_eq!(set.len(), 5);
        }
        for e in &case.engines {
            assert_eq!(e.sources, 5, "{}", e.engine);
        }
        // The clamp is visible: request recorded next to what ran, and
        // the engine_spec replays the *request*, not the clamp.
        let sharded = &case.engines[2];
        assert_eq!(sharded.threads_requested, 2000);
        assert_eq!(sharded.threads, 64);
        assert_eq!(sharded.engine_spec, "sharded:2000:bfs");
    }

    #[test]
    fn churned_case_records_the_axis_and_static_engines_still_agree() {
        let churn: ChurnSpec = "mix:100:7".parse().unwrap();
        let case = run_case(
            "grid",
            &GraphSpec::Grid { rows: 8, cols: 8 },
            2,
            1,
            // No oracle check: the dynamic row is not oracle-predictable,
            // and the static rows are checked in the other tests.
            false,
            2,
            PartitionStrategy::Bfs,
            churn,
        );
        // Static engines must still agree among themselves.
        assert!(case.engines_agree, "static agreement is churn-independent");
        assert_eq!(case.churn, "mix:100:7");
        let dynamic = &case.engines[3];
        assert_eq!(dynamic.engine, "dynamic");
        assert_eq!(dynamic.engine_spec, "dynamic:mix:100:7");
        assert_eq!(dynamic.churn, "mix:100:7");
        assert_eq!(dynamic.label(), "dynamic(mix:100:7)");
        assert_eq!(dynamic.rounds_per_source.len(), case.source_sets.len());
        assert!(dynamic.floods_terminated <= case.source_sets.len());
        assert!(dynamic.total_messages > 0);
        for stat in case.engines[..3].iter().chain([&case.engines[4]]) {
            assert_eq!(stat.churn, NO_CHURN, "{}", stat.engine);
        }
        // Same spec, same measurement (determinism across runs).
        let again = run_case(
            "grid",
            &GraphSpec::Grid { rows: 8, cols: 8 },
            2,
            1,
            false,
            2,
            PartitionStrategy::Bfs,
            churn,
        );
        assert_eq!(
            again.engines[3].rounds_per_source,
            dynamic.rounds_per_source
        );
        assert_eq!(again.engines[3].total_messages, dynamic.total_messages);
    }

    #[test]
    fn full_grid_is_well_formed() {
        // Don't *run* the full grid in tests — just check its shape.
        let grid = cases(false);
        assert!(grid.len() >= 3, "at least three families");
        for (family, specs) in &grid {
            assert!(!family.is_empty());
            assert!(specs.len() >= 3, "{family}: sizes from ~1e4 to ~1e6");
        }
    }
}
