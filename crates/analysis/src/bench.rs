//! The flooding throughput benchmark: the measured numbers behind
//! `BENCH_flooding.json`, the repository's recorded perf trajectory.
//!
//! The paper's bounds make one flood's intrinsic work `O(m)` (each arc
//! activates at most twice), so sustained throughput — delivered messages
//! (edge crossings) per second — is the honest scalar to track. The
//! benchmark floods a grid of graph families from roughly `1e4` up to
//! `1e6` edges with three engines:
//!
//! * `frontier` — [`af_core::FrontierFlooding`] via the batched
//!   [`af_core::FloodBatch`] runner (allocation reuse across sources);
//! * `fast` — the scan-all-arcs [`af_core::FastFlooding`] baseline;
//! * `sharded` — [`af_core::ShardedFlooding`]: the same floods split
//!   across `threads` partition shards (the `threads` and `partitioner`
//!   columns record the concurrency axis; the serial engines carry
//!   `threads = 1`, `partitioner = "none"`).
//!
//! All engines flood the same deterministic source sample of every graph
//! and must agree flood-for-flood on termination rounds and message counts
//! (recorded as `engines_agree` / `all_engines_agree`; in smoke mode the
//! [`af_core::theory`] oracle is checked too). CI runs the smoke
//! configuration on every push and fails if the engines disagree or the
//! JSON stops parsing.
//!
//! # `BENCH_flooding.json` schema (version 2)
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "benchmark": "flooding_throughput",
//!   "mode": "full" | "smoke",
//!   "all_engines_agree": true,
//!   "cases": [
//!     {
//!       "family": "grid",
//!       "spec": { "Grid": { "rows": 708, "cols": 708 } },
//!       "nodes": 501264, "edges": 1001112,
//!       "sources": [0, 250632, 501263],
//!       "engines_agree": true,
//!       "engines": [
//!         { "engine": "frontier", "threads": 1, "partitioner": "none",
//!           "rounds_per_source": [1414, ...],
//!           "total_messages": 3003336, "wall_ms": 123.4,
//!           "edges_per_sec": 24340000.0 },
//!         { "engine": "fast", ... },
//!         { "engine": "sharded", "threads": 4, "partitioner": "bfs", ... }
//!       ]
//!     }, ...
//!   ]
//! }
//! ```
//!
//! Field names and nesting are stable; extending the file means adding
//! fields (or bumping `schema_version`), never renaming. Version 2 added
//! the required `threads` and `partitioner` fields to every engine row
//! together with the sharded engine — version-1 files (which lack them)
//! do not deserialize as [`EngineStats`], hence the bump rather than a
//! silent same-version shape change.

use crate::spec::GraphSpec;
use af_core::{theory, FastFlooding, FloodBatch, FloodEngine};
use af_graph::{Graph, NodeId, PartitionStrategy};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Version stamp written into every report. Version 2 = version 1 plus
/// the required per-engine `threads` / `partitioner` fields.
pub const SCHEMA_VERSION: u32 = 2;

/// The `partitioner` value recorded for engines that do not partition.
pub const NO_PARTITIONER: &str = "none";

/// One engine's aggregate measurement over a case's source sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Engine name: `"frontier"`, `"fast"`, or `"sharded"`.
    pub engine: String,
    /// Worker threads the engine used (1 for the serial engines).
    pub threads: usize,
    /// Partition strategy name, or `"none"` for unpartitioned engines.
    pub partitioner: String,
    /// Termination round of each measured flood, in source order.
    pub rounds_per_source: Vec<u32>,
    /// Messages delivered over all measured floods.
    pub total_messages: u64,
    /// Wall-clock time for all measured floods, in milliseconds.
    pub wall_ms: f64,
    /// Throughput: delivered messages (= edge crossings) per second.
    pub edges_per_sec: f64,
}

impl EngineStats {
    /// A short human label: the engine name, annotated with the thread
    /// count and partitioner when concurrency is in play.
    #[must_use]
    pub fn label(&self) -> String {
        if self.threads > 1 {
            format!("{}x{}({})", self.engine, self.threads, self.partitioner)
        } else {
            self.engine.clone()
        }
    }
}

/// One `(family, size)` case: the graph, its source sample, and every
/// engine's measurement on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// Family label (shared across the family's sizes).
    pub family: String,
    /// The exact generator instance, rebuildable bit-for-bit.
    pub spec: GraphSpec,
    /// Node count of the built graph.
    pub nodes: usize,
    /// Edge count of the built graph.
    pub edges: usize,
    /// The measured source sample (node indices).
    pub sources: Vec<usize>,
    /// Whether all engines agreed flood-for-flood on rounds and messages.
    pub engines_agree: bool,
    /// Per-engine measurements, `frontier` first.
    pub engines: Vec<EngineStats>,
}

/// A full benchmark run, serialized as `BENCH_flooding.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Schema version of this file ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Always `"flooding_throughput"`.
    pub benchmark: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// Conjunction of every case's `engines_agree`.
    pub all_engines_agree: bool,
    /// All measured cases.
    pub cases: Vec<CaseResult>,
}

impl ThroughputReport {
    /// Serializes the report to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the report is plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// A one-line-per-case human summary (for terminals and CI logs).
    #[must_use]
    pub fn to_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flooding throughput ({} mode) — {} cases, engines agree: {}",
            self.mode,
            self.cases.len(),
            self.all_engines_agree
        );
        for case in &self.cases {
            let _ = write!(
                out,
                "  {:<28} n={:<8} m={:<8}",
                case.spec.label(),
                case.nodes,
                case.edges
            );
            for e in &case.engines {
                let _ = write!(
                    out,
                    "  {}: {:>8.1}ms {:>12.0} edges/s",
                    e.label(),
                    e.wall_ms,
                    e.edges_per_sec
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The benchmark grid: `(family, specs in increasing size)`.
///
/// Full mode targets ~1e4, ~1e5 and ~1e6 edges per family; smoke mode is a
/// single ~2e3-edge instance per family, small enough for CI.
#[must_use]
pub fn cases(smoke: bool) -> Vec<(&'static str, Vec<GraphSpec>)> {
    // Radius giving expected average degree ~10 in the unit square:
    // deg ≈ n·π·r², so r = sqrt(10 / (π n)).
    let rgg_radius = |n: usize| (10.0 / (core::f64::consts::PI * n as f64)).sqrt();
    if smoke {
        return vec![
            (
                "sparse-random",
                vec![GraphSpec::SparseConnected {
                    n: 1_000,
                    extra: 1_000,
                    seed: 1,
                }],
            ),
            (
                "pref-attach",
                vec![GraphSpec::PreferentialAttachment {
                    n: 500,
                    k: 4,
                    seed: 2,
                }],
            ),
            (
                "geometric",
                vec![GraphSpec::RandomGeometric {
                    n: 400,
                    radius: rgg_radius(400),
                    seed: 3,
                }],
            ),
            (
                "small-world",
                vec![GraphSpec::WattsStrogatz {
                    n: 400,
                    k: 10,
                    beta: 0.05,
                    seed: 4,
                }],
            ),
            ("grid", vec![GraphSpec::Grid { rows: 32, cols: 32 }]),
        ];
    }
    vec![
        (
            "sparse-random",
            [5_000usize, 50_000, 500_000]
                .iter()
                .map(|&n| GraphSpec::SparseConnected {
                    n,
                    extra: n,
                    seed: 1,
                })
                .collect(),
        ),
        (
            "pref-attach",
            [2_500usize, 25_000, 250_000]
                .iter()
                .map(|&n| GraphSpec::PreferentialAttachment { n, k: 4, seed: 2 })
                .collect(),
        ),
        (
            "geometric",
            [2_000usize, 20_000, 200_000]
                .iter()
                .map(|&n| GraphSpec::RandomGeometric {
                    n,
                    radius: rgg_radius(n),
                    seed: 3,
                })
                .collect(),
        ),
        (
            "small-world",
            [2_000usize, 20_000, 200_000]
                .iter()
                .map(|&n| GraphSpec::WattsStrogatz {
                    n,
                    k: 10,
                    beta: 0.05,
                    seed: 4,
                })
                .collect(),
        ),
        (
            "grid",
            [71usize, 224, 708]
                .iter()
                .map(|&k| GraphSpec::Grid { rows: k, cols: k })
                .collect(),
        ),
    ]
}

/// A deterministic source sample for a graph with `n` nodes: `count`
/// well-spread node indices (first, stride steps, last).
fn source_sample(n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n).max(1);
    if count == 1 {
        return vec![0];
    }
    let mut sources: Vec<usize> = (0..count - 1).map(|i| i * (n - 1) / (count - 1)).collect();
    sources.push(n - 1);
    sources.dedup();
    sources
}

// All measurements time the engine's complete multi-source workflow,
// setup included: the batch runners allocate once (for the sharded engine
// that includes partitioning the graph) and reuse state across sources —
// that amortization is part of what is being measured — while the scan
// engine has no reset and must construct per source.

fn measure_batch(g: &Graph, sources: &[usize], engine: FloodEngine) -> EngineStats {
    let (name, threads, partitioner) = match engine {
        FloodEngine::Frontier => ("frontier", 1, NO_PARTITIONER.to_string()),
        FloodEngine::Sharded { threads, strategy } => (
            "sharded",
            // Record the shard count that actually runs, not the request
            // (Partition::new clamps into 1 ..= min(n, MAX_SHARDS)).
            af_graph::partition::clamp_shard_count(g.node_count(), threads),
            strategy.name().to_string(),
        ),
    };
    let start = Instant::now();
    let mut batch = FloodBatch::with_engine(g, engine);
    let stats: Vec<af_core::FloodStats> = sources
        .iter()
        .map(|&s| batch.run_from([NodeId::new(s)]))
        .collect();
    let wall = start.elapsed();
    let rounds = stats
        .iter()
        .map(|s| {
            s.termination_round()
                .expect("Theorem 3.1: floods terminate")
        })
        .collect();
    let messages = stats.iter().map(af_core::FloodStats::total_messages).sum();
    finish_stats(
        name,
        threads,
        partitioner,
        rounds,
        messages,
        wall.as_secs_f64(),
    )
}

fn measure_fast(g: &Graph, sources: &[usize]) -> EngineStats {
    let cap = 2 * g.node_count() as u32 + 2;
    let start = Instant::now();
    let per_source: Vec<(u32, u64)> = sources
        .iter()
        .map(|&s| {
            let mut sim = FastFlooding::new(g, [NodeId::new(s)]);
            sim.set_record_receipts(false);
            let outcome = sim.run(cap);
            (
                outcome
                    .termination_round()
                    .expect("Theorem 3.1: floods terminate"),
                sim.total_messages(),
            )
        })
        .collect();
    let wall = start.elapsed();
    let rounds = per_source.iter().map(|&(r, _)| r).collect();
    let messages = per_source.iter().map(|&(_, m)| m).sum();
    finish_stats(
        "fast",
        1,
        NO_PARTITIONER.to_string(),
        rounds,
        messages,
        wall.as_secs_f64(),
    )
}

fn finish_stats(
    engine: &str,
    threads: usize,
    partitioner: String,
    rounds: Vec<u32>,
    messages: u64,
    secs: f64,
) -> EngineStats {
    EngineStats {
        engine: engine.to_string(),
        threads,
        partitioner,
        rounds_per_source: rounds,
        total_messages: messages,
        wall_ms: secs * 1e3,
        // 0.0 for an unmeasurably fast run: JSON has no Infinity, and the
        // vendored serializer rejects non-finite floats.
        edges_per_sec: if secs > 0.0 {
            messages as f64 / secs
        } else {
            0.0
        },
    }
}

/// Runs one case: build the graph, sample sources, measure every engine
/// (`frontier`, `fast`, and `sharded` with the given concurrency), and
/// cross-check agreement (plus the oracle when `check_oracle`).
#[must_use]
pub fn run_case(
    family: &str,
    spec: &GraphSpec,
    sources_per_graph: usize,
    check_oracle: bool,
    threads: usize,
    strategy: PartitionStrategy,
) -> CaseResult {
    let g = spec.build();
    let sources = source_sample(g.node_count(), sources_per_graph);
    let frontier = measure_batch(&g, &sources, FloodEngine::Frontier);
    let fast = measure_fast(&g, &sources);
    let sharded = measure_batch(&g, &sources, FloodEngine::Sharded { threads, strategy });

    let mut agree = [&fast, &sharded].iter().all(|e| {
        e.rounds_per_source == frontier.rounds_per_source
            && e.total_messages == frontier.total_messages
    });
    if check_oracle {
        for (&s, &r) in sources.iter().zip(&frontier.rounds_per_source) {
            agree &= theory::predict(&g, [NodeId::new(s)]).termination_round() == r;
        }
    }

    CaseResult {
        family: family.to_string(),
        spec: spec.clone(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        sources,
        engines_agree: agree,
        engines: vec![frontier, fast, sharded],
    }
}

/// Runs the whole benchmark grid with the default concurrency axis
/// (`threads = 4`, BFS partitioner — what CI's perf-smoke job pins).
///
/// `smoke` selects the small CI-friendly grid and additionally checks every
/// measured flood against the exact-time oracle. Progress (one line per
/// case) goes to stderr so stdout can stay machine-readable.
#[must_use]
pub fn run(smoke: bool) -> ThroughputReport {
    run_with(smoke, 4, PartitionStrategy::Bfs)
}

/// [`run`] with an explicit sharded-engine configuration (the CLI's
/// `--threads` / `--partitioner` flags end up here).
#[must_use]
pub fn run_with(smoke: bool, threads: usize, strategy: PartitionStrategy) -> ThroughputReport {
    let sources_per_graph = if smoke { 2 } else { 3 };
    let mut results = Vec::new();
    for (family, specs) in cases(smoke) {
        for spec in &specs {
            eprintln!("bench: {} {} ...", family, spec.label());
            results.push(run_case(
                family,
                spec,
                sources_per_graph,
                smoke,
                threads,
                strategy,
            ));
        }
    }
    ThroughputReport {
        schema_version: SCHEMA_VERSION,
        benchmark: "flooding_throughput".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        all_engines_agree: results.iter().all(|c| c.engines_agree),
        cases: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_sample_is_spread_and_deduped() {
        assert_eq!(source_sample(1, 3), vec![0]);
        assert_eq!(source_sample(2, 3), vec![0, 1]);
        assert_eq!(source_sample(100, 3), vec![0, 49, 99]);
        let s = source_sample(5, 10);
        assert!(s.len() <= 5);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn smoke_grid_engines_agree_and_roundtrip() {
        let report = run(true);
        assert!(report.all_engines_agree, "{}", report.to_summary());
        assert!(report.cases.len() >= 3, "at least three families");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.mode, "smoke");
        for case in &report.cases {
            assert_eq!(case.engines.len(), 3);
            assert_eq!(case.engines[0].engine, "frontier");
            assert_eq!(case.engines[1].engine, "fast");
            assert_eq!(case.engines[2].engine, "sharded");
            assert!(case.engines[0].total_messages > 0);
            // The concurrency axis is recorded in every row: serial
            // engines carry threads = 1 / "none", the sharded engine the
            // configured shard count and partitioner.
            for serial in &case.engines[..2] {
                assert_eq!(serial.threads, 1);
                assert_eq!(serial.partitioner, NO_PARTITIONER);
            }
            assert_eq!(case.engines[2].threads, 4);
            assert_eq!(case.engines[2].partitioner, "bfs");
            assert_eq!(case.engines[2].label(), "shardedx4(bfs)");
            // Rebuilding from the recorded spec gives the recorded size.
            let g = case.spec.build();
            assert_eq!(g.node_count(), case.nodes);
            assert_eq!(g.edge_count(), case.edges);
        }
        let json = report.to_json();
        let back: ThroughputReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(!report.to_summary().is_empty());
    }

    #[test]
    fn single_case_oracle_check_catches_agreement() {
        let case = run_case(
            "grid",
            &GraphSpec::Grid { rows: 9, cols: 7 },
            3,
            true,
            3,
            PartitionStrategy::RoundRobin,
        );
        assert!(case.engines_agree);
        // Bipartite grid: every flood delivers exactly m messages, on
        // every engine.
        let floods = case.sources.len() as u64;
        for e in &case.engines {
            assert_eq!(e.total_messages, floods * case.edges as u64, "{}", e.engine);
        }
        assert_eq!(case.engines[2].partitioner, "round-robin");
    }

    #[test]
    fn full_grid_is_well_formed() {
        // Don't *run* the full grid in tests — just check its shape.
        let grid = cases(false);
        assert!(grid.len() >= 3, "at least three families");
        for (family, specs) in &grid {
            assert!(!family.is_empty());
            assert!(specs.len() >= 3, "{family}: sizes from ~1e4 to ~1e6");
        }
    }
}
