//! Aggregated experiment reports: run every experiment, bundle the tables,
//! and emit Markdown (the body of EXPERIMENTS.md) or JSON (machine-readable
//! provenance for the measured numbers).

use crate::experiments;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Everything the regeneration run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullReport {
    tables: Vec<Table>,
    figure_traces: Vec<(String, String)>,
}

impl FullReport {
    /// The experiment tables, in E-number order.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The rendered Figure 1–3 traces.
    #[must_use]
    pub fn figure_traces(&self) -> &[(String, String)] {
        &self.figure_traces
    }

    /// Renders the whole report as Markdown.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        for (i, table) in self.tables.iter().enumerate() {
            out.push_str(&table.to_markdown());
            out.push('\n');
            if i == 0 {
                for (title, trace) in &self.figure_traces {
                    out.push_str(&format!("#### {title}\n\n```text\n{trace}```\n\n"));
                }
            }
        }
        out
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the report contains only strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        // af-audit: allow(no-unwrap-in-lib): plain data, no fallible Serialize impls
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Runs every experiment (E1–E17) and bundles the results.
///
/// `exhaustive_n` bounds the E6/E12 exhaustive layers (6 and 5 in the
/// shipping regeneration; tests use smaller values for speed).
#[must_use]
pub fn collect_all(exhaustive_n: usize) -> FullReport {
    let tables = vec![
        experiments::figures::run(),
        experiments::bipartite::run(),
        experiments::termination::run_exhaustive(exhaustive_n.min(6)),
        experiments::termination::run_random(),
        experiments::nonbipartite::run(),
        experiments::asynchronous::run(),
        experiments::multisource::run(42),
        experiments::detection::run(),
        experiments::comparison::run(),
        experiments::arbitrary_config::run(),
        experiments::arbitrary_config::run_exhaustive(exhaustive_n.min(5)),
        experiments::scaling::run(),
        experiments::faults::run(),
        experiments::memory::run(),
        experiments::multisource::run_scale(42),
        experiments::churn::run(42),
    ];
    FullReport {
        tables,
        figure_traces: experiments::figures::rendered_traces(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_report_collects_and_serializes() {
        // exhaustive_n = 3 keeps this test quick while exercising the
        // whole pipeline.
        let report = collect_all(3);
        assert_eq!(report.tables().len(), 16);
        assert_eq!(report.figure_traces().len(), 3);

        let md = report.to_markdown();
        assert!(md.contains("E1–E3"));
        assert!(md.contains("E15"));
        assert!(md.contains("E16"));
        assert!(md.contains("E17"));
        assert!(md.contains("#### Figure 1"));

        let json = report.to_json();
        let back: FullReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, &report);
    }
}
