//! Markdown link and anchor checking, folded in from the former
//! `tests/doc_links.rs` so links, anchors, verbs, error codes, and schema
//! versions are all validated by one pass with one report (`AF105`). The
//! root integration test now delegates here.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::Finding;

/// Top-level Markdown files under link checking (vendor/README.md rides
/// along because the root README points at it).
fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(root)
        .into_iter()
        .flatten()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    files.push(root.join("vendor/README.md"));
    files.sort();
    files.retain(|p| p.is_file());
    files
}

/// Extracts `[label](target)` links outside fenced code blocks.
#[must_use]
pub fn extract_links(markdown: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let tail = &rest[open + 2..];
            let Some(close) = tail.find(')') else { break };
            links.push(tail[..close].trim().to_string());
            rest = &tail[close + 1..];
        }
    }
    links
}

/// GitHub-style anchor slug of a Markdown heading.
#[must_use]
pub fn slug(heading: &str) -> String {
    heading
        .trim()
        .trim_start_matches('#')
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors of a Markdown file (fenced blocks excluded).
#[must_use]
pub fn anchors(markdown: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if !in_fence && line.starts_with('#') {
            out.push(slug(line));
        }
    }
    out
}

/// Checks every relative link and `#anchor` in the top-level docs, one
/// `AF105` finding per breakage.
#[must_use]
pub fn check_links(root: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    let files = doc_files(root);
    if files.len() < 5 {
        out.push(Finding {
            code: "AF105",
            rule: "doc-links",
            path: ".".to_owned(),
            line: 0,
            message: format!("expected at least 5 top-level docs, found {}", files.len()),
        });
    }
    for file in files {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let dir = file.parent().unwrap_or(Path::new(".")).to_path_buf();
        for link in extract_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.is_empty()
            {
                continue;
            }
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (link.as_str(), None),
            };
            let target = if path_part.is_empty() {
                file.clone()
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                out.push(Finding {
                    code: "AF105",
                    rule: "doc-links",
                    path: rel.clone(),
                    line: 0,
                    message: format!("broken link '{link}'"),
                });
                continue;
            }
            if let Some(a) = anchor {
                let target_text = if path_part.is_empty() {
                    text.clone()
                } else {
                    fs::read_to_string(&target).unwrap_or_default()
                };
                if target.extension().is_some_and(|e| e == "md")
                    && !anchors(&target_text).contains(&a)
                {
                    out.push(Finding {
                        code: "AF105",
                        rule: "doc-links",
                        path: rel.clone(),
                        line: 0,
                        message: format!("anchor '#{a}' not found in '{path_part}'"),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_follow_github_rules() {
        assert_eq!(
            slug("## The three engines, and when each wins"),
            "the-three-engines-and-when-each-wins"
        );
        assert_eq!(slug("# Quickstart"), "quickstart");
        assert_eq!(
            slug("### The `BENCH_flooding.json` schema (version 3)"),
            "the-bench_floodingjson-schema-version-3"
        );
    }

    #[test]
    fn links_inside_fences_are_ignored() {
        let md = "[real](a.md)\n```\n[fenced](b.md)\n```\n";
        assert_eq!(extract_links(md), vec!["a.md".to_string()]);
    }
}
