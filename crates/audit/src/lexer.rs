//! A small string/comment-aware scanner for Rust source.
//!
//! The lint rules in this crate only need to know which bytes of a file are
//! *code* (as opposed to comment or literal text), which lines sit inside a
//! `#[cfg(test)]`-gated item, and where `// af-audit: allow(...)` pragmas
//! point. That is far less than a parser: a single forward pass that blanks
//! out comments and string/char literals — preserving line and column
//! structure exactly — is enough, and keeps the vendor tree free of `syn`.
//!
//! Handled literal forms: line comments, nested block comments, doc
//! comments, `"…"` strings with escapes, raw strings `r"…"` / `r#"…"#` (any
//! hash depth), byte strings `b"…"` / `br#"…"#`, char literals `'x'` /
//! `'\n'` / `'\u{1F600}'`, byte chars `b'x'`, and the lifetime-vs-char
//! ambiguity (`'a` in `<'a>` is not a literal).

use std::collections::BTreeSet;

/// One file after scrubbing: `lines[i]` is line `i` (0-based) with every
/// comment and literal replaced by spaces, so rule scans see only code
/// tokens at their original columns.
pub struct Scrubbed {
    /// Code-only text, one entry per source line.
    pub lines: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]`-gated brace region.
    pub in_test: Vec<bool>,
    /// Per line, the set of rule names suppressed by an `allow` pragma.
    pub allows: Vec<BTreeSet<String>>,
}

impl Scrubbed {
    /// `true` if `rule` is suppressed on 0-based line `idx`.
    #[must_use]
    pub fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows.get(idx).is_some_and(|set| set.contains(rule))
    }
}

/// Is `c` a character that can continue an identifier? Used to decide
/// whether `r` / `b` before a quote are a literal prefix or the tail of a
/// plain identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrubs `src`: blanks comments and literals, collects comment text for
/// pragma extraction, and marks `#[cfg(test)]` regions.
#[must_use]
pub fn scrub(src: &str) -> Scrubbed {
    let chars: Vec<char> = src.chars().collect();
    let len = chars.len();
    let mut out = String::with_capacity(src.len());
    // (0-based line of the `//`, full comment text) for pragma extraction.
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let mut prev_ident = false; // previous emitted code char continues an identifier

    macro_rules! blank {
        () => {
            out.push(' ')
        };
    }

    while i < len {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                out.push('\n');
                line += 1;
                i += 1;
                prev_ident = false;
            }
            '/' if next == Some('/') => {
                let start = i;
                while i < len && chars[i] != '\n' {
                    blank!();
                    i += 1;
                }
                comments.push((line, chars[start..i].iter().collect()));
            }
            '/' if next == Some('*') => {
                let mut depth = 1usize;
                blank!();
                blank!();
                i += 2;
                while i < len && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        blank!();
                        blank!();
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        blank!();
                        blank!();
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            blank!();
                        }
                        i += 1;
                    }
                }
                prev_ident = false;
            }
            '"' => {
                i = scrub_string(&chars, i, &mut out, &mut line);
                prev_ident = false;
            }
            'r' | 'b' if !prev_ident => {
                if let Some(end) = raw_or_prefixed_start(&chars, i) {
                    i = end(&chars, i, &mut out, &mut line);
                    prev_ident = false;
                } else {
                    out.push(c);
                    prev_ident = true;
                    i += 1;
                }
            }
            '\'' => {
                i = scrub_char_or_lifetime(&chars, i, &mut out);
                prev_ident = false;
            }
            _ => {
                out.push(c);
                prev_ident = is_ident(c);
                i += 1;
            }
        }
    }

    let lines: Vec<String> = out.split('\n').map(str::to_owned).collect();
    let in_test = mark_test_regions(&lines);
    let allows = attach_pragmas(&lines, &comments);
    Scrubbed {
        lines,
        in_test,
        allows,
    }
}

/// Kind of literal starting at an `r`/`b` prefix, if any. Returns the
/// scrubbing continuation to apply, or `None` when the letter is plain code.
#[allow(clippy::type_complexity)]
fn raw_or_prefixed_start(
    chars: &[char],
    i: usize,
) -> Option<fn(&[char], usize, &mut String, &mut usize) -> usize> {
    match chars[i] {
        'r' => match chars.get(i + 1) {
            Some('"' | '#') if raw_has_quote(chars, i + 1) => Some(scrub_raw),
            _ => None,
        },
        'b' => match chars.get(i + 1) {
            Some('"') => Some(scrub_prefixed_string),
            Some('\'') => Some(scrub_byte_char),
            Some('r') if raw_has_quote(chars, i + 2) => Some(scrub_prefixed_raw),
            _ => None,
        },
        _ => None,
    }
}

/// After a raw-string prefix, checks that `#…#"` actually leads to a quote
/// (distinguishes `r#"…"#` from the raw identifier `r#match`).
fn raw_has_quote(chars: &[char], mut j: usize) -> bool {
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Scrubs `"…"` with backslash escapes, starting at the opening quote.
/// Returns the index just past the closing quote.
fn scrub_string(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    out.push(' '); // opening quote
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(' ');
                if chars.get(i + 1).is_some() {
                    if chars[i + 1] == '\n' {
                        out.push('\n');
                        *line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => {
                out.push(' ');
                return i + 1;
            }
            '\n' => {
                out.push('\n');
                *line += 1;
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Scrubs `b"…"`: blanks the `b` then defers to the string scanner.
fn scrub_prefixed_string(chars: &[char], i: usize, out: &mut String, line: &mut usize) -> usize {
    out.push(' ');
    scrub_string(chars, i + 1, out, line)
}

/// Scrubs `br#"…"#`: blanks the `b` then defers to the raw scanner.
fn scrub_prefixed_raw(chars: &[char], i: usize, out: &mut String, line: &mut usize) -> usize {
    out.push(' ');
    scrub_raw(chars, i + 1, out, line)
}

/// Scrubs `r"…"` / `r#"…"#` with any hash depth, starting at the `r`.
fn scrub_raw(chars: &[char], mut i: usize, out: &mut String, line: &mut usize) -> usize {
    out.push(' '); // the `r`
    i += 1;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        out.push(' ');
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    out.push(' ');
    i += 1;
    while i < chars.len() {
        if chars[i] == '"'
            && chars[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            for _ in 0..=hashes {
                out.push(' ');
            }
            return i + 1 + hashes;
        }
        if chars[i] == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
        i += 1;
    }
    i
}

/// Scrubs `b'…'`, starting at the `b`.
fn scrub_byte_char(chars: &[char], i: usize, out: &mut String, _line: &mut usize) -> usize {
    out.push(' ');
    scrub_char_literal(chars, i + 1, out)
}

/// At a `'`: decides char literal vs lifetime. A lifetime (`'a`, `'static`,
/// `'_`, loop labels) is an identifier-ish run *not* closed by another `'`.
fn scrub_char_or_lifetime(chars: &[char], i: usize, out: &mut String) -> usize {
    let next = chars.get(i + 1).copied();
    match next {
        Some('\\') => scrub_char_literal(chars, i, out),
        Some(c) if chars.get(i + 2) == Some(&'\'') && c != '\'' => {
            scrub_char_literal(chars, i, out)
        }
        _ => {
            // Lifetime or label: keep the quote (it is punctuation, not text).
            out.push('\'');
            i + 1
        }
    }
}

/// Scrubs a char literal starting at the opening `'`, scanning escapes until
/// the closing `'`. Returns the index just past it.
fn scrub_char_literal(chars: &[char], mut i: usize, out: &mut String) -> usize {
    out.push(' '); // opening quote
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(' ');
                if chars.get(i + 1).is_some() {
                    out.push(' ');
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '\'' => {
                out.push(' ');
                return i + 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Marks every line inside a `#[cfg(test)]`-gated brace region. The
/// attribute's item (a `mod tests { … }` or a gated `fn`/`impl`) is found by
/// brace matching on the scrubbed text, so braces in strings cannot confuse
/// it. `#[cfg(not(test))]` does not match.
fn mark_test_regions(lines: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    for (start, text) in lines.iter().enumerate() {
        if !(text.contains("#[cfg(test)]") || text.contains("#[cfg(all(test")) {
            continue;
        }
        // From the attribute, scan forward for the first `{`, then match.
        let mut depth = 0usize;
        let mut opened = false;
        'scan: for (idx, l) in lines.iter().enumerate().skip(start) {
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            for flag in &mut in_test[start..=idx] {
                                *flag = true;
                            }
                            break 'scan;
                        }
                    }
                    // A gated `use`/`const` ends at `;` before any brace.
                    ';' if !opened => {
                        for flag in &mut in_test[start..=idx] {
                            *flag = true;
                        }
                        break 'scan;
                    }
                    _ => {}
                }
            }
        }
    }
    in_test
}

/// Parses `// af-audit: allow(rule-a, rule-b)` pragmas out of the collected
/// comments and attaches them: a trailing pragma suppresses on its own line;
/// a standalone comment line suppresses on the next line that has code.
fn attach_pragmas(lines: &[String], comments: &[(usize, String)]) -> Vec<BTreeSet<String>> {
    let mut allows: Vec<BTreeSet<String>> = vec![BTreeSet::new(); lines.len()];
    for &(line, ref text) in comments {
        let Some(rules) = parse_pragma(text) else {
            continue;
        };
        let own_line_has_code = lines.get(line).is_some_and(|l| !l.trim().is_empty());
        let target = if own_line_has_code {
            Some(line)
        } else {
            // Standalone comment: next line containing code.
            (line + 1..lines.len()).find(|&j| !lines[j].trim().is_empty())
        };
        if let Some(t) = target {
            allows[t].extend(rules.iter().cloned());
            // Also cover the pragma's own line so `allow` on the comment
            // line of a multi-line statement still works.
            allows[line].extend(rules);
        }
    }
    allows
}

/// Extracts the rule list from a comment, if it is an allow pragma.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let rest = comment.split("af-audit:").nth(1)?;
    let inner = rest.trim().strip_prefix("allow(")?;
    let inner = inner.split(')').next()?;
    Some(
        inner
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> String {
        scrub(src).lines.join("\n")
    }

    #[test]
    fn strings_are_blanked_but_code_kept() {
        let s = code(r#"let x = "a.unwrap()"; y.unwrap();"#);
        assert!(!s[..s.find(';').unwrap()].contains("unwrap"));
        assert!(s.contains("y.unwrap();"));
        // Columns are preserved exactly.
        assert_eq!(s.len(), r#"let x = "a.unwrap()"; y.unwrap();"#.len());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = code(r#"let x = "she said \"hi\".unwrap()"; z();"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("z();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = code(r##"let x = r#"println!("wire")"#; real();"##);
        assert!(!s.contains("println"));
        assert!(s.contains("real();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = code(r##"let x = b"println!"; let y = br#"print!"#; go();"##);
        assert!(!s.contains("print"));
        assert!(s.contains("go();"));
    }

    #[test]
    fn multiline_strings_keep_line_structure() {
        let scrubbed = scrub("let x = \"line one\nline .unwrap() two\";\nafter();\n");
        assert_eq!(scrubbed.lines.len(), 4); // 3 lines + trailing empty
        assert!(!scrubbed.lines[1].contains("unwrap"));
        assert!(scrubbed.lines[2].contains("after();"));
    }

    #[test]
    fn line_comments_are_blanked() {
        let s = code("real(); // but .unwrap() in a comment is fine");
        assert!(s.contains("real();"));
        assert!(!s.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let s = code("a(); /* outer /* inner .unwrap() */ still comment */ b();");
        assert!(s.contains("a();"));
        assert!(s.contains("b();"));
        assert!(!s.contains("unwrap"));
    }

    #[test]
    fn block_comment_spanning_lines() {
        let scrubbed = scrub("before();\n/* one\ntwo .expect( three\n*/\nafter();\n");
        assert!(scrubbed.lines[0].contains("before"));
        assert!(!scrubbed.lines.join("\n").contains("expect"));
        assert!(scrubbed.lines[4].contains("after"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = code("fn f<'a>(x: &'a str) -> &'a str { 'l: loop { break 'l; } }");
        // If the scanner misread `'a` as an unterminated char literal the
        // rest of the line would be blanked.
        assert!(s.contains("loop"));
        assert!(s.contains("break"));
    }

    #[test]
    fn char_literals_including_escapes() {
        let s = code(r"let a = '}'; let b = '\n'; let c = '\u{1F600}'; done();");
        assert!(!s.contains('}')); // the brace lived inside a char literal
        assert!(s.contains("done();"));
    }

    #[test]
    fn byte_char_literal() {
        let s = code(r"let a = b'x'; let q = b'\''; done();");
        assert!(s.contains("done();"));
        assert!(!s.contains('x'));
    }

    #[test]
    fn ident_ending_in_r_or_b_is_not_a_prefix() {
        let s = code(r#"var"text".len(); grab"more";"#);
        // `var` and `grab` end with r/b but are identifiers, so the quotes
        // right after them are ordinary strings.
        assert!(s.contains("var"));
        assert!(s.contains("grab"));
        assert!(!s.contains("text"));
        assert!(!s.contains("more"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scrub(src);
        assert!(!s.in_test[0]);
        assert!(s.in_test[1] && s.in_test[2] && s.in_test[3] && s.in_test[4]);
        assert!(!s.in_test[5]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let s = scrub("#[cfg(not(test))]\nfn shipped() { x.unwrap(); }\n");
        assert!(!s.in_test[1]);
    }

    #[test]
    fn trailing_pragma_applies_to_its_line() {
        let s = scrub("x.unwrap(); // af-audit: allow(no-unwrap-in-lib)\ny.unwrap();\n");
        assert!(s.allowed(0, "no-unwrap-in-lib"));
        assert!(!s.allowed(1, "no-unwrap-in-lib"));
    }

    #[test]
    fn standalone_pragma_applies_to_next_code_line() {
        let s = scrub(
            "// af-audit: allow(no-unwrap-in-lib, no-stdout-in-lib)\n\nx.unwrap();\ny.unwrap();\n",
        );
        assert!(s.allowed(2, "no-unwrap-in-lib"));
        assert!(s.allowed(2, "no-stdout-in-lib"));
        assert!(!s.allowed(3, "no-unwrap-in-lib"));
    }

    #[test]
    fn non_pragma_comments_are_ignored() {
        let s = scrub("// plain comment about allow(things)\nx.unwrap();\n");
        assert!(!s.allowed(1, "no-unwrap-in-lib"));
    }
}
