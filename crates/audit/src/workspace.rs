//! Workspace file discovery and path classification.
//!
//! The walker finds every `.rs` file under the repo root, skipping build
//! output (`target/`), the vendored dependency shims (`vendor/` — external
//! code held to its own standards), seeded-violation fixtures
//! (`fixtures/`), and VCS internals. Classification is purely lexical on
//! the repo-relative path; rules decide applicability from it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A discovered source file with its repo-relative path (always
/// `/`-separated) and classification.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated (stable across platforms).
    pub rel: String,
    /// Absolute path on disk.
    pub abs: PathBuf,
    pub kind: PathKind,
}

/// Where in the workspace a file sits, for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Library code: `crates/*/src/**` or root `src/**`, minus binaries.
    Lib,
    /// Binary entry points: `src/main.rs` or `src/bin/**`.
    Bin,
    /// Integration tests, benches, examples, build scripts.
    Test,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", ".github"];

/// Walks `root` and returns every classified `.rs` file, sorted by path.
///
/// # Errors
/// Propagates filesystem errors from the walk.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let kind = classify(&rel);
            files.push(SourceFile {
                rel,
                abs: path,
                kind,
            });
        }
    }
    Ok(())
}

/// Classifies a repo-relative `/`-separated path.
#[must_use]
pub fn classify(rel: &str) -> PathKind {
    let in_tree = |marker: &str| rel.starts_with(marker) || rel.contains(&format!("/{marker}"));
    if in_tree("tests/") || in_tree("benches/") || in_tree("examples/") || rel.ends_with("build.rs")
    {
        return PathKind::Test;
    }
    if rel.ends_with("src/main.rs") || rel.contains("src/bin/") {
        return PathKind::Bin;
    }
    PathKind::Lib
}

/// The crate a path belongs to (`"graph"` for `crates/graph/...`), or the
/// root package.
#[must_use]
pub fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("amnesiac-flooding")
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
#[must_use]
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/graph/src/graph.rs"), PathKind::Lib);
        assert_eq!(classify("src/lib.rs"), PathKind::Lib);
        assert_eq!(classify("crates/serve/src/main.rs"), PathKind::Bin);
        assert_eq!(
            classify("crates/serve/src/bin/bench_serve.rs"),
            PathKind::Bin
        );
        assert_eq!(classify("crates/serve/tests/stress.rs"), PathKind::Test);
        assert_eq!(classify("tests/doc_links.rs"), PathKind::Test);
        assert_eq!(classify("examples/figure1.rs"), PathKind::Test);
        assert_eq!(classify("crates/bench/benches/flooding.rs"), PathKind::Test);
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/graph/src/graph.rs"), "graph");
        assert_eq!(crate_of("src/lib.rs"), "amnesiac-flooding");
        assert_eq!(crate_of("tests/doc_links.rs"), "amnesiac-flooding");
    }
}
