//! Cross-artifact consistency: the wire surface is declared once in source
//! and mirrored by hand in PROTOCOL.md, README.md, ARCHITECTURE.md, and the
//! CI validators. This module parses the source of truth out of the code —
//! the `Request` / `Verb` enums, the `api::code` error constants, and the
//! `*SCHEMA_VERSION` literals — and asserts every mirror agrees, so drift
//! is a test failure instead of a stale document.
//!
//! Finding codes: `AF101` (PROTOCOL.md verb sections), `AF102` (PROTOCOL.md
//! error table), `AF103` (schema-version drift), `AF104` (metrics verb-row
//! identity). A parse failure — the marker an extractor anchors on has
//! moved — is itself a finding, never a silent pass.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::scrub;
use crate::rules::Finding;

/// Relative paths of every artifact the checker reads.
pub const ARTIFACT_PATHS: &[&str] = &[
    "crates/serve/src/protocol.rs",
    "crates/serve/src/metrics.rs",
    "crates/core/src/api.rs",
    "crates/analysis/src/bench.rs",
    "crates/core/src/obs.rs",
    "crates/serve/src/bin/bench_serve.rs",
    "PROTOCOL.md",
    "README.md",
    "ARCHITECTURE.md",
    ".github/workflows/ci.yml",
];

/// The loaded artifact texts, in [`ARTIFACT_PATHS`] order. Kept as plain
/// strings so tests can check doctored copies without touching disk.
pub struct Artifacts {
    pub protocol_rs: String,
    pub metrics_rs: String,
    pub api_rs: String,
    pub bench_rs: String,
    pub obs_rs: String,
    pub bench_serve_rs: String,
    pub protocol_md: String,
    pub readme_md: String,
    pub architecture_md: String,
    pub ci_yml: String,
}

impl Artifacts {
    /// Reads every artifact under `root`.
    ///
    /// # Errors
    /// Fails if any artifact file is missing or unreadable.
    pub fn load(root: &Path) -> io::Result<Self> {
        let read = |rel: &str| fs::read_to_string(root.join(rel));
        Ok(Self {
            protocol_rs: read(ARTIFACT_PATHS[0])?,
            metrics_rs: read(ARTIFACT_PATHS[1])?,
            api_rs: read(ARTIFACT_PATHS[2])?,
            bench_rs: read(ARTIFACT_PATHS[3])?,
            obs_rs: read(ARTIFACT_PATHS[4])?,
            bench_serve_rs: read(ARTIFACT_PATHS[5])?,
            protocol_md: read(ARTIFACT_PATHS[6])?,
            readme_md: read(ARTIFACT_PATHS[7])?,
            architecture_md: read(ARTIFACT_PATHS[8])?,
            ci_yml: read(ARTIFACT_PATHS[9])?,
        })
    }
}

/// Runs every consistency check, returning one finding per disagreement.
#[must_use]
pub fn check(a: &Artifacts) -> Vec<Finding> {
    let mut out = Vec::new();
    let requests = enum_variants(&a.protocol_rs, "pub enum Request");
    let verbs = enum_variants(&a.metrics_rs, "pub enum Verb");
    check_verb_rows(a, &requests, &verbs, &mut out);
    check_protocol_md(a, &requests, &mut out);
    check_error_codes(a, &mut out);
    check_schema_versions(a, &mut out);
    out
}

fn finding(code: &'static str, rule: &'static str, path: &str, message: String) -> Finding {
    Finding {
        code,
        rule,
        path: path.to_owned(),
        line: 0,
        message,
    }
}

// ---------------------------------------------------------------- parsing

/// Variant names of the first enum whose declaration line contains
/// `marker`, via brace matching on scrubbed text (comments and string
/// literals cannot confuse it). Empty if the marker is gone.
fn enum_variants(src: &str, marker: &str) -> Vec<String> {
    let scrubbed = scrub(src);
    let Some((start, end)) = region(&scrubbed.lines, marker) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for line in &scrubbed.lines[start..=end] {
        let trimmed = line.trim();
        // Variants sit at brace depth 1 (inside the enum body only).
        if depth == 1 && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.chars().next().is_some_and(char::is_uppercase) {
                variants.push(name);
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    variants
}

/// 0-based `[start, end]` line range of the brace block opened on (or
/// after) the first line containing `marker`.
fn region(lines: &[String], marker: &str) -> Option<(usize, usize)> {
    let start = lines.iter().position(|l| l.contains(marker))?;
    let mut depth = 0i32;
    let mut opened = false;
    for (idx, line) in lines.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start, idx));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// `Verb::X` identifiers listed in the `pub const ALL` array.
fn verb_all_entries(metrics_rs: &str) -> Vec<String> {
    let scrubbed = scrub(metrics_rs);
    let Some(start) = scrubbed
        .lines
        .iter()
        .position(|l| l.contains("pub const ALL"))
    else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in &scrubbed.lines[start..] {
        let mut rest = line.as_str();
        while let Some(pos) = rest.find("Verb::") {
            rest = &rest[pos + "Verb::".len()..];
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                entries.push(name);
            }
        }
        if line.contains("];") {
            break;
        }
    }
    entries
}

/// `(variant, wire name)` pairs from the `Verb::name()` match arms, parsed
/// from raw lines (the wire names are string literals, which scrubbing
/// blanks) inside the scrub-located `fn name` region.
fn verb_wire_names(metrics_rs: &str) -> Vec<(String, String)> {
    let scrubbed = scrub(metrics_rs);
    let Some((start, end)) = region(&scrubbed.lines, "fn name") else {
        return Vec::new();
    };
    let raw: Vec<&str> = metrics_rs.split('\n').collect();
    let mut pairs = Vec::new();
    let last = end.min(raw.len().saturating_sub(1));
    for (idx, &line) in raw.iter().enumerate().take(last + 1).skip(start) {
        // Only lines that are code (not comment text) can declare an arm.
        if !scrubbed.lines[idx].contains("Verb::") {
            continue;
        }
        let Some(pos) = line.find("Verb::") else {
            continue;
        };
        let variant: String = line[pos + "Verb::".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let Some(q1) = line.find('"') else { continue };
        let Some(q2) = line[q1 + 1..].find('"') else {
            continue;
        };
        pairs.push((variant, line[q1 + 1..q1 + 1 + q2].to_owned()));
    }
    pairs
}

/// `(CONST_NAME, "wire string")` pairs from `pub mod code` in api.rs.
fn error_codes(api_rs: &str) -> Vec<(String, String)> {
    let scrubbed = scrub(api_rs);
    let Some((start, end)) = region(&scrubbed.lines, "pub mod code") else {
        return Vec::new();
    };
    let raw: Vec<&str> = api_rs.split('\n').collect();
    let mut codes = Vec::new();
    let last = end.min(raw.len().saturating_sub(1));
    for (idx, &line) in raw.iter().enumerate().take(last + 1).skip(start) {
        if !scrubbed.lines[idx].contains("pub const ") {
            continue;
        }
        let line = line.trim();
        let Some(rest) = line.strip_prefix("pub const ") else {
            continue;
        };
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let Some(q1) = line.find('"') else { continue };
        let Some(q2) = line[q1 + 1..].find('"') else {
            continue;
        };
        codes.push((name, line[q1 + 1..q1 + 1 + q2].to_owned()));
    }
    codes
}

/// The integer assigned to `marker` (e.g. `SCHEMA_VERSION: u32 =`) on a
/// code line of `src`, if present.
fn const_u32(src: &str, marker: &str) -> Option<u32> {
    let scrubbed = scrub(src);
    for line in &scrubbed.lines {
        if let Some(pos) = line.find(marker) {
            let digits: String = line[pos + marker.len()..]
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(char::is_ascii_digit)
                .collect();
            return digits.parse().ok();
        }
    }
    None
}

/// Every `N` appearing as `needle` + integer in `text` (e.g. all values of
/// `["schema_version"] == N` in ci.yml).
fn ints_after(text: &str, needle: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let digits: String = rest
            .chars()
            .skip_while(|c| *c == ' ')
            .take_while(char::is_ascii_digit)
            .collect();
        if let Ok(n) = digits.parse() {
            out.push(n);
        }
    }
    out
}

// ----------------------------------------------------------------- checks

/// The PR-9 `requests_total == Σ per-verb` identity, checked statically:
/// every `Request` variant has a `Verb` row, `Rejected` covers the rest,
/// `ALL` / `VERBS` / the wire-name arms cover the enum exactly, and the CI
/// validators pin the same row count.
fn check_verb_rows(a: &Artifacts, requests: &[String], verbs: &[String], out: &mut Vec<Finding>) {
    const PATH: &str = "crates/serve/src/metrics.rs";
    const RULE: &str = "metrics-verb-rows";
    if requests.is_empty() {
        out.push(finding(
            "AF104",
            RULE,
            "crates/serve/src/protocol.rs",
            "could not parse `pub enum Request` variants".to_owned(),
        ));
        return;
    }
    if verbs.is_empty() {
        out.push(finding(
            "AF104",
            RULE,
            PATH,
            "could not parse `pub enum Verb` variants".to_owned(),
        ));
        return;
    }
    let verb_set: BTreeSet<&str> = verbs.iter().map(String::as_str).collect();
    for r in requests {
        if !verb_set.contains(r.as_str()) {
            out.push(finding(
                "AF104",
                RULE,
                PATH,
                format!("Request variant `{r}` has no Verb metrics row — requests_total would exceed the per-verb sum"),
            ));
        }
    }
    if !verb_set.contains("Rejected") {
        out.push(finding(
            "AF104",
            RULE,
            PATH,
            "Verb enum lost the `Rejected` row that makes the per-verb sum unconditional"
                .to_owned(),
        ));
    }
    let request_set: BTreeSet<&str> = requests.iter().map(String::as_str).collect();
    for v in verbs {
        if v != "Rejected" && !request_set.contains(v.as_str()) {
            out.push(finding(
                "AF104",
                RULE,
                PATH,
                format!("Verb `{v}` has no matching Request variant (stale row)"),
            ));
        }
    }
    match const_u32(&a.metrics_rs, "const VERBS: usize =") {
        Some(n) if n as usize == verbs.len() => {}
        got => out.push(finding(
            "AF104",
            RULE,
            PATH,
            format!(
                "`const VERBS` is {got:?} but the Verb enum has {} variants",
                verbs.len()
            ),
        )),
    }
    let all = verb_all_entries(&a.metrics_rs);
    let all_set: BTreeSet<&str> = all.iter().map(String::as_str).collect();
    if all.len() != verbs.len() || all_set != verb_set {
        out.push(finding(
            "AF104",
            RULE,
            PATH,
            format!("`Verb::ALL` lists {all:?} but the enum declares {verbs:?}"),
        ));
    }
    let names = verb_wire_names(&a.metrics_rs);
    let named: BTreeSet<&str> = names.iter().map(|(v, _)| v.as_str()).collect();
    if named != verb_set {
        out.push(finding(
            "AF104",
            RULE,
            PATH,
            format!("`Verb::name()` covers {named:?} but the enum declares {verb_set:?}"),
        ));
    }
    let wires: BTreeSet<&str> = names.iter().map(|(_, w)| w.as_str()).collect();
    if wires.len() != names.len() {
        out.push(finding(
            "AF104",
            RULE,
            PATH,
            "duplicate wire names in `Verb::name()`".to_owned(),
        ));
    }
    // CI validators pin the row count end-to-end.
    for needle in ["len(names) ==", "len(report[\"verbs\"]) =="] {
        for n in ints_after(&a.ci_yml, needle) {
            if n as usize != verbs.len() {
                out.push(finding(
                    "AF104",
                    RULE,
                    ".github/workflows/ci.yml",
                    format!(
                        "CI asserts `{needle} {n}` but the Verb enum has {} rows",
                        verbs.len()
                    ),
                ));
            }
        }
    }
}

/// PROTOCOL.md documents every verb as a `### `Name`` section.
fn check_protocol_md(a: &Artifacts, requests: &[String], out: &mut Vec<Finding>) {
    for r in requests {
        let heading = format!("### `{r}`");
        if !a.protocol_md.contains(&heading) {
            out.push(finding(
                "AF101",
                "protocol-verb-docs",
                "PROTOCOL.md",
                format!("verb `{r}` has no `{heading}` section"),
            ));
        }
    }
}

/// PROTOCOL.md's error table documents exactly the `api::code` constants.
fn check_error_codes(a: &Artifacts, out: &mut Vec<Finding>) {
    const RULE: &str = "protocol-error-docs";
    let codes = error_codes(&a.api_rs);
    if codes.is_empty() {
        out.push(finding(
            "AF102",
            RULE,
            "crates/core/src/api.rs",
            "could not parse `pub mod code` error constants".to_owned(),
        ));
        return;
    }
    for (name, wire) in &codes {
        let row = format!("| `{wire}` |");
        if !a.protocol_md.contains(&row) {
            out.push(finding(
                "AF102",
                RULE,
                "PROTOCOL.md",
                format!("error code `{wire}` (api::code::{name}) has no row in the Errors table"),
            ));
        }
    }
    // Reverse direction: every documented code must still exist in source.
    let wire_set: BTreeSet<&str> = codes.iter().map(|(_, w)| w.as_str()).collect();
    let in_errors = a
        .protocol_md
        .split("## Errors")
        .nth(1)
        .unwrap_or("")
        .split("\n## ")
        .next()
        .unwrap_or("");
    for line in in_errors.split('\n') {
        let Some(rest) = line.trim().strip_prefix("| `") else {
            continue;
        };
        let Some(code) = rest.split('`').next() else {
            continue;
        };
        if code.contains(' ') {
            continue; // table header or prose, not a code row
        }
        if !wire_set.contains(code) {
            out.push(finding(
                "AF102",
                RULE,
                "PROTOCOL.md",
                format!("Errors table documents `{code}`, which is not an api::code constant"),
            ));
        }
    }
}

/// Schema-version literals cited in README / ARCHITECTURE / CI match the
/// constants in source.
fn check_schema_versions(a: &Artifacts, out: &mut Vec<Finding>) {
    const RULE: &str = "schema-version-drift";
    let bench = const_u32(&a.bench_rs, "pub const SCHEMA_VERSION: u32 =");
    let trace = const_u32(&a.obs_rs, "pub const TRACE_SCHEMA_VERSION: u32 =");
    let serve = const_u32(&a.bench_serve_rs, "const SERVE_BENCH_SCHEMA_VERSION: u32 =");
    let mut missing = |what: &str, path: &str| {
        out.push(finding(
            "AF103",
            RULE,
            path,
            format!("could not parse `{what}`"),
        ));
    };
    let (Some(bench), Some(trace), Some(serve)) = (bench, trace, serve) else {
        if bench.is_none() {
            missing("SCHEMA_VERSION", "crates/analysis/src/bench.rs");
        }
        if trace.is_none() {
            missing("TRACE_SCHEMA_VERSION", "crates/core/src/obs.rs");
        }
        if serve.is_none() {
            missing(
                "SERVE_BENCH_SCHEMA_VERSION",
                "crates/serve/src/bin/bench_serve.rs",
            );
        }
        return;
    };

    // README: the schema heading and the top-level field table both cite it.
    for needle in ["schema (version ", "| `schema_version` | `"] {
        for n in ints_after(&a.readme_md, needle) {
            if n != bench {
                out.push(finding(
                    "AF103",
                    RULE,
                    "README.md",
                    format!("README cites bench schema {n} but SCHEMA_VERSION is {bench}"),
                ));
            }
        }
    }
    // ARCHITECTURE + PROTOCOL-adjacent docs cite the trace schema as `"v":N`.
    for n in ints_after(&a.architecture_md, "`\"v\":") {
        if n != trace {
            out.push(finding(
                "AF103",
                RULE,
                "ARCHITECTURE.md",
                format!("ARCHITECTURE cites trace schema {n} but TRACE_SCHEMA_VERSION is {trace}"),
            ));
        }
    }
    // CI: every `schema_version` assert must match one of the two bench
    // schemas, every `"v"` assert the trace schema — and each constant must
    // be pinned by at least one assert so deleting the check also fails.
    let ci_schema = ints_after(&a.ci_yml, "[\"schema_version\"] ==");
    for &n in &ci_schema {
        if n != bench && n != serve {
            out.push(finding(
                "AF103",
                RULE,
                ".github/workflows/ci.yml",
                format!("CI asserts schema_version == {n}, matching neither SCHEMA_VERSION ({bench}) nor SERVE_BENCH_SCHEMA_VERSION ({serve})"),
            ));
        }
    }
    for (version, name) in [
        (bench, "SCHEMA_VERSION"),
        (serve, "SERVE_BENCH_SCHEMA_VERSION"),
    ] {
        if !ci_schema.contains(&version) {
            out.push(finding(
                "AF103",
                RULE,
                ".github/workflows/ci.yml",
                format!("no CI validator asserts schema_version == {version} ({name})"),
            ));
        }
    }
    let ci_trace = ints_after(&a.ci_yml, "[\"v\"] ==");
    if ci_trace.is_empty() {
        out.push(finding(
            "AF103",
            RULE,
            ".github/workflows/ci.yml",
            "no CI validator asserts the trace schema version".to_owned(),
        ));
    }
    for n in ci_trace {
        if n != trace {
            out.push(finding(
                "AF103",
                RULE,
                ".github/workflows/ci.yml",
                format!("CI asserts trace v == {n} but TRACE_SCHEMA_VERSION is {trace}"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_artifacts() -> Artifacts {
        Artifacts {
            protocol_rs: "pub enum Request {\n    #[serde(rename_all = \"x\")]\n    Load { name: String },\n    Flood(u32),\n    Shutdown,\n}\n".to_owned(),
            metrics_rs: "pub enum Verb {\n    Load,\n    Flood,\n    Shutdown,\n    Rejected,\n}\nconst VERBS: usize = 4;\nimpl Verb {\n    pub const ALL: [Verb; VERBS] = [Verb::Load, Verb::Flood, Verb::Shutdown, Verb::Rejected];\n    pub fn name(self) -> &'static str {\n        match self {\n            Verb::Load => \"load\",\n            Verb::Flood => \"flood\",\n            Verb::Shutdown => \"shutdown\",\n            Verb::Rejected => \"rejected\",\n        }\n    }\n}\n".to_owned(),
            api_rs: "pub mod code {\n    pub const BAD_REQUEST: &str = \"bad_request\";\n    pub const NOT_FOUND: &str = \"not_found\";\n}\n".to_owned(),
            bench_rs: "pub const SCHEMA_VERSION: u32 = 6;\n".to_owned(),
            obs_rs: "pub const TRACE_SCHEMA_VERSION: u32 = 1;\n".to_owned(),
            bench_serve_rs: "const SERVE_BENCH_SCHEMA_VERSION: u32 = 2;\n".to_owned(),
            protocol_md: "## Verbs\n### `Load` — x\n### `Flood` — y\n### `Shutdown` — z\n## Errors\n| code | meaning |\n| `bad_request` | b |\n| `not_found` | n |\n## Next\n".to_owned(),
            readme_md: "### The schema (version 6)\n| `schema_version` | `6` |\n".to_owned(),
            architecture_md: "trace (`\"v\":1`)\n".to_owned(),
            ci_yml: "assert report[\"schema_version\"] == 6\nassert report[\"schema_version\"] == 2\nassert all(l[\"v\"] == 1 for l in lines)\nassert len(names) == 4\nassert len(report[\"verbs\"]) == 4\n".to_owned(),
        }
    }

    #[test]
    fn clean_artifacts_pass() {
        let f = check(&fake_artifacts());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn removed_verb_section_fails() {
        let mut a = fake_artifacts();
        a.protocol_md = a.protocol_md.replace("### `Flood` — y\n", "");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF101" && f.message.contains("Flood")),
            "{f:?}"
        );
    }

    #[test]
    fn undocumented_error_code_fails() {
        let mut a = fake_artifacts();
        a.protocol_md = a.protocol_md.replace("| `not_found` | n |\n", "");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF102" && f.message.contains("not_found")),
            "{f:?}"
        );
    }

    #[test]
    fn stale_documented_error_code_fails() {
        let mut a = fake_artifacts();
        a.protocol_md.push_str("| `gone_code` | stale |\n");
        // The extra row lands in `## Next`, outside the Errors section.
        a.protocol_md = a.protocol_md.replace("## Next\n", "");
        a.protocol_md.push_str("| `gone_code` | stale |\n");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF102" && f.message.contains("gone_code")),
            "{f:?}"
        );
    }

    #[test]
    fn schema_bump_without_docs_fails() {
        let mut a = fake_artifacts();
        a.bench_rs = "pub const SCHEMA_VERSION: u32 = 7;\n".to_owned();
        let f = check(&a);
        assert!(
            f.iter().any(|f| f.code == "AF103" && f.path == "README.md"),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|f| f.code == "AF103" && f.path.ends_with("ci.yml")),
            "{f:?}"
        );
    }

    #[test]
    fn ci_trace_version_drift_fails() {
        let mut a = fake_artifacts();
        a.ci_yml = a.ci_yml.replace("l[\"v\"] == 1", "l[\"v\"] == 3");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF103" && f.message.contains("trace v == 3")),
            "{f:?}"
        );
    }

    #[test]
    fn request_variant_without_verb_row_fails() {
        let mut a = fake_artifacts();
        a.protocol_rs = a
            .protocol_rs
            .replace("    Shutdown,\n", "    Shutdown,\n    Freeze,\n");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF104" && f.message.contains("Freeze")),
            "{f:?}"
        );
    }

    #[test]
    fn verbs_const_drift_fails() {
        let mut a = fake_artifacts();
        a.metrics_rs = a
            .metrics_rs
            .replace("const VERBS: usize = 4;", "const VERBS: usize = 5;");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF104" && f.message.contains("VERBS")),
            "{f:?}"
        );
    }

    #[test]
    fn missing_name_arm_fails() {
        let mut a = fake_artifacts();
        a.metrics_rs = a
            .metrics_rs
            .replace("            Verb::Rejected => \"rejected\",\n", "");
        let f = check(&a);
        // The now-unparseable arm shows up as name() coverage drift.
        assert!(
            f.iter()
                .any(|f| f.code == "AF104" && f.message.contains("name()")),
            "{f:?}"
        );
    }

    #[test]
    fn ci_verb_row_count_drift_fails() {
        let mut a = fake_artifacts();
        a.ci_yml = a.ci_yml.replace("len(names) == 4", "len(names) == 3");
        let f = check(&a);
        assert!(
            f.iter()
                .any(|f| f.code == "AF104" && f.path.ends_with("ci.yml")),
            "{f:?}"
        );
    }
}
