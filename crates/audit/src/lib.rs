//! `af-audit`: workspace static analysis for the amnesiac-flooding repo.
//!
//! Two analyzers, one report:
//!
//! * **Source lints** ([`rules`], backed by the [`lexer`] scanner): repo
//!   invariants — no panics or stray stdout in library code, scoped
//!   threads only, explicit atomic orderings, no lossy id casts — enforced
//!   as named rules with stable `AF0xx` codes and
//!   `// af-audit: allow(rule)` suppression pragmas.
//! * **Cross-artifact consistency** ([`consistency`] + [`docs`]): the
//!   `Request`/`Verb` enums, `api::code` constants, and schema-version
//!   literals are parsed out of source and checked against PROTOCOL.md,
//!   README.md, ARCHITECTURE.md, and the CI validators, alongside the
//!   Markdown link/anchor check (`AF1xx` codes).
//!
//! The workspace self-audit test asserts zero findings, so every invariant
//! here fails `cargo test` the moment a change violates it.

pub mod consistency;
pub mod docs;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use rules::Finding;

/// Runs source lints over every workspace `.rs` file under `root`.
///
/// # Errors
/// Propagates filesystem errors from the walk or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace::discover(root)? {
        let src = fs::read_to_string(&file.abs)?;
        findings.extend(rules::lint_file(&file.rel, file.kind, &src));
    }
    Ok(findings)
}

/// Runs the full audit: source lints, cross-artifact consistency, and doc
/// links. Zero findings means the workspace holds every invariant.
///
/// # Errors
/// Propagates filesystem errors; a *parse* failure inside an artifact is a
/// finding, not an error.
pub fn audit(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = lint_workspace(root)?;
    let artifacts = consistency::Artifacts::load(root)?;
    findings.extend(consistency::check(&artifacts));
    findings.extend(docs::check_links(root));
    Ok(findings)
}
