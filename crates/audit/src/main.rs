//! `af-audit` CLI: run the workspace audit and print findings.
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
af-audit — workspace static analysis (lints + cross-artifact consistency)

USAGE:
    af-audit [--root DIR] [--format ndjson|text]

OPTIONS:
    --root DIR        workspace root (default: nearest [workspace] manifest)
    --format FORMAT   `text` (default) or `ndjson` (one finding per line)
    -h, --help        show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut ndjson = false;
    let mut argv = env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--format" => match argv.next().as_deref() {
                Some("ndjson") => ndjson = true,
                Some("text") => ndjson = false,
                other => return usage_error(&format!("unknown format {other:?}")),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match af_audit::workspace::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "af-audit: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match af_audit::audit(&root) {
        Ok(findings) if findings.is_empty() => {
            if !ndjson {
                println!("af-audit: clean");
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                if ndjson {
                    println!("{}", f.to_ndjson());
                } else {
                    println!("{}", f.to_text());
                }
            }
            if !ndjson {
                println!("af-audit: {} finding(s)", findings.len());
            }
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("af-audit: {err}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("af-audit: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
