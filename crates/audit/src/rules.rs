//! The source-lint rules.
//!
//! Each rule has a stable code (`AF001`…), a kebab-case name usable in
//! `// af-audit: allow(name)` pragmas, and a lexical check that runs over
//! the scrubbed (comment/string-blanked) text from [`crate::lexer`], so
//! tokens inside literals or comments never fire.
//!
//! | code  | rule                      | invariant                                            |
//! |-------|---------------------------|------------------------------------------------------|
//! | AF001 | `no-unwrap-in-lib`        | no `.unwrap()` / `.expect(` outside tests            |
//! | AF002 | `no-stdout-in-lib`        | no `println!` / `print!` in library paths (the wire) |
//! | AF003 | `stderr-via-log-sink`     | serve crate writes stderr only through `log_line`    |
//! | AF004 | `no-bare-spawn`           | no `thread::spawn`; scoped threads only              |
//! | AF005 | `explicit-atomic-ordering`| atomics name an `Ordering::`; `SeqCst` banned        |
//! | AF006 | `no-lossy-id-cast`        | no narrowing `as` casts in library paths             |

use crate::lexer::{scrub, Scrubbed};
use crate::workspace::PathKind;

/// One lint or consistency finding. Serialized as one NDJSON object per
/// line by [`Finding::to_ndjson`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, e.g. `AF001`.
    pub code: &'static str,
    /// Rule name, e.g. `no-unwrap-in-lib` (valid in allow pragmas).
    pub rule: &'static str,
    /// Repo-relative `/`-separated path (or artifact name for consistency
    /// findings).
    pub path: String,
    /// 1-based line number; 0 when the finding is not line-anchored.
    pub line: usize,
    pub message: String,
}

impl Finding {
    /// Renders the finding as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.code,
            self.rule,
            json_escape(&self.path),
            self.line,
            json_escape(&self.message)
        )
    }

    /// Renders the finding as a human-readable single line.
    #[must_use]
    pub fn to_text(&self) -> String {
        format!(
            "{}:{}: {} [{} {}]",
            self.path, self.line, self.message, self.code, self.rule
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

/// Lints one file's source text. `rel` is the repo-relative path used both
/// for scoping and reporting; the caller supplies the classification so
/// fixture tests can lint arbitrary content under a synthetic path.
#[must_use]
pub fn lint_file(rel: &str, kind: PathKind, src: &str) -> Vec<Finding> {
    // Integration tests, benches, and examples are exempt from every rule.
    if kind == PathKind::Test {
        return Vec::new();
    }
    let scrubbed = scrub(src);
    let mut findings = Vec::new();
    let serve_src = rel.starts_with("crates/serve/src/");
    let mentions_atomics = src.contains("Atomic") || src.contains("sync::atomic");

    for (idx, line) in scrubbed.lines.iter().enumerate() {
        if scrubbed.in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let lineno = idx + 1;
        let mut emit = |code, rule: &'static str, message: String| {
            if !scrubbed.allowed(idx, rule) {
                findings.push(Finding {
                    code,
                    rule,
                    path: rel.to_owned(),
                    line: lineno,
                    message,
                });
            }
        };

        if kind == PathKind::Lib {
            if line.contains(".unwrap()") || line.contains(".expect(") {
                emit(
                    "AF001",
                    "no-unwrap-in-lib",
                    "panicking `.unwrap()`/`.expect(` in library code; return a Result or justify with a pragma".to_owned(),
                );
            }
            if has_macro(line, "println") || has_macro(line, "print") {
                emit(
                    "AF002",
                    "no-stdout-in-lib",
                    "`println!`/`print!` in library code: stdout is the NDJSON wire".to_owned(),
                );
            }
            if let Some(ty) = narrowing_cast(line) {
                emit(
                    "AF006",
                    "no-lossy-id-cast",
                    format!("narrowing `as {ty}` cast can truncate; use `try_from` or a checked id accessor"),
                );
            }
        }

        if serve_src && (has_macro(line, "eprintln") || has_macro(line, "eprint")) {
            emit(
                "AF003",
                "stderr-via-log-sink",
                "serve crate writes stderr directly; route it through `log_line`".to_owned(),
            );
        }

        if line.contains("thread::spawn") {
            emit(
                "AF004",
                "no-bare-spawn",
                "bare `thread::spawn` breaks the structural-drain proof; use scoped threads"
                    .to_owned(),
            );
        }

        if mentions_atomics {
            if line.contains("SeqCst") {
                emit(
                    "AF005",
                    "explicit-atomic-ordering",
                    "`SeqCst` is banned: use the documented Relaxed/Acquire/Release conventions or a lock".to_owned(),
                );
            }
            for op in ATOMIC_OPS {
                for col in token_positions(line, op) {
                    if !call_names_ordering(&scrubbed, idx, col + op.len() - 1) {
                        emit(
                            "AF005",
                            "explicit-atomic-ordering",
                            format!(
                                "atomic `{}` without an explicit `Ordering::`",
                                &op[1..op.len() - 1]
                            ),
                        );
                    }
                }
            }
        }
    }
    findings
}

/// Atomic method tokens checked by AF005 (each includes the leading dot and
/// the opening paren).
const ATOMIC_OPS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_max(",
    ".fetch_min(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

/// `true` if `name!` occurs in `line` as a macro invocation (not as the
/// suffix of a longer identifier, so `print!` does not match `eprint!`).
fn has_macro(line: &str, name: &str) -> bool {
    let needle = format!("{name}!");
    let mut from = 0;
    while let Some(pos) = line[from..].find(&needle) {
        let at = from + pos;
        let prev = line[..at].chars().next_back();
        if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Byte offsets of every occurrence of `tok` in `line`.
fn token_positions(line: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        out.push(from + pos);
        from += pos + tok.len();
    }
    out
}

/// Starting at the `(` at `(line_idx, col)`, scans forward (across up to 20
/// lines) to the balancing `)` and reports whether the call's argument text
/// names an `Ordering::`.
fn call_names_ordering(scrubbed: &Scrubbed, line_idx: usize, col: usize) -> bool {
    let mut depth = 0i32;
    let mut text = String::new();
    for (n, line) in scrubbed.lines.iter().enumerate().skip(line_idx).take(20) {
        let start = if n == line_idx { col } else { 0 };
        for (i, c) in line.char_indices() {
            if i < start {
                continue;
            }
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return text.contains("Ordering::");
                    }
                }
                _ => text.push(c),
            }
        }
        text.push('\n');
    }
    // Unbalanced within the window: be conservative and report a finding.
    false
}

/// If `line` contains a narrowing `as <int>` cast, returns the target type.
fn narrowing_cast(line: &str) -> Option<&'static str> {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for col in token_positions(line, "as") {
        let prev_ok = line[..col]
            .chars()
            .next_back()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if !prev_ok {
            continue;
        }
        let rest = &line[col + 2..];
        let trimmed = rest.trim_start();
        if trimmed.len() == rest.len() && !rest.is_empty() {
            continue; // `as` glued to something: part of an identifier
        }
        let word: String = trimmed
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if let Some(ty) = NARROW.iter().find(|t| **t == word) {
            return Some(ty);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<Finding> {
        lint_file("crates/fake/src/lib.rs", PathKind::Lib, src)
    }

    #[test]
    fn unwrap_flagged_expect_err_not() {
        let f = lib("fn f() { a.unwrap(); b.expect_err(\"e\"); c.unwrap_or(3); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "AF001");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn print_does_not_match_eprint() {
        let f = lib("fn f() { eprintln!(\"ok\"); }\n");
        assert!(f.iter().all(|f| f.code != "AF002"), "{f:?}");
    }

    #[test]
    fn serve_eprintln_flagged() {
        let f = lint_file(
            "crates/serve/src/server.rs",
            PathKind::Lib,
            "fn f() { eprintln!(\"x\"); }\n",
        );
        assert!(f.iter().any(|f| f.code == "AF003"));
    }

    #[test]
    fn atomic_without_ordering() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); a.fetch_sub(1); }\n";
        let f = lib(src);
        assert_eq!(f.iter().filter(|f| f.code == "AF005").count(), 1);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn seqcst_banned() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &std::sync::atomic::AtomicBool) { a.fetch_or(true, Ordering::SeqCst); }\n";
        let f = lib(src);
        assert!(f
            .iter()
            .any(|f| f.code == "AF005" && f.message.contains("SeqCst")));
    }

    #[test]
    fn multiline_atomic_call_sees_ordering() {
        let src = "use std::sync::atomic::AtomicU64;\nfn f(a: &AtomicU64) {\n    a.compare_exchange(\n        0,\n        1,\n        Ordering::AcqRel,\n        Ordering::Acquire,\n    );\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn narrowing_cast_flagged_widening_not() {
        let f = lib("fn f(n: usize) -> u32 { let _ = n as u64; n as u32 }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "AF006");
        assert!(f[0].message.contains("as u32"));
    }

    #[test]
    fn cast_in_string_not_flagged() {
        assert!(lib("fn f() -> &'static str { \"n as u32\" }\n").is_empty());
    }

    #[test]
    fn pragma_suppresses() {
        let f = lib("fn f() { a.unwrap(); } // af-audit: allow(no-unwrap-in-lib)\n");
        assert!(f.is_empty());
    }

    #[test]
    fn tests_and_bins_are_scoped_out() {
        let src = "fn f() { a.unwrap(); println!(\"x\"); }\n";
        assert!(lint_file("crates/x/tests/t.rs", PathKind::Test, src).is_empty());
        let bin = lint_file("crates/x/src/main.rs", PathKind::Bin, src);
        assert!(
            bin.is_empty(),
            "bins may print usage and exit on error: {bin:?}"
        );
    }

    #[test]
    fn cfg_test_region_exempt() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { a.unwrap(); }\n}\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn spawn_flagged_scoped_not() {
        let f = lib("fn f() { std::thread::spawn(|| {}); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].code, "AF004");
        assert!(lib("fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n").is_empty());
    }

    #[test]
    fn ndjson_escapes() {
        let f = Finding {
            code: "AF001",
            rule: "no-unwrap-in-lib",
            path: "a\"b.rs".to_owned(),
            line: 3,
            message: "x\ny".to_owned(),
        };
        assert_eq!(
            f.to_ndjson(),
            "{\"code\":\"AF001\",\"rule\":\"no-unwrap-in-lib\",\"path\":\"a\\\"b.rs\",\"line\":3,\"message\":\"x\\ny\"}"
        );
    }
}
