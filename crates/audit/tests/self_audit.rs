//! The workspace self-audit: `cargo test` fails the moment any crate
//! violates a source lint or any artifact (PROTOCOL.md, README.md,
//! ARCHITECTURE.md, CI) drifts from the source of truth. This is the
//! tier-1 enforcement point; CI additionally runs the `af-audit` binary
//! so findings are published as an artifact.

use std::path::Path;

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let findings = af_audit::audit(&root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace audit found {} issue(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(af_audit::Finding::to_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
