//! Every rule is pinned to a seeded-violation fixture: the file under
//! `fixtures/` trips exactly the findings named in its doc comment, with
//! the expected rule code on the expected line. A rule that silently
//! stops firing (or starts firing elsewhere) fails here.

use af_audit::rules::{lint_file, Finding};
use af_audit::workspace::PathKind;

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as library code of an ordinary crate.
fn lint_as_lib(name: &str) -> Vec<Finding> {
    lint_file("crates/fixture/src/lib.rs", PathKind::Lib, &fixture(name))
}

/// Asserts the findings are exactly `(code, rule, line)`, in order.
fn assert_findings(found: &[Finding], expected: &[(&str, &str, usize)]) {
    let got: Vec<(&str, &str, usize)> = found.iter().map(|f| (f.code, f.rule, f.line)).collect();
    assert_eq!(got, expected, "full findings: {found:#?}");
}

#[test]
fn af001_unwrap_detected_at_line() {
    assert_findings(
        &lint_as_lib("af001_unwrap.rs"),
        &[("AF001", "no-unwrap-in-lib", 5)],
    );
}

#[test]
fn af002_stdout_detected_at_line() {
    assert_findings(
        &lint_as_lib("af002_stdout.rs"),
        &[("AF002", "no-stdout-in-lib", 5)],
    );
}

#[test]
fn af003_stderr_detected_only_under_serve_path() {
    let src = fixture("af003_stderr.rs");
    assert_findings(
        &lint_file("crates/serve/src/fixture.rs", PathKind::Lib, &src),
        &[("AF003", "stderr-via-log-sink", 5)],
    );
    // The same text in any other crate is fine: stderr is only funneled
    // through the log sink where CI parses the daemon's stderr stream.
    assert_findings(
        &lint_file("crates/core/src/fixture.rs", PathKind::Lib, &src),
        &[],
    );
}

#[test]
fn af004_spawn_detected_at_line() {
    assert_findings(
        &lint_as_lib("af004_spawn.rs"),
        &[("AF004", "no-bare-spawn", 5)],
    );
}

#[test]
fn af005_atomics_detected_at_lines() {
    assert_findings(
        &lint_as_lib("af005_atomics.rs"),
        &[
            ("AF005", "explicit-atomic-ordering", 6),
            ("AF005", "explicit-atomic-ordering", 7),
        ],
    );
}

#[test]
fn af006_cast_detected_at_line() {
    assert_findings(
        &lint_as_lib("af006_cast.rs"),
        &[("AF006", "no-lossy-id-cast", 5)],
    );
}

#[test]
fn pragma_fixture_is_clean() {
    assert_findings(&lint_as_lib("af001_allowed.rs"), &[]);
}

#[test]
fn bins_are_exempt_from_lib_only_rules() {
    for name in ["af001_unwrap.rs", "af002_stdout.rs", "af006_cast.rs"] {
        let f = lint_file("crates/fixture/src/main.rs", PathKind::Bin, &fixture(name));
        assert!(f.is_empty(), "{name} flagged in a bin: {f:?}");
    }
    // AF004 applies everywhere outside tests, binaries included.
    let f = lint_file(
        "crates/fixture/src/main.rs",
        PathKind::Bin,
        &fixture("af004_spawn.rs"),
    );
    assert_findings(&f, &[("AF004", "no-bare-spawn", 5)]);
}
