//! Seeded violation fixture: AF003 `stderr-via-log-sink`.
//! Linted under a synthetic `crates/serve/src/` path; the `eprintln!`
//! below must be reported on line 5, and nothing else.
fn fixture() {
    eprintln!("bypasses the single log sink");
}
