//! Seeded violation fixture: AF004 `no-bare-spawn`.
//! The detached `thread::spawn` below must be reported on line 5.

fn fixture() {
    std::thread::spawn(|| {});
}
