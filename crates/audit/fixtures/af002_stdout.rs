//! Seeded violation fixture: AF002 `no-stdout-in-lib`.
//! The `println!` below must be reported on line 5, and nothing else.

fn fixture() {
    println!("this would pollute the NDJSON wire");
}
