//! Seeded violation fixture: AF005 `explicit-atomic-ordering`.
//! Two findings: the `SeqCst` load on line 6 and the `fetch_add` with
//! no `Ordering::` argument on line 7.
use std::sync::atomic::{AtomicU64, Ordering};
fn fixture(a: &AtomicU64) -> u64 {
    let v = a.load(Ordering::SeqCst);
    a.fetch_add(1);
    v
}
