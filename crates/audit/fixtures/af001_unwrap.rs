//! Seeded violation fixture: AF001 `no-unwrap-in-lib`.
//! The `.unwrap()` below must be reported on line 5, and nothing else.

fn fixture() -> usize {
    "7".parse::<usize>().unwrap()
}
