//! Seeded violation fixture: AF006 `no-lossy-id-cast`.
//! The narrowing `as u32` below must be reported on line 5.

fn fixture(n: usize) -> u32 {
    n as u32
}
