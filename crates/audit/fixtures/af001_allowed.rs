//! Pragma fixture: the `.unwrap()` carries a justification pragma, so
//! the audit must report nothing for this file.

fn fixture() -> usize {
    // af-audit: allow(no-unwrap-in-lib): fixture demonstrating suppression
    "7".parse::<usize>().unwrap()
}
