//! The `amnesiac` subcommands, implemented as pure functions from parsed
//! arguments to output text (so they are unit-testable without a process
//! boundary).

use crate::args::Args;
use af_core::arbitrary::classify_all_configurations;
use af_core::detect::TopologyVerdict;
use af_core::{theory, trace, AmnesiacFlooding, AmnesiacFloodingProtocol, FloodEngine};
use af_engine::adversary::{BoundedDelay, DeliverAll, OneAtATime, PerHeadThrottle};
use af_engine::{certify, Certificate};
use af_graph::dynamic::ChurnSpec;
use af_graph::{algo, generators, io, Graph, NodeId, PartitionStrategy};
use std::fmt::Write as _;

/// Boxed error for command plumbing.
pub type CommandError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// Loads a graph from a file: graph6 if the content looks like a graph6
/// line, the `n <count>` edge-list format otherwise.
///
/// # Errors
///
/// Returns I/O or parse errors.
pub fn load_graph(path: &str) -> Result<Graph, CommandError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_graph(&text)?)
}

/// Parses graph text in either supported format (delegates to the shared
/// sniffing rule in [`af_graph::io::from_text`], which the daemon's
/// `Load` verb also uses).
///
/// # Errors
///
/// Returns the parse error of the format that was attempted.
pub fn parse_graph(text: &str) -> Result<Graph, af_graph::GraphError> {
    io::from_text(text)
}

/// Parses the shared engine-selection options: `--engine <spec>` (any
/// canonical [`FloodEngine`] string — `frontier`, `fast`,
/// `sharded[:k[:partitioner]]`, `dynamic[:churn]`, `bitlane` — exactly
/// what the bench JSON's `engine_spec` column and the wire protocol's
/// `engine` field accept), plus the legacy flag spellings `--threads N`,
/// `--partitioner contiguous|round-robin|bfs` (which imply and configure
/// a bare `--engine sharded`) and `--churn kind:rate_pm:seed` (which
/// selects the dynamic engine). The default engine is `frontier`;
/// contradictory combinations — sharding flags with a non-sharded or
/// already-parameterized engine spec, or `--churn` with any other engine
/// option — are rejected rather than silently ignored.
fn engine_choice(args: &Args) -> Result<FloodEngine, CommandError> {
    let threads: usize = args
        .parsed_or::<usize>("threads", af_core::DEFAULT_SHARD_THREADS)?
        .max(1);
    let strategy: PartitionStrategy = args.parsed_or("partitioner", PartitionStrategy::Bfs)?;
    let implied = args.option("threads").is_some() || args.option("partitioner").is_some();
    if let Some(spec) = args.option("churn") {
        if implied || args.option("engine").is_some() {
            return Err(
                "--churn runs on the dynamic engine; drop --engine/--threads/--partitioner".into(),
            );
        }
        let churn: ChurnSpec = spec.parse()?;
        return Ok(FloodEngine::Dynamic { churn });
    }
    match args.option("engine") {
        // Bare `sharded` takes its configuration from the flags.
        Some("sharded") => Ok(FloodEngine::Sharded { threads, strategy }),
        Some(spec) => {
            let engine: FloodEngine = spec.parse()?;
            if implied {
                return Err(match engine {
                    FloodEngine::Sharded { .. } => format!(
                        "--engine {spec} already fixes the shard configuration; \
                         drop --threads/--partitioner or use bare --engine sharded"
                    ),
                    _ => format!(
                        "--threads/--partitioner only apply to --engine sharded \
                         (drop --engine {spec})"
                    ),
                }
                .into());
            }
            Ok(engine)
        }
        None if implied => Ok(FloodEngine::Sharded { threads, strategy }),
        None => Ok(FloodEngine::Frontier),
    }
}

fn source_set(args: &Args, graph: &Graph) -> Result<Vec<NodeId>, CommandError> {
    if let Some(list) = args.list::<usize>("sources")? {
        return Ok(list.into_iter().map(NodeId::new).collect());
    }
    let s: usize = args.parsed_or("source", 0)?;
    if s >= graph.node_count() {
        return Err(format!("source {s} out of range (n = {})", graph.node_count()).into());
    }
    Ok(vec![NodeId::new(s)])
}

/// `amnesiac flood <file> [--source N | --sources a,b,c] [--max-rounds N]
/// [--engine <spec>] [--threads N]
/// [--partitioner contiguous|round-robin|bfs]
/// [--churn kind:rate_pm:seed] [--trace] [--trace-out FILE.jsonl]
/// [--receipts]`
///
/// `--engine` takes any canonical engine spec (`frontier`, `fast`,
/// `sharded[:k[:partitioner]]`, `dynamic[:churn]`, `bitlane`) — the same
/// strings the bench JSON records as `engine_spec` and the daemon accepts
/// on the wire, so a benchmark row replays verbatim.
///
/// `--churn` floods on the dynamic engine while a deterministic schedule
/// edits the topology at round boundaries; a capped run is then a finding
/// (churn can prevent termination), not an error.
///
/// `--trace-out FILE.jsonl` attaches an [`af_core::obs::NdjsonTraceWriter`]
/// and exports one schema-versioned JSON line per round. Before the file
/// is written the trace is **replayed** through
/// [`af_analysis::tracecheck`] and asserted equal to the run's own record
/// — a failing self-check is an error, not a warning.
///
/// # Errors
///
/// Returns file, parse, or argument errors, or a trace replay mismatch.
pub fn cmd_flood(args: &Args) -> Result<String, CommandError> {
    let path = args
        .positional(0)
        .ok_or("usage: amnesiac flood <file> [options]")?;
    let graph = load_graph(path)?;
    let sources = source_set(args, &graph)?;
    let engine = engine_choice(args)?;
    if matches!(engine, FloodEngine::Dynamic { .. }) && args.flag("trace") {
        // render_run replays the rounds on the static input graph, which
        // would contradict a churned run's record.
        return Err("--trace replays rounds on the static graph; drop it or drop --churn".into());
    }
    let mut builder =
        AmnesiacFlooding::multi_source(&graph, sources.iter().copied()).with_engine(engine);
    if let Some(cap) = args.option("max-rounds") {
        builder = builder.with_max_rounds(cap.parse().map_err(|_| "invalid --max-rounds")?);
    }
    let trace_path = args.option("trace-out");
    let trace_writer = trace_path.map(|_| {
        std::rc::Rc::new(std::cell::RefCell::new(
            af_core::obs::NdjsonTraceWriter::new(Vec::new()),
        ))
    });
    if let Some(writer) = &trace_writer {
        builder = builder.with_probe(writer.clone());
    }
    let run = builder.run();

    let mut out = String::new();
    if args.flag("trace") {
        out.push_str(&trace::render_run(&graph, &run));
    } else {
        let _ = writeln!(out, "graph: {graph}");
        match engine {
            FloodEngine::Sharded { threads, strategy } => {
                let effective = af_graph::partition::clamp_shard_count(graph.node_count(), threads);
                let _ = writeln!(out, "engine: sharded x{effective} ({strategy} partitioner)");
            }
            FloodEngine::Dynamic { churn } => {
                let _ = writeln!(out, "engine: dynamic (churn {churn})");
            }
            FloodEngine::BitLane => {
                // One flood occupies one of the 64 bit lanes; the engine
                // earns its keep in batches, but stays lane-exact solo.
                let _ = writeln!(out, "engine: bitlane (bit-parallel, 1 of 64 lanes)");
            }
            FloodEngine::Fast => {
                let _ = writeln!(out, "engine: fast (scan-all-arcs baseline)");
            }
            FloodEngine::Frontier => {}
        }
        match run.termination_round() {
            Some(t) => {
                let _ = writeln!(out, "terminated after round {t}");
            }
            None => {
                let _ = writeln!(
                    out,
                    "round cap reached after {} rounds",
                    run.rounds_executed()
                );
            }
        }
    }
    let _ = writeln!(out, "messages: {}", run.total_messages());
    // The run's node count, not the input graph's: join churn can grow
    // the node space mid-flood.
    let _ = writeln!(
        out,
        "informed nodes: {} / {}",
        run.informed_count(),
        run.node_count()
    );
    let _ = writeln!(out, "max receipts per node: {}", run.max_receive_count());
    if let (Some(trace_path), Some(writer)) = (trace_path, trace_writer) {
        // Self-verify before writing: replay the NDJSON trace and assert
        // it reproduces the run's record exactly (round-sets, receive
        // rounds, message counts, termination).
        let bytes = writer.borrow_mut().take_sink();
        // af-audit: allow(no-unwrap-in-lib): the trace writer only emits
        // NDJSON built from String fragments, so the sink is valid UTF-8
        let text = String::from_utf8(bytes).expect("trace writer emits UTF-8");
        af_analysis::tracecheck::check_trace(&text, &run)
            .map_err(|e| format!("trace self-check failed: {e}"))?;
        std::fs::write(trace_path, &text)?;
        let _ = writeln!(
            out,
            "trace: {} lines -> {trace_path} (replay verified)",
            text.lines().count()
        );
    }
    if args.flag("receipts") {
        out.push_str("receive schedule:\n");
        out.push_str(&trace::render_receipts(&graph, &run));
    }
    Ok(out)
}

/// `amnesiac predict <file> [--source N | --sources ...]` — the oracle,
/// no simulation.
///
/// # Errors
///
/// Returns file, parse, or argument errors.
pub fn cmd_predict(args: &Args) -> Result<String, CommandError> {
    let path = args
        .positional(0)
        .ok_or("usage: amnesiac predict <file> [options]")?;
    let graph = load_graph(path)?;
    let sources = source_set(args, &graph)?;
    let pred = theory::predict(&graph, sources.iter().copied());
    let mut out = String::new();
    let _ = writeln!(out, "graph: {graph}");
    let _ = writeln!(
        out,
        "predicted termination round: {}",
        pred.termination_round()
    );
    let _ = writeln!(out, "predicted messages: {}", pred.total_messages());
    if let Some(bound) = theory::upper_bound(&graph) {
        let _ = writeln!(out, "paper bound: {bound}");
    }
    Ok(out)
}

/// `amnesiac detect <file> [--source N]` — bipartiteness by flooding.
///
/// # Errors
///
/// Returns file, parse, or argument errors.
pub fn cmd_detect(args: &Args) -> Result<String, CommandError> {
    let path = args
        .positional(0)
        .ok_or("usage: amnesiac detect <file> [options]")?;
    let graph = load_graph(path)?;
    let sources = source_set(args, &graph)?;
    let verdict = af_core::detect::detect_bipartiteness(&graph, sources[0]);
    let mut out = String::new();
    match verdict {
        TopologyVerdict::Bipartite => {
            let _ = writeln!(out, "bipartite (no node received the message twice)");
        }
        TopologyVerdict::NonBipartite { witness, rounds } => {
            let _ = writeln!(
                out,
                "non-bipartite: node {witness} received at rounds {} and {} \
                 (odd closed walk witnessed)",
                rounds.0, rounds.1
            );
        }
    }
    Ok(out)
}

/// `amnesiac certify <file> [--adversary throttle|serial|deliver-all|bounded:K]
/// [--source N] [--max-ticks N]` — asynchronous (non-)termination.
///
/// # Errors
///
/// Returns file, parse, or argument errors.
pub fn cmd_certify(args: &Args) -> Result<String, CommandError> {
    let path = args
        .positional(0)
        .ok_or("usage: amnesiac certify <file> [options]")?;
    let graph = load_graph(path)?;
    let sources = source_set(args, &graph)?;
    let max_ticks: u64 = args.parsed_or("max-ticks", 100_000)?;
    let adv = args.option("adversary").unwrap_or("throttle");
    let srcs = sources.iter().copied();

    let cert = match adv {
        "throttle" => certify(
            &graph,
            AmnesiacFloodingProtocol,
            PerHeadThrottle,
            srcs,
            max_ticks,
        )?,
        "serial" => certify(
            &graph,
            AmnesiacFloodingProtocol,
            OneAtATime,
            srcs,
            max_ticks,
        )?,
        "deliver-all" => certify(
            &graph,
            AmnesiacFloodingProtocol,
            DeliverAll,
            srcs,
            max_ticks,
        )?,
        other => {
            let Some(k) = other.strip_prefix("bounded:").and_then(|k| k.parse().ok()) else {
                return Err(format!(
                    "unknown adversary '{other}' (use throttle, serial, deliver-all, bounded:K)"
                )
                .into());
            };
            certify(
                &graph,
                AmnesiacFloodingProtocol,
                BoundedDelay::new(k),
                srcs,
                max_ticks,
            )?
        }
    };

    Ok(match cert {
        Certificate::Terminated { last_active_tick } => {
            format!("terminates: last message delivered at tick {last_active_tick}\n")
        }
        Certificate::NonTerminating(l) => format!(
            "NON-TERMINATING (certified): configuration at tick {} recurs at tick {} \
             (period {})\n",
            l.first_visit_tick(),
            l.repeat_tick(),
            l.period()
        ),
        Certificate::Unresolved { ticks_executed } => {
            format!("unresolved after {ticks_executed} ticks (raise --max-ticks)\n")
        }
    })
}

/// `amnesiac census <file>` — exhaustive arbitrary-configuration census
/// (graphs with at most 12 edges).
///
/// # Errors
///
/// Returns file, parse, or size errors.
pub fn cmd_census(args: &Args) -> Result<String, CommandError> {
    let path = args.positional(0).ok_or("usage: amnesiac census <file>")?;
    let graph = load_graph(path)?;
    if graph.edge_count() > 12 {
        return Err(format!(
            "census is exhaustive over 4^m configurations; m = {} is too large (max 12)",
            graph.edge_count()
        )
        .into());
    }
    let census = classify_all_configurations(&graph);
    let mut out = String::new();
    let _ = writeln!(out, "graph: {graph}");
    let _ = writeln!(out, "configurations: {}", census.configurations());
    let _ = writeln!(out, "  terminating: {}", census.terminating());
    let _ = writeln!(out, "  cycling:     {}", census.cycling());
    let _ = writeln!(
        out,
        "max termination round: {}",
        census.max_termination_round()
    );
    let _ = writeln!(out, "max limit-cycle period: {}", census.max_period());
    let _ = writeln!(
        out,
        "node-initiated configurations all terminate: {}",
        census.node_initiated_all_terminate()
    );
    Ok(out)
}

/// `amnesiac tree <file> [--source N]` — extract the first-receipt
/// spanning tree (the intro's "flooding gives you rooted spanning trees").
///
/// # Errors
///
/// Returns file, parse, or argument errors.
pub fn cmd_tree(args: &Args) -> Result<String, CommandError> {
    let path = args
        .positional(0)
        .ok_or("usage: amnesiac tree <file> [options]")?;
    let graph = load_graph(path)?;
    let sources = source_set(args, &graph)?;
    let tree = af_core::spanning::spanning_tree(&graph, sources[0]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "spanning tree rooted at {} ({} nodes)",
        tree.root(),
        tree.len()
    );
    let _ = writeln!(out, "is a BFS tree: {}", tree.is_bfs_tree_of(&graph));
    for v in graph.nodes() {
        match (tree.parent(v), tree.depth(v)) {
            (Some(p), Some(d)) => {
                let _ = writeln!(out, "  {v}: parent {p}, depth {d}");
            }
            (None, Some(0)) => {
                let _ = writeln!(out, "  {v}: root");
            }
            _ => {
                let _ = writeln!(out, "  {v}: unreached");
            }
        }
    }
    Ok(out)
}

/// `amnesiac info <file>` — structural summary.
///
/// # Errors
///
/// Returns file or parse errors.
pub fn cmd_info(args: &Args) -> Result<String, CommandError> {
    let path = args.positional(0).ok_or("usage: amnesiac info <file>")?;
    let graph = load_graph(path)?;
    let mut out = String::new();
    let _ = writeln!(out, "nodes: {}", graph.node_count());
    let _ = writeln!(out, "edges: {}", graph.edge_count());
    let _ = writeln!(
        out,
        "degree: min {} / avg {:.2} / max {}",
        graph.min_degree(),
        graph.average_degree(),
        graph.max_degree()
    );
    let _ = writeln!(out, "connected: {}", algo::is_connected(&graph));
    let _ = writeln!(out, "bipartite: {}", algo::is_bipartite(&graph));
    // Diameter and radius each report their own `Option` — no arm relies
    // on another function's connectivity check, so no input can panic.
    match algo::diameter(&graph) {
        Some(d) => {
            let _ = writeln!(out, "diameter: {d}");
        }
        None => {
            let _ = writeln!(out, "diameter: infinite (disconnected)");
        }
    }
    match algo::radius(&graph) {
        Some(r) => {
            let _ = writeln!(out, "radius: {r}");
        }
        None => {
            let _ = writeln!(out, "radius: infinite (disconnected)");
        }
    }
    if let Some(bound) = theory::upper_bound(&graph) {
        let _ = writeln!(out, "flooding bound: {bound}");
    }
    if let Some(girth) = algo::girth(&graph) {
        let _ = writeln!(out, "girth: {girth}");
    }
    if let Some(og) = algo::odd_girth(&graph) {
        let _ = writeln!(out, "odd girth: {og}");
    }
    Ok(out)
}

/// `amnesiac gen <family> [params...] [--format edgelist|g6|dot]` —
/// generate a graph to stdout. Families: `path N`, `cycle N`,
/// `complete N`, `grid R C`, `hypercube D`, `petersen`, `wheel K`,
/// `barbell K`, `star N`, `friendship K`, `gnp N P SEED`, `tree N SEED`.
///
/// # Errors
///
/// Returns argument errors for unknown families or bad parameters.
pub fn cmd_gen(args: &Args) -> Result<String, CommandError> {
    let family = args
        .positional(0)
        .ok_or("usage: amnesiac gen <family> [params]")?;
    let p = |i: usize| -> Result<usize, CommandError> {
        args.positional(i)
            .ok_or_else(|| format!("{family}: missing parameter {i}").into())
            .and_then(|v| v.parse().map_err(|_| format!("bad parameter: {v}").into()))
    };
    let graph = match family {
        "path" => generators::path(p(1)?),
        "cycle" => generators::cycle(p(1)?),
        "complete" => generators::complete(p(1)?),
        "grid" => generators::grid(p(1)?, p(2)?),
        "hypercube" => {
            let d = p(1)?;
            generators::hypercube(u32::try_from(d).map_err(|_| format!("bad parameter: {d}"))?)
        }
        "petersen" => generators::petersen(),
        "wheel" => generators::wheel(p(1)?),
        "barbell" => generators::barbell(p(1)?),
        "star" => generators::star(p(1)?),
        "friendship" => generators::friendship(p(1)?),
        "gnp" => {
            let n = p(1)?;
            let prob: f64 = args
                .positional(2)
                .ok_or("gnp: missing probability")?
                .parse()
                .map_err(|_| "gnp: bad probability")?;
            let seed = p(3)? as u64;
            generators::gnp_connected(n, prob, seed)
        }
        "tree" => generators::random_tree(p(1)?, p(2)? as u64),
        "pa" => generators::preferential_attachment(p(1)?, p(2)?, p(3)? as u64),
        "rgg" => {
            let n = p(1)?;
            let radius: f64 = args
                .positional(2)
                .ok_or("rgg: missing radius")?
                .parse()
                .map_err(|_| "rgg: bad radius")?;
            generators::random_geometric(n, radius, p(3)? as u64)
        }
        "ws" => {
            let (n, k) = (p(1)?, p(2)?);
            let beta: f64 = args
                .positional(3)
                .ok_or("ws: missing beta")?
                .parse()
                .map_err(|_| "ws: bad beta")?;
            generators::watts_strogatz(n, k, beta, p(4)? as u64)
        }
        other => return Err(format!("unknown family '{other}'").into()),
    };
    Ok(match args.option("format").unwrap_or("edgelist") {
        "edgelist" => io::to_edge_list(&graph),
        "g6" => format!("{}\n", io::to_graph6(&graph)),
        "dot" => io::to_dot(&graph, family),
        other => return Err(format!("unknown format '{other}'").into()),
    })
}

/// `amnesiac bench [--full] [--threads N]
/// [--partitioner contiguous|round-robin|bfs] [--sources K]
/// [--churn kind:rate_pm:seed] [--out <path>]` — the flooding throughput
/// benchmark (frontier engine vs scan baseline vs the sharded multicore
/// engine vs the dynamic-graph engine vs the 64-lane bit-parallel
/// engine). The default is the smoke grid;
/// `--full` runs the ~1e4..1e6-edge grid that produces the repository's
/// `BENCH_flooding.json`. `--threads` (default 4) and `--partitioner`
/// (default bfs) configure the sharded engine's concurrency axis;
/// `--sources` (default 1) sets the size of every measured flood's source
/// set; `--churn` (default none) sets the churn spec the dynamic engine
/// row floods under.
///
/// # Errors
///
/// Returns I/O errors from `--out`, bad `--sources`/`--churn` values, or
/// an error if the engines disagree.
pub fn cmd_bench(args: &Args) -> Result<String, CommandError> {
    let smoke = !args.flag("full");
    let threads: usize = args.parsed_or("threads", 4)?;
    let strategy: PartitionStrategy = args.parsed_or("partitioner", PartitionStrategy::Bfs)?;
    let sources_per_flood: usize = args.parsed_or("sources", 1)?;
    if sources_per_flood == 0 {
        return Err("--sources must be at least 1".into());
    }
    let churn: ChurnSpec = args.parsed_or("churn", ChurnSpec::NONE)?;
    let report = af_analysis::bench::run_with(smoke, threads, strategy, sources_per_flood, churn);
    if let Some(path) = args.option("out") {
        std::fs::write(path, format!("{}\n", report.to_json()))?;
    }
    if !report.all_engines_agree {
        return Err("benchmark engines disagree — this is a bug".into());
    }
    Ok(report.to_summary())
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "amnesiac — amnesiac flooding (PODC 2019) toolkit

usage: amnesiac <command> [args]

commands:
  flood <file>    run a flood          [--source N | --sources a,b,c]
                                       [--max-rounds N] [--trace] [--receipts]
                                       [--trace-out FILE.jsonl]
                                       [--engine frontier|fast|
                                        sharded[:k[:partitioner]]|
                                        dynamic[:churn]|bitlane]
                                       [--threads N]
                                       [--partitioner contiguous|round-robin|bfs]
                                       [--churn edge|nodes|mix:rate_pm:seed]
  predict <file>  oracle, no simulation [--source N | --sources a,b,c]
  detect <file>   bipartiteness by flooding [--source N]
  certify <file>  async (non-)termination  [--adversary throttle|serial|
                                            deliver-all|bounded:K]
                                           [--max-ticks N] [--source N]
  census <file>   exhaustive arbitrary-configuration census (m <= 12)
  tree <file>     extract the first-receipt (BFS) spanning tree [--source N]
  info <file>     structural summary (n, m, D, bipartite, girth, bound)
  gen <family>    generate a graph     [--format edgelist|g6|dot]
                  families: path N | cycle N | complete N | grid R C |
                  hypercube D | petersen | wheel K | barbell K | star N |
                  friendship K | gnp N P SEED | tree N SEED |
                  pa N K SEED | rgg N R SEED | ws N K BETA SEED
  bench           flooding throughput benchmark [--full] [--out <path>]
                  [--threads N] [--partitioner contiguous|round-robin|bfs]
                  [--sources K] [--churn kind:rate_pm:seed]
                  (frontier engine vs scan baseline vs sharded multicore
                  engine vs dynamic-graph engine vs 64-lane bit-parallel
                  engine; --full is the
                  BENCH_flooding.json grid, ~1e4..1e6 edges per family;
                  --sources floods from K-node source sets instead of
                  single sources; --churn sets the dynamic row's workload)

graph files: edge-list format ('n <count>' header + 'u v' lines) or graph6
"
    .to_string()
}

/// Dispatches a subcommand.
///
/// # Errors
///
/// Propagates the subcommand's error.
pub fn dispatch(command: &str, args: &Args) -> Result<String, CommandError> {
    match command {
        "flood" => cmd_flood(args),
        "predict" => cmd_predict(args),
        "detect" => cmd_detect(args),
        "certify" => cmd_certify(args),
        "census" => cmd_census(args),
        "tree" => cmd_tree(args),
        "info" => cmd_info(args),
        "gen" => cmd_gen(args),
        "bench" => cmd_bench(args),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage()).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("af-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn petersen_file() -> String {
        write_temp("petersen.g6", &io::to_graph6(&generators::petersen()))
    }

    fn triangle_edge_list_file() -> String {
        write_temp("triangle.txt", "n 3\n0 1\n1 2\n0 2\n")
    }

    #[test]
    fn parse_graph_detects_both_formats() {
        let g6 = io::to_graph6(&generators::cycle(5));
        assert_eq!(parse_graph(&g6).unwrap(), generators::cycle(5));
        let el = io::to_edge_list(&generators::cycle(5));
        assert_eq!(parse_graph(&el).unwrap(), generators::cycle(5));
        assert!(parse_graph("").is_err());
    }

    #[test]
    fn flood_command_reports_termination() {
        let path = triangle_edge_list_file();
        let args = Args::parse([path.as_str(), "--source", "1", "--trace", "--receipts"]).unwrap();
        let out = cmd_flood(&args).unwrap();
        assert!(out.contains("terminated after round 3"), "{out}");
        assert!(out.contains("messages: 6"), "{out}");
        assert!(out.contains("receive schedule"), "{out}");
    }

    #[test]
    fn flood_sharded_engine_matches_frontier() {
        let path = petersen_file();
        let base = cmd_flood(&Args::parse([path.as_str(), "--source", "0"]).unwrap()).unwrap();
        for strategy in ["contiguous", "round-robin", "bfs"] {
            let args = Args::parse([
                path.as_str(),
                "--source",
                "0",
                "--engine",
                "sharded",
                "--threads",
                "3",
                "--partitioner",
                strategy,
            ])
            .unwrap();
            let out = cmd_flood(&args).unwrap();
            assert!(out.contains("engine: sharded x3"), "{out}");
            assert!(out.contains(strategy), "{out}");
            // Identical termination and message counts, line for line
            // after the engine banner.
            for line in base.lines() {
                assert!(out.contains(line), "missing '{line}' in {out}");
            }
        }
        // --threads alone implies the sharded engine.
        let args = Args::parse([path.as_str(), "--threads", "2"]).unwrap();
        assert!(cmd_flood(&args).unwrap().contains("engine: sharded x2"));
        // --threads 0 is clamped, not displayed as a phantom shard count.
        let args = Args::parse([path.as_str(), "--threads", "0"]).unwrap();
        assert!(cmd_flood(&args).unwrap().contains("engine: sharded x1"));
        // Contradictory options are rejected, not silently ignored.
        let args = Args::parse([path.as_str(), "--engine", "frontier", "--threads", "4"]).unwrap();
        assert!(cmd_flood(&args).is_err());
        // Unknown engines are rejected.
        let args = Args::parse([path.as_str(), "--engine", "warp"]).unwrap();
        assert!(cmd_flood(&args).is_err());
        let args = Args::parse([path.as_str(), "--partitioner", "metis"]).unwrap();
        assert!(cmd_flood(&args).is_err());
    }

    #[test]
    fn flood_bitlane_engine_matches_frontier() {
        let path = petersen_file();
        let base = cmd_flood(&Args::parse([path.as_str(), "--source", "0"]).unwrap()).unwrap();
        let args = Args::parse([path.as_str(), "--source", "0", "--engine", "bitlane"]).unwrap();
        let out = cmd_flood(&args).unwrap();
        assert!(out.contains("engine: bitlane"), "{out}");
        // Identical record, line for line after the engine banner.
        for line in base.lines() {
            assert!(out.contains(line), "missing '{line}' in {out}");
        }
        // Multi-source and --receipts go through the same lane.
        let with_receipts = cmd_flood(
            &Args::parse([
                path.as_str(),
                "--sources",
                "0,7,9",
                "--engine",
                "bitlane",
                "--receipts",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(
            with_receipts.contains("receive schedule"),
            "{with_receipts}"
        );
        assert!(
            with_receipts.contains("informed nodes: 10 / 10"),
            "{with_receipts}"
        );
        // Contradictory combinations are rejected, not silently ignored.
        for bad in [
            vec![path.as_str(), "--engine", "bitlane", "--threads", "2"],
            vec![path.as_str(), "--engine", "bitlane", "--partitioner", "bfs"],
            vec![path.as_str(), "--engine", "bitlane", "--churn", "mix:50:1"],
        ] {
            let args = Args::parse(bad.clone()).unwrap();
            assert!(cmd_flood(&args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn flood_accepts_canonical_engine_specs() {
        // `--engine` takes the same canonical strings the bench JSON
        // records and the wire protocol accepts, so any recorded
        // `engine_spec` replays verbatim.
        let path = petersen_file();
        let base = cmd_flood(&Args::parse([path.as_str(), "--source", "0"]).unwrap()).unwrap();
        let args = Args::parse([
            path.as_str(),
            "--source",
            "0",
            "--engine",
            "sharded:3:round-robin",
        ])
        .unwrap();
        let out = cmd_flood(&args).unwrap();
        assert!(
            out.contains("engine: sharded x3 (round-robin partitioner)"),
            "{out}"
        );
        let args = Args::parse([path.as_str(), "--source", "0", "--engine", "fast"]).unwrap();
        let out = cmd_flood(&args).unwrap();
        assert!(
            out.contains("engine: fast (scan-all-arcs baseline)"),
            "{out}"
        );
        let args =
            Args::parse([path.as_str(), "--source", "0", "--engine", "dynamic:none"]).unwrap();
        let out = cmd_flood(&args).unwrap();
        assert!(out.contains("engine: dynamic (churn none)"), "{out}");
        // All of them reproduce the frontier record line for line after
        // the engine banner.
        for engine in ["sharded:3:round-robin", "fast", "dynamic:none"] {
            let out = cmd_flood(
                &Args::parse([path.as_str(), "--source", "0", "--engine", engine]).unwrap(),
            )
            .unwrap();
            for line in base.lines() {
                assert!(out.contains(line), "{engine}: missing '{line}' in {out}");
            }
        }
        // A parameterized sharded spec contradicts the legacy flags.
        let args = Args::parse([path.as_str(), "--engine", "sharded:3", "--threads", "2"]).unwrap();
        assert!(cmd_flood(&args).is_err());
        // Flags on a non-sharded spec are still rejected.
        let args = Args::parse([path.as_str(), "--engine", "fast", "--threads", "2"]).unwrap();
        assert!(cmd_flood(&args).is_err());
        // Malformed specs surface the parser's error.
        let args = Args::parse([path.as_str(), "--engine", "sharded:x"]).unwrap();
        assert!(cmd_flood(&args).is_err());
    }

    #[test]
    fn flood_and_predict_agree_on_source_sets() {
        let path = petersen_file();
        let flood_out =
            cmd_flood(&Args::parse([path.as_str(), "--sources", "0,7,9", "--receipts"]).unwrap())
                .unwrap();
        let predict_out =
            cmd_predict(&Args::parse([path.as_str(), "--sources", "0,7,9"]).unwrap()).unwrap();
        // Extract "terminated after round T" vs "predicted termination
        // round: T".
        let t_flood = flood_out
            .lines()
            .find_map(|l| l.strip_prefix("terminated after round "))
            .expect("terminates");
        let t_pred = predict_out
            .lines()
            .find_map(|l| l.strip_prefix("predicted termination round: "))
            .expect("prediction");
        assert_eq!(t_flood, t_pred, "{flood_out}\n{predict_out}");
        // All ten nodes hear a 3-source flood.
        assert!(flood_out.contains("informed nodes: 10 / 10"), "{flood_out}");
        // The sharded engine agrees on the same source set.
        let sharded = cmd_flood(
            &Args::parse([path.as_str(), "--sources", "0,7,9", "--threads", "3"]).unwrap(),
        )
        .unwrap();
        assert!(
            sharded.contains(&format!("terminated after round {t_flood}")),
            "{sharded}"
        );
    }

    #[test]
    fn flood_churn_runs_the_dynamic_engine() {
        let path = petersen_file();
        // Zero-churn via the dynamic engine must reproduce the static
        // flood line for line after the engine banner.
        let base = cmd_flood(&Args::parse([path.as_str(), "--source", "0"]).unwrap()).unwrap();
        let out =
            cmd_flood(&Args::parse([path.as_str(), "--source", "0", "--churn", "none"]).unwrap())
                .unwrap();
        assert!(out.contains("engine: dynamic (churn none)"), "{out}");
        for line in base.lines() {
            assert!(out.contains(line), "missing '{line}' in {out}");
        }
        // A nonzero spec is echoed and the run completes (terminated or
        // capped — both are valid findings on a dynamic graph).
        let out = cmd_flood(
            &Args::parse([path.as_str(), "--source", "0", "--churn", "mix:200:7"]).unwrap(),
        )
        .unwrap();
        assert!(out.contains("engine: dynamic (churn mix:200:7)"), "{out}");
        assert!(
            out.contains("terminated after round") || out.contains("round cap reached"),
            "{out}"
        );
        // Contradictory combinations and bad specs are rejected.
        for bad in [
            vec![path.as_str(), "--churn", "mix:50:1", "--threads", "2"],
            vec![path.as_str(), "--churn", "mix:50:1", "--engine", "frontier"],
            vec![path.as_str(), "--churn", "mix:50:1", "--partitioner", "bfs"],
            vec![path.as_str(), "--churn", "mix:50:1", "--trace"],
            vec![path.as_str(), "--churn", "warp:50:1"],
            vec![path.as_str(), "--churn", "mix:2000:1"],
        ] {
            let args = Args::parse(bad.clone()).unwrap();
            assert!(cmd_flood(&args).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn flood_rejects_bad_source() {
        let path = triangle_edge_list_file();
        let args = Args::parse([path.as_str(), "--source", "9"]).unwrap();
        assert!(cmd_flood(&args).is_err());
    }

    #[test]
    fn predict_matches_flood() {
        let path = petersen_file();
        let args = Args::parse([path.as_str(), "--source", "0"]).unwrap();
        let out = cmd_predict(&args).unwrap();
        assert!(out.contains("predicted termination round: 5"), "{out}");
        assert!(out.contains("predicted messages: 30"), "{out}");
        assert!(out.contains("paper bound: 5"), "{out}");
    }

    #[test]
    fn detect_commands() {
        let path = triangle_edge_list_file();
        let args = Args::parse([path.as_str()]).unwrap();
        let out = cmd_detect(&args).unwrap();
        assert!(out.contains("non-bipartite"), "{out}");

        let even = write_temp("c6.txt", &io::to_edge_list(&generators::cycle(6)));
        let args = Args::parse([even.as_str()]).unwrap();
        let out = cmd_detect(&args).unwrap();
        assert!(out.starts_with("bipartite"), "{out}");
    }

    #[test]
    fn certify_commands() {
        let path = triangle_edge_list_file();
        for (adv, expect) in [
            ("throttle", "NON-TERMINATING"),
            ("deliver-all", "terminates"),
            ("serial", "NON-TERMINATING"),
            ("bounded:2", "terminates"),
        ] {
            let args = Args::parse([path.as_str(), "--adversary", adv]).unwrap();
            let out = cmd_certify(&args).unwrap();
            assert!(out.contains(expect), "{adv}: {out}");
        }
        let args = Args::parse([path.as_str(), "--adversary", "nonsense"]).unwrap();
        assert!(cmd_certify(&args).is_err());
    }

    #[test]
    fn census_command() {
        let path = triangle_edge_list_file();
        let args = Args::parse([path.as_str()]).unwrap();
        let out = cmd_census(&args).unwrap();
        assert!(out.contains("configurations: 64"), "{out}");
        assert!(
            out.contains("node-initiated configurations all terminate: true"),
            "{out}"
        );
        // Too-large graphs are rejected.
        let big = write_temp("k6.g6", &io::to_graph6(&generators::complete(6)));
        let args = Args::parse([big.as_str()]).unwrap();
        assert!(cmd_census(&args).is_err());
    }

    #[test]
    fn tree_command() {
        let path = petersen_file();
        let args = Args::parse([path.as_str(), "--source", "0"]).unwrap();
        let out = cmd_tree(&args).unwrap();
        assert!(
            out.contains("spanning tree rooted at 0 (10 nodes)"),
            "{out}"
        );
        assert!(out.contains("is a BFS tree: true"), "{out}");
        assert!(out.contains("0: root"), "{out}");
    }

    #[test]
    fn info_command() {
        let path = petersen_file();
        let args = Args::parse([path.as_str()]).unwrap();
        let out = cmd_info(&args).unwrap();
        assert!(out.contains("nodes: 10"));
        assert!(out.contains("edges: 15"));
        assert!(out.contains("diameter: 2"));
        assert!(out.contains("radius: 2"));
        assert!(out.contains("bipartite: false"));
        assert!(out.contains("girth: 5"));
        assert!(out.contains("flooding bound: 5"));
    }

    #[test]
    fn info_on_disconnected_input_reports_instead_of_panicking() {
        // Regression: `info` used to compute radius with
        // `.expect("connected")` inside the diameter arm — adversarial
        // (disconnected) input must print, never panic.
        let path = write_temp("disconnected.txt", "n 4\n0 1\n2 3\n");
        let args = Args::parse([path.as_str()]).unwrap();
        let out = cmd_info(&args).unwrap();
        assert!(out.contains("connected: false"), "{out}");
        assert!(out.contains("diameter: infinite (disconnected)"), "{out}");
        assert!(out.contains("radius: infinite (disconnected)"), "{out}");
        assert!(!out.contains("flooding bound"), "{out}");
    }

    #[test]
    fn gen_command_formats() {
        let args = Args::parse(["cycle", "5"]).unwrap();
        let out = cmd_gen(&args).unwrap();
        assert!(out.starts_with("n 5"));
        let args = Args::parse(["cycle", "5", "--format", "g6"]).unwrap();
        let out = cmd_gen(&args).unwrap();
        assert_eq!(parse_graph(&out).unwrap(), generators::cycle(5));
        let args = Args::parse(["petersen", "--format", "dot"]).unwrap();
        assert!(cmd_gen(&args).unwrap().starts_with("graph petersen"));
        let args = Args::parse(["tbd"]).unwrap();
        assert!(cmd_gen(&args).is_err());
    }

    #[test]
    fn gen_new_families() {
        let args = Args::parse(["pa", "30", "2", "5"]).unwrap();
        let g = parse_graph(&cmd_gen(&args).unwrap()).unwrap();
        assert_eq!(g.node_count(), 30);
        let args = Args::parse(["rgg", "25", "0.3", "5"]).unwrap();
        let g = parse_graph(&cmd_gen(&args).unwrap()).unwrap();
        assert_eq!(g.node_count(), 25);
        let args = Args::parse(["ws", "20", "4", "0.1", "5"]).unwrap();
        let g = parse_graph(&cmd_gen(&args).unwrap()).unwrap();
        assert_eq!(g.node_count(), 20);
        let args = Args::parse(["ws", "20", "4"]).unwrap();
        assert!(cmd_gen(&args).is_err());
    }

    #[test]
    fn bench_smoke_writes_json_and_summarizes() {
        let dir = std::env::temp_dir().join("af-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let args = Args::parse([
            "--out",
            out.to_str().unwrap(),
            "--threads",
            "2",
            "--sources",
            "2",
        ])
        .unwrap();
        let text = cmd_bench(&args).unwrap();
        assert!(text.contains("engines agree: true"), "{text}");
        assert!(text.contains("|S| = 2"), "{text}");
        assert!(text.contains("shardedx2(bfs)"), "{text}");
        let written = std::fs::read_to_string(&out).unwrap();
        assert!(written.contains("\"flooding_throughput\""));
        assert!(written.contains("\"schema_version\": 6"));
        assert!(written.contains("\"engine_spec\": \"sharded:2:bfs\""));
        assert!(written.contains("\"sharded\""));
        assert!(written.contains("\"dynamic\""));
        assert!(written.contains("\"bitlane\""));
        assert!(written.contains("\"lanes\": 2"));
        assert!(written.contains("\"partitioner\": \"bfs\""));
        assert!(written.contains("\"sources\": 2"));
        assert!(written.contains("\"source_sets\""));
        assert!(written.contains("\"churn\": \"none\""));
        assert!(written.contains("\"floods_terminated\""));
        // A zero-size source set is rejected up front.
        let args = Args::parse(["--sources", "0"]).unwrap();
        assert!(cmd_bench(&args).is_err());
        // A malformed churn spec too.
        let args = Args::parse(["--churn", "warp:5:1"]).unwrap();
        assert!(cmd_bench(&args).is_err());
    }

    #[test]
    fn gen_roundtrips_through_flood() {
        // Generate -> parse -> flood: the full pipeline.
        let args = Args::parse(["gnp", "20", "0.2", "7"]).unwrap();
        let text = cmd_gen(&args).unwrap();
        let g = parse_graph(&text).unwrap();
        let run = af_core::flood(&g, 0.into());
        assert!(run.terminated());
    }

    #[test]
    fn dispatch_routes_and_rejects() {
        let args = Args::parse(Vec::<String>::new()).unwrap();
        assert!(dispatch("help", &args).unwrap().contains("amnesiac"));
        assert!(dispatch("bogus", &args).is_err());
    }
}
