//! # af-cli
//!
//! The `amnesiac` command-line tool: flood, predict, detect, certify,
//! census, inspect and generate graphs from the terminal — a thin shell
//! over the reproduction's library crates.
//!
//! ```text
//! amnesiac gen petersen --format g6 > petersen.g6
//! amnesiac info petersen.g6
//! amnesiac flood petersen.g6 --source 0 --trace
//! amnesiac certify petersen.g6 --adversary serial
//! ```
//!
//! The command implementations live in [`commands`] as pure
//! (args → text) functions so they are unit-tested without spawning
//! processes; `main` only does dispatch and exit codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{dispatch, usage, CommandError};
