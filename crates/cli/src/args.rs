//! A small, dependency-free argument parser: positional arguments plus
//! `--flag value` / `--flag` options.

use std::collections::BTreeMap;

/// Parsed command-line arguments: positionals in order, options by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Error produced by argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl core::fmt::Display for ArgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    /// `--name value` binds an option; a `--name` followed by another
    /// `--option` or end of input becomes a boolean flag (value `"true"`).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty option name (`--`).
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err(ArgError("empty option name '--'".into()));
                }
                let value = match iter.peek() {
                    // af-audit: allow(no-unwrap-in-lib): peek returned Some just above
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                args.options.insert(name.to_string(), value);
            } else {
                args.positionals.push(tok);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    #[must_use]
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// All positionals.
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// An option's raw value.
    #[must_use]
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Returns `true` if the boolean flag is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse as `T`.
    pub fn parsed_or<T: core::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{name}: {v}"))),
        }
    }

    /// A required parsed option.
    ///
    /// # Errors
    ///
    /// Returns an error if absent or unparsable.
    pub fn required<T: core::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self
            .option(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("invalid value for --{name}: {v}")))
    }

    /// A comma-separated list option (`--sources 0,3,5`).
    ///
    /// # Errors
    ///
    /// Returns an error if any element does not parse.
    pub fn list<T: core::str::FromStr>(&self, name: &str) -> Result<Option<Vec<T>>, ArgError> {
        match self.option(name) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("invalid element in --{name}: {part}")))
                })
                .collect::<Result<Vec<T>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positionals_and_options() {
        let a = Args::parse(["graph.g6", "--source", "3", "--trace"]).unwrap();
        assert_eq!(a.positional(0), Some("graph.g6"));
        assert_eq!(a.option("source"), Some("3"));
        assert!(a.flag("trace"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn boolean_flag_before_option() {
        let a = Args::parse(["--trace", "--source", "2"]).unwrap();
        assert!(a.flag("trace"));
        assert_eq!(a.option("source"), Some("2"));
    }

    #[test]
    fn parsed_or_and_required() {
        let a = Args::parse(["--k", "7"]).unwrap();
        assert_eq!(a.parsed_or("k", 0usize).unwrap(), 7);
        assert_eq!(a.parsed_or("absent", 5usize).unwrap(), 5);
        assert_eq!(a.required::<usize>("k").unwrap(), 7);
        assert!(a.required::<usize>("absent").is_err());
        let bad = Args::parse(["--k", "seven"]).unwrap();
        assert!(bad.parsed_or("k", 0usize).is_err());
    }

    #[test]
    fn comma_lists() {
        let a = Args::parse(["--sources", "0, 3,5"]).unwrap();
        assert_eq!(a.list::<usize>("sources").unwrap(), Some(vec![0, 3, 5]));
        assert_eq!(a.list::<usize>("absent").unwrap(), None);
        let bad = Args::parse(["--sources", "0,x"]).unwrap();
        assert!(bad.list::<usize>("sources").is_err());
    }

    #[test]
    fn empty_option_name_is_an_error() {
        assert!(Args::parse(["--"]).is_err());
    }
}
