//! Binary entry point for the `amnesiac` CLI; all logic lives in
//! [`af_cli::commands`].

use af_cli::{dispatch, usage, Args};

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{}", usage());
        std::process::exit(2);
    };
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match dispatch(&command, &args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
