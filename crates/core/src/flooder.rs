//! The sealed [`Flooder`] trait: one object-safe surface over the five
//! simulator engines (fast, frontier, sharded, dynamic, bitlane).
//!
//! Every engine grew the same informal contract — `reset(sources)` +
//! `run(max_rounds) -> Outcome` + the receipt/message accessors — and the
//! drivers in the `run` module used to re-dispatch over a `match` per call
//! site. `Flooder` makes the contract a type: [`crate::AmnesiacFlooding`]
//! and [`crate::FloodBatch`] hold a `Box<dyn Flooder>` built once by
//! [`crate::FloodEngine::flooder`], and engine-specific shapes (the 64
//! bit lanes of [`BitLaneFlooding`]) surface through the lane methods
//! instead of leaking enum variants into the drivers.
//!
//! The trait is **sealed**: downstream crates program against it (any
//! `Box<dyn Flooder>` runs anywhere a driver runs) but cannot implement it
//! — the engine equivalence theorems the test suites pin (static engines
//! produce bit-identical records) quantify over exactly these five types.

use crate::bitlane::{BitLaneFlooding, LANES};
use crate::dynamic::DynamicFlooding;
use crate::fast::FastFlooding;
use crate::frontier::FrontierFlooding;
use crate::obs::SharedProbe;
use crate::sharded::ShardedFlooding;
use af_engine::Outcome;
use af_graph::NodeId;

mod sealed {
    pub trait Sealed {}
    impl Sealed for crate::FastFlooding<'_> {}
    impl Sealed for crate::FrontierFlooding<'_> {}
    impl Sealed for crate::ShardedFlooding<'_> {}
    impl Sealed for crate::DynamicFlooding {}
    impl Sealed for crate::BitLaneFlooding<'_> {}
}

/// A resettable amnesiac-flooding simulator (sealed; see the module docs).
///
/// The `&mut dyn Iterator` source parameters keep the trait object-safe
/// *and* allocation-free: a warm [`crate::FloodBatch`] re-seeds floods
/// through this interface without collecting sources into a buffer — the
/// counting-allocator suite (`tests/batch_allocation.rs`) holds across the
/// trait boundary.
pub trait Flooder: sealed::Sealed + std::fmt::Debug {
    /// Restores the simulator to round 0 seeded from `sources`, reusing
    /// its allocations. Duplicates are collapsed; on multi-lane engines
    /// the flood occupies lane 0 alone.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>);

    /// Executes rounds until no arc carries the message or `max_rounds`
    /// is reached.
    fn run(&mut self, max_rounds: u32) -> Outcome;

    /// Enables or disables per-node receipt recording (engines default to
    /// enabled; batch drivers disable it for raw speed).
    fn set_record_receipts(&mut self, record: bool);

    /// Attaches (or with `None`, detaches) a round-level observer (see
    /// [`crate::obs::FloodProbe`]). Engines default to no probe, which
    /// costs one predicted branch per round; attach **before**
    /// [`Flooder::reset`] so the probe sees the flood-start record.
    fn set_probe(&mut self, probe: Option<SharedProbe>);

    /// Node count of the flooded graph. For [`DynamicFlooding`] this is
    /// the **final** count — join churn can grow the node space mid-flood.
    fn node_count(&self) -> usize;

    /// The full receive-round table, node id → rounds received, covering
    /// `0..self.node_count()`. Empty per-node lists unless receipts were
    /// recorded. On multi-lane engines this reads lane 0.
    fn receive_rounds(&self) -> Vec<Vec<u32>>;

    /// Messages delivered in each executed round (index 0 = round 1). On
    /// multi-lane engines: summed across lanes.
    fn messages_per_round(&self) -> &[u64];

    /// Total messages delivered over the run (summed across lanes).
    fn total_messages(&self) -> u64;

    /// How many independent floods one [`Flooder::run`] can carry —
    /// [`LANES`] (64) for the bit-parallel engine, 1 for the rest. Drivers
    /// chunk multi-flood workloads to this width and read per-flood results
    /// back through [`Flooder::lane_outcome`] / [`Flooder::lane_messages`].
    fn lane_capacity(&self) -> usize {
        1
    }

    /// Restores the simulator to round 0 carrying one flood per source
    /// set, one lane each.
    ///
    /// # Panics
    ///
    /// Panics if `sets.len() > self.lane_capacity()` or a source is out of
    /// range.
    fn reset_lanes(&mut self, sets: &[Vec<NodeId>]) {
        assert!(
            sets.len() <= self.lane_capacity(),
            "{} source sets exceed the engine's {} lane(s)",
            sets.len(),
            self.lane_capacity()
        );
        match sets {
            [] => self.reset(&mut core::iter::empty()),
            [set] => self.reset(&mut set.iter().copied()),
            _ => unreachable!("single-lane engines take at most one set"),
        }
    }

    /// Per-flood outcome of lane `lane` after a [`Flooder::reset_lanes`] +
    /// [`Flooder::run`] pair.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a live lane of the current run.
    fn lane_outcome(&self, lane: usize) -> Outcome;

    /// Messages delivered by lane `lane`'s flood alone.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is not a live lane of the current run.
    fn lane_messages(&self, lane: usize) -> u64;
}

/// Builds the full receive-round table from a per-node slice accessor —
/// the shared shape of every single-lane engine's `receive_rounds`.
fn table<'a>(n: usize, receipts: impl Fn(NodeId) -> &'a [u32]) -> Vec<Vec<u32>> {
    (0..n).map(|i| receipts(NodeId::new(i)).to_vec()).collect()
}

impl Flooder for FastFlooding<'_> {
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>) {
        FastFlooding::reset(self, sources);
    }
    fn run(&mut self, max_rounds: u32) -> Outcome {
        FastFlooding::run(self, max_rounds)
    }
    fn set_record_receipts(&mut self, record: bool) {
        FastFlooding::set_record_receipts(self, record);
    }
    fn set_probe(&mut self, probe: Option<SharedProbe>) {
        FastFlooding::set_probe(self, probe);
    }
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }
    fn receive_rounds(&self) -> Vec<Vec<u32>> {
        table(self.graph().node_count(), |v| self.receipts(v))
    }
    fn messages_per_round(&self) -> &[u64] {
        FastFlooding::messages_per_round(self)
    }
    fn total_messages(&self) -> u64 {
        FastFlooding::total_messages(self)
    }
    fn lane_outcome(&self, _lane: usize) -> Outcome {
        unreachable!("single-lane engine: use the outcome returned by run")
    }
    fn lane_messages(&self, _lane: usize) -> u64 {
        unreachable!("single-lane engine: use total_messages")
    }
}

impl Flooder for FrontierFlooding<'_> {
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>) {
        FrontierFlooding::reset(self, sources);
    }
    fn run(&mut self, max_rounds: u32) -> Outcome {
        FrontierFlooding::run(self, max_rounds)
    }
    fn set_record_receipts(&mut self, record: bool) {
        FrontierFlooding::set_record_receipts(self, record);
    }
    fn set_probe(&mut self, probe: Option<SharedProbe>) {
        FrontierFlooding::set_probe(self, probe);
    }
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }
    fn receive_rounds(&self) -> Vec<Vec<u32>> {
        table(self.graph().node_count(), |v| self.receipts(v))
    }
    fn messages_per_round(&self) -> &[u64] {
        FrontierFlooding::messages_per_round(self)
    }
    fn total_messages(&self) -> u64 {
        FrontierFlooding::total_messages(self)
    }
    fn lane_outcome(&self, _lane: usize) -> Outcome {
        unreachable!("single-lane engine: use the outcome returned by run")
    }
    fn lane_messages(&self, _lane: usize) -> u64 {
        unreachable!("single-lane engine: use total_messages")
    }
}

impl Flooder for ShardedFlooding<'_> {
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>) {
        ShardedFlooding::reset(self, sources);
    }
    fn run(&mut self, max_rounds: u32) -> Outcome {
        ShardedFlooding::run(self, max_rounds)
    }
    fn set_record_receipts(&mut self, record: bool) {
        ShardedFlooding::set_record_receipts(self, record);
    }
    fn set_probe(&mut self, probe: Option<SharedProbe>) {
        ShardedFlooding::set_probe(self, probe);
    }
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }
    fn receive_rounds(&self) -> Vec<Vec<u32>> {
        table(self.graph().node_count(), |v| self.receipts(v))
    }
    fn messages_per_round(&self) -> &[u64] {
        ShardedFlooding::messages_per_round(self)
    }
    fn total_messages(&self) -> u64 {
        ShardedFlooding::total_messages(self)
    }
    fn lane_outcome(&self, _lane: usize) -> Outcome {
        unreachable!("single-lane engine: use the outcome returned by run")
    }
    fn lane_messages(&self, _lane: usize) -> u64 {
        unreachable!("single-lane engine: use total_messages")
    }
}

impl Flooder for DynamicFlooding {
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>) {
        DynamicFlooding::reset(self, sources);
    }
    fn run(&mut self, max_rounds: u32) -> Outcome {
        DynamicFlooding::run(self, max_rounds)
    }
    fn set_record_receipts(&mut self, record: bool) {
        DynamicFlooding::set_record_receipts(self, record);
    }
    fn set_probe(&mut self, probe: Option<SharedProbe>) {
        DynamicFlooding::set_probe(self, probe);
    }
    fn node_count(&self) -> usize {
        DynamicFlooding::node_count(self)
    }
    fn receive_rounds(&self) -> Vec<Vec<u32>> {
        table(DynamicFlooding::node_count(self), |v| self.receipts(v))
    }
    fn messages_per_round(&self) -> &[u64] {
        DynamicFlooding::messages_per_round(self)
    }
    fn total_messages(&self) -> u64 {
        DynamicFlooding::total_messages(self)
    }
    fn lane_outcome(&self, _lane: usize) -> Outcome {
        unreachable!("single-lane engine: use the outcome returned by run")
    }
    fn lane_messages(&self, _lane: usize) -> u64 {
        unreachable!("single-lane engine: use total_messages")
    }
}

impl Flooder for BitLaneFlooding<'_> {
    fn reset(&mut self, sources: &mut dyn Iterator<Item = NodeId>) {
        BitLaneFlooding::reset(self, [sources]);
    }
    fn run(&mut self, max_rounds: u32) -> Outcome {
        BitLaneFlooding::run(self, max_rounds)
    }
    fn set_record_receipts(&mut self, record: bool) {
        BitLaneFlooding::set_record_receipts(self, record);
    }
    fn set_probe(&mut self, probe: Option<SharedProbe>) {
        BitLaneFlooding::set_probe(self, probe);
    }
    fn node_count(&self) -> usize {
        self.graph().node_count()
    }
    fn receive_rounds(&self) -> Vec<Vec<u32>> {
        (0..self.graph().node_count())
            .map(|i| self.lane_receipts(NodeId::new(i), 0))
            .collect()
    }
    fn messages_per_round(&self) -> &[u64] {
        BitLaneFlooding::messages_per_round(self)
    }
    fn total_messages(&self) -> u64 {
        BitLaneFlooding::total_messages(self)
    }
    fn lane_capacity(&self) -> usize {
        LANES
    }
    fn reset_lanes(&mut self, sets: &[Vec<NodeId>]) {
        BitLaneFlooding::reset(self, sets.iter().map(|set| set.iter().copied()));
    }
    fn lane_outcome(&self, lane: usize) -> Outcome {
        BitLaneFlooding::lane_outcome(self, lane)
    }
    fn lane_messages(&self, lane: usize) -> u64 {
        BitLaneFlooding::lane_messages(self, lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    /// One flood through the trait surface must reproduce the inherent
    /// API's record exactly, engine by engine.
    #[test]
    fn trait_surface_matches_inherent_api() {
        let g = generators::petersen();
        let sources = [NodeId::new(0), NodeId::new(6)];
        let mut want = FrontierFlooding::new(&g, sources);
        let want_outcome = want.run(100);

        let mut sims: Vec<Box<dyn Flooder + '_>> = vec![
            Box::new(FastFlooding::new(&g, [])),
            Box::new(FrontierFlooding::new(&g, [])),
            Box::new(ShardedFlooding::with_strategy(
                &g,
                af_graph::PartitionStrategy::Bfs,
                3,
                [],
            )),
            Box::new(DynamicFlooding::new(
                &g,
                [],
                af_graph::dynamic::ChurnSchedule::empty(),
            )),
            Box::new(BitLaneFlooding::new(&g, core::iter::empty::<[NodeId; 0]>())),
        ];
        for sim in &mut sims {
            sim.reset(&mut sources.iter().copied());
            let outcome = sim.run(100);
            assert_eq!(outcome, want_outcome, "{sim:?}");
            assert_eq!(sim.node_count(), g.node_count());
            assert_eq!(sim.total_messages(), want.total_messages());
            assert_eq!(sim.messages_per_round(), want.messages_per_round());
            let table = sim.receive_rounds();
            for v in g.nodes() {
                assert_eq!(table[v.index()], want.receipts(v), "node {v}");
            }
        }
    }

    #[test]
    fn lane_capacity_is_64_only_for_bitlane() {
        let g = generators::cycle(5);
        let bitlane: Box<dyn Flooder + '_> =
            Box::new(BitLaneFlooding::new(&g, core::iter::empty::<[NodeId; 0]>()));
        assert_eq!(bitlane.lane_capacity(), LANES);
        let frontier: Box<dyn Flooder + '_> = Box::new(FrontierFlooding::new(&g, []));
        assert_eq!(frontier.lane_capacity(), 1);
    }

    #[test]
    fn default_reset_lanes_seeds_a_single_flood() {
        let g = generators::cycle(6);
        let mut sim: Box<dyn Flooder + '_> = Box::new(FrontierFlooding::new(&g, []));
        sim.reset_lanes(&[vec![NodeId::new(0)]]);
        let outcome = sim.run(100);
        let mut want = FrontierFlooding::new(&g, [NodeId::new(0)]);
        assert_eq!(outcome, want.run(100));
    }

    #[test]
    #[should_panic(expected = "exceed the engine's")]
    fn default_reset_lanes_rejects_overflow() {
        let g = generators::cycle(6);
        let mut sim: Box<dyn Flooder + '_> = Box::new(FrontierFlooding::new(&g, []));
        sim.reset_lanes(&[vec![NodeId::new(0)], vec![NodeId::new(1)]]);
    }
}
