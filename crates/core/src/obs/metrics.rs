//! Lock-free metrics primitives: atomic counters, gauges, and log-bucketed
//! latency histograms.
//!
//! Built for the serving layer's hot path: every operation is a handful of
//! relaxed atomic instructions, nothing blocks, and — the property the
//! daemon's throughput depends on — **nothing allocates, ever**: each
//! primitive is a fixed block of atomics created once at registry
//! construction. Readers take point-in-time snapshots that may tear across
//! *different* primitives (a request can land between reading two
//! counters); per-primitive reads are individually consistent enough for
//! monitoring, which is all this is for.
//!
//! The histogram buckets by the bit length of the recorded value
//! (microseconds, in the daemon's usage): bucket `i` holds values in
//! `[2^(i-1), 2^i)`, bucket 0 holds zero. Quantiles come back as the upper
//! bound of the bucket the quantile falls in — within 2× of the true
//! value, which is the standard trade of log-bucketed histograms.
//!
//! # Examples
//!
//! ```
//! use af_core::obs::metrics::{Counter, Histogram};
//!
//! let requests = Counter::new();
//! let latency = Histogram::new();
//! requests.inc();
//! latency.record(130); // µs
//! assert_eq!(requests.get(), 1);
//! assert_eq!(latency.snapshot().count, 1);
//! assert!(latency.snapshot().p99 >= 130);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets: bucket 63 absorbs everything from `2^62`
/// up, so any `u64` value records without range checks beyond a `min`.
const BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` — for gauges maintained transactionally (charge on
    /// acquire, [`Gauge::sub`] on release) instead of recomputed.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero: a release racing a concurrent
    /// reset can at worst under-report, never wrap to `u64::MAX`.
    pub fn sub(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram over `u64` samples with power-of-two buckets.
///
/// `record` is three relaxed atomic adds plus one relaxed `fetch_max`;
/// concurrent recorders never contend on anything but cache lines.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A point-in-time read of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample recorded (exact, not bucketed).
    pub max: u64,
    /// Median, as the upper bound of its bucket (0 when empty).
    pub p50: u64,
    /// 90th percentile, bucket upper bound.
    pub p90: u64,
    /// 99th percentile, bucket upper bound.
    pub p99: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// The bucket a value lands in: its bit length (0 for 0).
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket(v).min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of bucket `i`: the largest value that buckets there
    /// (the last bucket absorbs every clamped over-range sample, so its
    /// bound is `u64::MAX`).
    fn bucket_upper(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Takes a point-in-time snapshot with approximate quantiles.
    ///
    /// The bucket array is copied to the stack first, so the quantiles are
    /// internally consistent (and `count` is derived from that copy —
    /// under concurrent recording it may trail the live counter by the
    /// in-flight samples).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        let mut total = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            counts[i] = bucket.load(Ordering::Relaxed);
            total += counts[i];
        }
        let mut snap = HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: 0,
            p90: 0,
            p99: 0,
        };
        if total == 0 {
            return snap;
        }
        // Rank of quantile q = ceil(q * count), 1-based; one cumulative
        // walk resolves all three.
        let wide = u128::from(total);
        let ranks = [
            total.div_ceil(2),
            ((wide * 9).div_ceil(10)) as u64,
            ((wide * 99).div_ceil(100)) as u64,
        ];
        let mut out = [0u64; 3];
        let mut cumulative = 0u64;
        let mut next = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            while next < ranks.len() && cumulative >= ranks[next] {
                out[next] = Self::bucket_upper(i);
                next += 1;
            }
            if next == ranks.len() {
                break;
            }
        }
        (snap.p50, snap.p90, snap.p99) = (out[0], out[1], out[2]);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.add(10);
        assert_eq!(g.get(), 13);
        g.sub(5);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(1023), 10);
        assert_eq!(Histogram::bucket(1024), 11);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn histogram_snapshot_quantiles_bound_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Log-bucketed quantiles overestimate by at most 2x.
        assert!(s.p50 >= 500 && s.p50 < 1024, "p50 = {}", s.p50);
        assert!(s.p90 >= 900 && s.p90 < 2048, "p90 = {}", s.p90);
        assert!(s.p99 >= 990 && s.p99 < 2048, "p99 = {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
    }

    #[test]
    fn histogram_empty_and_zero_samples() {
        let h = Histogram::new();
        assert_eq!(
            h.snapshot(),
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max), (1, 0, 0));
        assert_eq!(s.p99, 0);
    }

    #[test]
    fn histogram_giant_values_clamp_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 7 + i % 100);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 40_000);
    }
}
