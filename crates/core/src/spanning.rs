//! Spanning-tree extraction from flooding runs.
//!
//! The paper's introduction quotes Aspnes: flooding "gives you both a
//! broadcast mechanism and a way to build rooted spanning trees". The
//! classic construction sets each node's parent to the neighbour it first
//! received the message from; because amnesiac flooding delivers first
//! receipts in BFS order (per the double-cover correspondence, first
//! receipt of `u` happens at round `d(source, u)`), the extracted tree is
//! a *BFS tree* — shortest-path routes back to the source — even though
//! the protocol itself keeps no state. (Extracting the tree of course
//! requires each node to remember its parent; the point is that the
//! *flooding* needs no memory, the *application* pays only one pointer.)

use crate::fast::FastFlooding;
use af_graph::{algo, Graph, NodeId};

/// A rooted spanning tree of the flooded component: parent pointers toward
/// the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    depth: Vec<Option<u32>>,
}

impl SpanningTree {
    /// The root (the flood's source).
    #[must_use]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The parent of `v` (`None` for the root and for unreached nodes).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The depth of `v` below the root, or `None` if unreached.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn depth(&self, v: NodeId) -> Option<u32> {
        self.depth[v.index()]
    }

    /// Number of nodes in the tree (root included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.depth.iter().filter(|d| d.is_some()).count()
    }

    /// Returns `true` if only the root is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The root-ward path from `v`, ending at the root. `None` if `v` is
    /// unreached.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn path_to_root(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.depth[v.index()]?;
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        Some(path)
    }

    /// Validates that this is a BFS tree of `graph` rooted at the source:
    /// every tree edge is a graph edge and every depth equals the BFS
    /// distance.
    #[must_use]
    pub fn is_bfs_tree_of(&self, graph: &Graph) -> bool {
        let bfs = algo::bfs(graph, self.root);
        for v in graph.nodes() {
            if self.depth(v) != bfs.distance(v) {
                return false;
            }
            if let Some(p) = self.parent(v) {
                if !graph.contains_edge(v, p) {
                    return false;
                }
                if self.depth(p).map(|d| d + 1) != self.depth(v) {
                    return false;
                }
            }
        }
        true
    }
}

/// Runs an amnesiac flood from `source` and extracts the first-receipt
/// spanning tree.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use af_core::spanning::spanning_tree;
/// use af_graph::generators;
///
/// let g = generators::petersen();
/// let tree = spanning_tree(&g, 0.into());
/// assert_eq!(tree.len(), 10);
/// assert!(tree.is_bfs_tree_of(&g));
/// ```
#[must_use]
pub fn spanning_tree(graph: &Graph, source: NodeId) -> SpanningTree {
    let n = graph.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut depth: Vec<Option<u32>> = vec![None; n];
    depth[source.index()] = Some(0);

    let mut sim = FastFlooding::new(graph, [source]);
    sim.set_record_receipts(false);
    // Track first receipts by replaying rounds and looking at the arcs.
    loop {
        let arcs = sim.in_flight();
        if arcs.is_empty() {
            break;
        }
        let round = sim.round() + 1;
        for arc in arcs {
            let (tail, head) = graph.arc_endpoints(arc);
            if depth[head.index()].is_none() {
                depth[head.index()] = Some(round);
                parent[head.index()] = Some(tail);
            }
        }
        sim.step();
    }

    SpanningTree {
        root: source,
        parent,
        depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    #[test]
    fn tree_is_bfs_on_assorted_graphs() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::petersen(),
            generators::grid(4, 5),
            generators::complete(7),
            generators::barbell(4),
            generators::sparse_connected(40, 30, 5),
        ] {
            for v in g.nodes().step_by(3) {
                let tree = spanning_tree(&g, v);
                assert!(tree.is_bfs_tree_of(&g), "{g} from {v}");
                assert_eq!(tree.len(), g.node_count());
                assert_eq!(tree.root(), v);
            }
        }
    }

    #[test]
    fn paths_go_rootward_with_decreasing_depth() {
        let g = generators::grid(5, 5);
        let tree = spanning_tree(&g, 0.into());
        for v in g.nodes() {
            let path = tree.path_to_root(v).unwrap();
            assert_eq!(path.first(), Some(&v));
            assert_eq!(path.last(), Some(&NodeId::new(0)));
            assert_eq!(path.len() as u32, tree.depth(v).unwrap() + 1);
            for w in path.windows(2) {
                assert_eq!(tree.parent(w[0]), Some(w[1]));
            }
        }
    }

    #[test]
    fn root_has_no_parent_and_depth_zero() {
        let g = generators::cycle(6);
        let tree = spanning_tree(&g, 2.into());
        assert_eq!(tree.parent(2.into()), None);
        assert_eq!(tree.depth(2.into()), Some(0));
        assert!(!tree.is_empty());
    }

    #[test]
    fn disconnected_parts_stay_out_of_the_tree() {
        let g = af_graph::Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let tree = spanning_tree(&g, 0.into());
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.depth(3.into()), None);
        assert_eq!(tree.path_to_root(4.into()), None);
    }

    #[test]
    fn single_node_tree_is_empty() {
        let g = af_graph::Graph::empty(1);
        let tree = spanning_tree(&g, 0.into());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 1);
    }
}
