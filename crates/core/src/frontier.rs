//! The frontier-sparse amnesiac-flooding engine.
//!
//! The paper's bounds make the *intrinsic* work of one flood `O(m)`: each
//! arc activates at most twice (Lemma 2.1 / Theorem 3.3), so a terminating
//! flood delivers at most `2m` messages in total, however many rounds it
//! takes. A simulator that scans all `2m` arc slots every round (such as
//! [`crate::FastFlooding`]) instead pays `O(m · T)` — wasteful exactly on
//! the high-diameter graphs where `T` is large.
//!
//! [`FrontierFlooding`] keeps the same arc-bitset *state* but drives each
//! round from an explicit **frontier**: the list of arcs carrying the
//! message this round, and from it the list of nodes that just received.
//! One round costs `O(Σ_{v ∈ frontier} deg(v))`:
//!
//! 1. walk the active-arc list, collecting each arc's head once (the
//!    frontier of receivers);
//! 2. for each receiver `v`, emit every out-arc `v → w` whose reverse
//!    `w → v` is not in the current bitset (the amnesiac rule), using
//!    [`af_graph::Graph::incident_arcs`] so no per-neighbour binary search
//!    is needed;
//! 3. clear the old generation's bits *sparsely* (only the arcs that were
//!    set) and set the new generation's bits.
//!
//! Nothing is ever scanned proportionally to the graph size inside a round,
//! and [`FrontierFlooding::reset`] restores a finished simulator to a fresh
//! flood in time proportional to the state it actually touched — the basis
//! of the batched multi-source runner [`crate::FloodBatch`], which floods
//! from many sources of one graph without reallocating.

use crate::bitset::ArcSet;
use crate::obs::{FloodEnd, FloodStart, RoundNote, RoundRecord, SharedProbe};
use af_engine::Outcome;
use af_graph::{ArcId, Graph, NodeId};

/// Frontier-driven amnesiac-flooding simulator.
///
/// Semantically identical to [`crate::FastFlooding`] (the test suites
/// cross-check the two, plus [`af_engine::SyncEngine`] and the
/// [`crate::theory`] oracle, round for round) but does `O(active arcs)`
/// work per round instead of scanning the whole arc bitset.
///
/// # Examples
///
/// ```
/// use af_core::FrontierFlooding;
/// use af_graph::{generators, NodeId};
///
/// let g = generators::cycle(3); // Figure 2
/// let mut sim = FrontierFlooding::new(&g, [NodeId::new(1)]);
/// let outcome = sim.run(100);
/// assert_eq!(outcome.termination_round(), Some(3));
/// assert_eq!(sim.total_messages(), 6); // = 2m on a non-bipartite graph
///
/// // Reuse the allocations for a flood from another source.
/// sim.reset([NodeId::new(0)]);
/// assert_eq!(sim.run(100).termination_round(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct FrontierFlooding<'g> {
    graph: &'g Graph,
    /// Membership bitset of the arcs carrying the message this round.
    active: ArcSet,
    /// The same arcs as an explicit list (no duplicates).
    active_list: Vec<ArcId>,
    /// Scratch list for the next generation of arcs.
    next_list: Vec<ArcId>,
    /// Per-node scratch flag: did `v` receive this round / is it a seen
    /// source during seeding? Always all-false between rounds.
    received: Vec<bool>,
    /// The frontier: nodes that received in the round being executed.
    receivers: Vec<NodeId>,
    round: u32,
    total_messages: u64,
    messages_per_round: Vec<u64>,
    record_receipts: bool,
    receipts: Vec<Vec<u32>>,
    /// Nodes with non-empty `receipts`, so [`FrontierFlooding::reset`] can
    /// clear them without an `O(n)` sweep.
    informed: Vec<NodeId>,
    /// Round-level observer (shared by clones); `None` costs one predicted
    /// branch per round and nothing else.
    probe: Option<SharedProbe>,
}

impl<'g> FrontierFlooding<'g> {
    /// Creates a simulator with the given initiator set; the initiators'
    /// sends are the round-1 traffic. Duplicate initiators are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn new<I>(graph: &'g Graph, sources: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut sim = FrontierFlooding {
            graph,
            active: ArcSet::new(graph.arc_count()),
            active_list: Vec::new(),
            next_list: Vec::new(),
            received: vec![false; n],
            receivers: Vec::new(),
            round: 0,
            total_messages: 0,
            messages_per_round: Vec::new(),
            record_receipts: true,
            receipts: vec![Vec::new(); n],
            informed: Vec::new(),
            probe: None,
        };
        sim.seed_sources(sources);
        sim
    }

    /// Creates a simulator from an **arbitrary arc configuration**: the
    /// given arcs carry the message in round 1 (see [`crate::arbitrary`]).
    /// Duplicate arcs are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an arc index is out of range for the graph.
    pub fn from_arcs<I>(graph: &'g Graph, arcs: I) -> Self
    where
        I: IntoIterator<Item = ArcId>,
    {
        let mut sim = FrontierFlooding::new(graph, []);
        for a in arcs {
            assert!(a.index() < graph.arc_count(), "arc {a} out of range");
            if !sim.active.contains(a) {
                sim.active.insert(a);
                sim.active_list.push(a);
            }
        }
        sim
    }

    /// Restores the simulator to round 0 with a fresh initiator set,
    /// **reusing every allocation**. Costs time proportional to the state
    /// the previous flood touched, not to the graph.
    ///
    /// # Panics
    ///
    /// Panics if an initiator is out of range.
    pub fn reset<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for &a in &self.active_list {
            self.active.remove(a);
        }
        self.active_list.clear();
        self.next_list.clear();
        self.receivers.clear();
        self.round = 0;
        self.total_messages = 0;
        self.messages_per_round.clear();
        for &v in &self.informed {
            self.receipts[v.index()].clear();
        }
        self.informed.clear();
        self.seed_sources(sources);
    }

    /// Inserts the round-1 arcs of `sources`, deduplicating via the
    /// (invariant: all-false) `received` scratch flags.
    fn seed_sources<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = self.graph.node_count();
        debug_assert!(self.receivers.is_empty());
        for v in sources {
            assert!(v.index() < n, "source {v} out of range");
            if !self.received[v.index()] {
                self.received[v.index()] = true;
                self.receivers.push(v);
            }
        }
        for i in 0..self.receivers.len() {
            let v = self.receivers[i];
            self.received[v.index()] = false;
            for (_, out) in self.graph.incident_arcs(v) {
                self.active.insert(out);
                self.active_list.push(out);
            }
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_started(&FloodStart {
                engine: "frontier",
                nodes: n,
                sources: &self.receivers,
            });
        }
        self.receivers.clear();
    }

    /// Enables or disables per-node receipt recording (enabled by default).
    /// Disable for raw benchmark speed; [`crate::FloodBatch`] does.
    pub fn set_record_receipts(&mut self, record: bool) {
        self.record_receipts = record;
    }

    /// Attaches (or with `None` detaches) a round-level observer; see
    /// [`crate::obs`]. The next [`FrontierFlooding::reset`] announces the
    /// flood to it.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// The graph being simulated.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Rounds executed so far (since construction or the last reset).
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Returns `true` if no arc carries the message.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.active_list.is_empty()
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages delivered in each executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// The arcs that will carry the message in the next round, in
    /// increasing arc order.
    #[must_use]
    pub fn in_flight(&self) -> Vec<ArcId> {
        let mut arcs = self.active_list.clone();
        arcs.sort_unstable();
        arcs
    }

    /// Rounds at which `v` received the message (empty if receipts are not
    /// recorded).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn receipts(&self, v: NodeId) -> &[u32] {
        &self.receipts[v.index()]
    }

    /// Number of nodes that have received the message at least once, when
    /// receipts are recorded (always 0 otherwise).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Executes one round; returns the round number, or `None` if already
    /// terminated.
    pub fn step(&mut self) -> Option<u32> {
        if self.active_list.is_empty() {
            return None;
        }
        self.round += 1;
        let round = self.round;
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_started(round);
        }
        let delivered = self.active_list.len() as u64;
        self.total_messages += delivered;
        self.messages_per_round.push(delivered);

        // The frontier: each active arc's head, once.
        self.receivers.clear();
        for i in 0..self.active_list.len() {
            let head = self.graph.arc_head(self.active_list[i]);
            if !self.received[head.index()] {
                self.received[head.index()] = true;
                self.receivers.push(head);
            }
        }

        // Local rule: v→w active next iff v received and w→v not active.
        // Distinct receivers emit distinct out-arcs, so `next_list` needs
        // no dedup.
        self.next_list.clear();
        for i in 0..self.receivers.len() {
            let v = self.receivers[i];
            if self.record_receipts {
                if self.receipts[v.index()].is_empty() {
                    self.informed.push(v);
                }
                self.receipts[v.index()].push(round);
            }
            for (_, out) in self.graph.incident_arcs(v) {
                if !self.active.contains(out.reversed()) {
                    self.next_list.push(out);
                }
            }
        }

        // Swap generations with sparse bitset updates: clear exactly the
        // old arcs, set exactly the new ones.
        for &a in &self.active_list {
            self.active.remove(a);
        }
        for &a in &self.next_list {
            self.active.insert(a);
        }
        core::mem::swap(&mut self.active_list, &mut self.next_list);
        for &v in &self.receivers {
            self.received[v.index()] = false;
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_finished(&RoundRecord {
                round,
                delivered,
                frontier: self.receivers.len(),
                sent: self.active_list.len() as u64,
                lost: 0,
                receivers: &self.receivers,
                note: RoundNote::None,
            });
        }
        Some(round)
    }

    /// Runs until termination or `max_rounds`.
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        let outcome = loop {
            if self.round >= max_rounds {
                break if self.active_list.is_empty() {
                    Outcome::Terminated {
                        last_active_round: self.round,
                    }
                } else {
                    Outcome::CapReached {
                        rounds_executed: self.round,
                    }
                };
            }
            if self.step().is_none() {
                break Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        };
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_finished(&FloodEnd {
                terminated: self.active_list.is_empty(),
                rounds: self.round,
                total_messages: self.total_messages,
            });
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast::FastFlooding;
    use crate::protocol::AmnesiacFloodingProtocol;
    use af_engine::SyncEngine;
    use af_graph::generators;

    /// Lock-step three-way agreement: frontier vs scan-based vs generic.
    fn cross_check(g: &Graph, sources: &[NodeId]) {
        let mut frontier = FrontierFlooding::new(g, sources.iter().copied());
        let mut fast = FastFlooding::new(g, sources.iter().copied());
        let mut engine = SyncEngine::new(g, AmnesiacFloodingProtocol, sources.iter().copied());
        loop {
            assert_eq!(
                frontier.in_flight(),
                fast.in_flight(),
                "round {}",
                frontier.round()
            );
            assert_eq!(
                frontier.in_flight().as_slice(),
                engine.in_flight(),
                "round {}",
                frontier.round()
            );
            let a = frontier.step();
            let b = fast.step();
            let c = engine.step();
            assert_eq!(a, b);
            assert_eq!(a, c);
            if a.is_none() {
                break;
            }
            assert!(frontier.round() < 1000, "runaway");
        }
        assert_eq!(frontier.total_messages(), fast.total_messages());
        assert_eq!(frontier.total_messages(), engine.total_messages());
        assert_eq!(frontier.messages_per_round(), fast.messages_per_round());
        for v in g.nodes() {
            assert_eq!(frontier.receipts(v), fast.receipts(v), "node {v}");
            assert_eq!(frontier.receipts(v), engine.receipts(v), "node {v}");
        }
    }

    #[test]
    fn matches_both_engines_on_named_topologies() {
        for (g, s) in [
            (generators::path(7), 0usize),
            (generators::path(7), 3),
            (generators::cycle(3), 0),
            (generators::cycle(6), 2),
            (generators::cycle(9), 4),
            (generators::complete(6), 1),
            (generators::petersen(), 0),
            (generators::wheel(5), 2),
            (generators::barbell(4), 0),
            (generators::grid(3, 4), 5),
            (generators::hypercube(4), 9),
            (generators::star(6), 0),
            (generators::star(6), 3),
        ] {
            cross_check(&g, &[NodeId::new(s)]);
        }
    }

    #[test]
    fn matches_both_engines_multi_source() {
        let g = generators::cycle(8);
        cross_check(&g, &[NodeId::new(0), NodeId::new(3)]);
        let g = generators::petersen();
        cross_check(&g, &[NodeId::new(0), NodeId::new(7), NodeId::new(9)]);
        let g = generators::path(4);
        cross_check(&g, &[NodeId::new(0), NodeId::new(3)]);
    }

    #[test]
    fn matches_fast_engine_on_random_families() {
        for seed in 0..12 {
            let g = generators::sparse_connected(40, (seed as usize) * 3, seed);
            let s = NodeId::new(seed as usize % g.node_count());
            cross_check(&g, &[s]);
        }
    }

    #[test]
    fn from_arcs_matches_fast_engine() {
        let g = generators::cycle(5);
        // A single orbiting arc and a two-arc configuration.
        for arcs in [vec![0usize], vec![1, 4], vec![0, 1, 2, 3]] {
            let arcs: Vec<ArcId> = arcs.into_iter().map(ArcId::from_index).collect();
            let mut frontier = FrontierFlooding::from_arcs(&g, arcs.iter().copied());
            let mut fast = FastFlooding::from_arcs(&g, arcs.iter().copied());
            for _ in 0..64 {
                assert_eq!(frontier.in_flight(), fast.in_flight());
                let a = frontier.step();
                let b = fast.step();
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(frontier.total_messages(), fast.total_messages());
        }
    }

    #[test]
    fn reset_reuses_allocations_correctly() {
        let g = generators::petersen();
        let mut sim = FrontierFlooding::new(&g, [NodeId::new(0)]);
        assert_eq!(sim.run(100).termination_round(), Some(5));
        let first_messages = sim.total_messages();
        assert_eq!(sim.informed_count(), 10);

        // Reset to a different source: identical to a fresh simulator.
        sim.reset([NodeId::new(7)]);
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.total_messages(), 0);
        assert!(sim.messages_per_round().is_empty());
        let outcome = sim.run(100);
        let mut fresh = FrontierFlooding::new(&g, [NodeId::new(7)]);
        assert_eq!(outcome, fresh.run(100));
        assert_eq!(sim.total_messages(), fresh.total_messages());
        assert_eq!(sim.total_messages(), first_messages); // vertex-transitive
        for v in g.nodes() {
            assert_eq!(sim.receipts(v), fresh.receipts(v), "node {v}");
        }

        // Reset mid-run (with messages still in flight) is also clean.
        sim.reset([NodeId::new(1)]);
        sim.step();
        sim.reset([NodeId::new(2)]);
        let mut fresh = FrontierFlooding::new(&g, [NodeId::new(2)]);
        assert_eq!(sim.run(100), fresh.run(100));
        assert_eq!(sim.total_messages(), fresh.total_messages());
    }

    #[test]
    fn message_complexity_is_m_on_bipartite_and_2m_otherwise() {
        for (g, bip) in [
            (generators::path(9), true),
            (generators::cycle(8), true),
            (generators::grid(4, 5), true),
            (generators::cycle(7), false),
            (generators::complete(5), false),
            (generators::petersen(), false),
        ] {
            let mut f = FrontierFlooding::new(&g, [NodeId::new(0)]);
            f.run(1000);
            let m = g.edge_count() as u64;
            let expect = if bip { m } else { 2 * m };
            assert_eq!(f.total_messages(), expect, "{g}");
        }
    }

    #[test]
    fn receipts_can_be_disabled() {
        let g = generators::cycle(6);
        let mut f = FrontierFlooding::new(&g, [NodeId::new(0)]);
        f.set_record_receipts(false);
        f.run(100);
        assert!(f.receipts(NodeId::new(1)).is_empty());
        assert_eq!(f.informed_count(), 0);
        assert!(f.total_messages() > 0);
    }

    #[test]
    fn cap_behaviour_and_empty_sources() {
        let g = generators::cycle(3);
        let mut f = FrontierFlooding::new(&g, [NodeId::new(0)]);
        assert_eq!(f.run(1), Outcome::CapReached { rounds_executed: 1 });
        assert_eq!(
            f.run(100),
            Outcome::Terminated {
                last_active_round: 3
            }
        );
        assert_eq!(f.step(), None);

        let mut empty = FrontierFlooding::new(&g, []);
        assert!(empty.is_terminated());
        assert_eq!(
            empty.run(10),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
    }

    #[test]
    fn duplicate_sources_are_collapsed() {
        let g = generators::cycle(6);
        let mut dup = FrontierFlooding::new(&g, [NodeId::new(2), NodeId::new(2)]);
        let mut single = FrontierFlooding::new(&g, [NodeId::new(2)]);
        assert_eq!(dup.in_flight(), single.in_flight());
        assert_eq!(dup.run(100), single.run(100));
        assert_eq!(dup.total_messages(), single.total_messages());
    }
}
