//! The dynamic-graph amnesiac-flooding engine: flooding while the
//! topology changes between rounds.
//!
//! [`DynamicFlooding`] is the frontier-sparse engine
//! ([`crate::FrontierFlooding`]) lifted onto an
//! [`af_graph::dynamic::DeltaGraph`] overlay: at the boundary before round
//! `r`, the [`ChurnSchedule`]'s delta for `r` (if any) is applied — edges
//! appear and disappear, nodes join and leave — and only then does the
//! round execute under the ordinary amnesiac local rule on the *new*
//! topology. The engine's sparse per-round state is exactly what makes the
//! boundary cheap: the in-flight arcs are an explicit list, so remapping
//! them through a topology edit costs `O(active · log deg)`, not `O(m)`.
//!
//! # Semantics at a boundary
//!
//! * An in-flight message on an edge that is **deleted** (or whose
//!   endpoint **leaves**) is *lost with the link*: it is dropped, counted
//!   in [`DynamicFlooding::messages_lost`], and never delivered.
//! * A **joining** node starts uninformed; it participates from its join
//!   round onward (it can receive and forward like any other node).
//! * A **leaving** node's id is retired, never reused (see
//!   [`af_graph::dynamic`]), so per-node receipt logs stay valid across
//!   arbitrary churn.
//! * Deltas are applied only while messages are in flight. Once no arc
//!   carries the message the flood has terminated — churn cannot revive
//!   it, because new messages only ever arise from receipt. A boundary
//!   delta that drops *every* in-flight arc therefore terminates the
//!   flood at the previous round.
//!
//! # The zero-churn anchor
//!
//! Under an **empty** schedule the engine executes byte-for-byte the
//! frontier engine's rounds on the never-rebuilt base snapshot, and the
//! test suites pin the stronger property: round-sets, receive rounds, and
//! per-round message counts are **bit-identical** to
//! [`crate::FrontierFlooding`] on the static graph. That anchor is what
//! makes nonzero-churn measurements interpretable — any divergence is the
//! churn, not the engine.
//!
//! # Examples
//!
//! ```
//! use af_core::DynamicFlooding;
//! use af_graph::dynamic::{ChurnSchedule, GraphDelta};
//! use af_graph::generators;
//!
//! // Static behaviour under the empty schedule: C6 floods for D = 3.
//! let g = generators::cycle(6);
//! let mut sim = DynamicFlooding::new(&g, [0.into()], ChurnSchedule::empty());
//! assert_eq!(sim.run(100).termination_round(), Some(3));
//! assert_eq!(sim.total_messages(), 6);
//!
//! // Cut both round-2 links mid-flood: the messages die with them.
//! let mut cut = ChurnSchedule::empty();
//! cut.insert(2, GraphDelta {
//!     delete_edges: vec![(1, 2), (4, 5)],
//!     ..GraphDelta::default()
//! });
//! let mut sim = DynamicFlooding::new(&g, [0.into()], cut);
//! assert_eq!(sim.run(100).termination_round(), Some(1));
//! assert_eq!(sim.messages_lost(), 2);
//! ```

use crate::bitset::ArcSet;
use crate::obs::{FloodEnd, FloodStart, RoundNote, RoundRecord, SharedProbe};
use af_engine::Outcome;
use af_graph::dynamic::{ChurnSchedule, ChurnSpec, ChurnStream, DeltaGraph, GraphDelta};
use af_graph::{ArcId, Graph, NodeId};

/// Where a flood's boundary deltas come from: a fixed (hand-built or
/// materialized) schedule, or a streaming generator that produces the
/// deterministic per-round deltas on demand — `O(current graph)` memory
/// however long the flood, which is what keeps full-scale benchmark
/// graphs churnable.
#[derive(Debug, Clone)]
enum ChurnSource {
    Fixed(ChurnSchedule),
    Streamed(ChurnStream),
}

impl ChurnSource {
    /// The delta to apply at the boundary before `round`, if any.
    /// (Streamed sources advance their internal state; the engine only
    /// ever asks in increasing round order.)
    fn delta_before(&mut self, round: u32) -> Option<GraphDelta> {
        match self {
            ChurnSource::Fixed(schedule) => schedule.delta_at(round).cloned(),
            ChurnSource::Streamed(stream) => stream.delta_before(round),
        }
    }
}

/// Frontier-driven amnesiac-flooding simulator over a churning topology.
///
/// Owns its graph state (a [`DeltaGraph`] overlay plus a pristine base
/// copy for [`DynamicFlooding::reset`]) because the topology genuinely
/// mutates mid-flood — unlike the borrowed-graph static engines. Under an
/// empty [`ChurnSchedule`] it is bit-identical to
/// [`crate::FrontierFlooding`]; under a nonzero schedule it measures what
/// the paper's guarantees *become* on a dynamic graph (termination is no
/// longer a theorem — use the round cap).
#[derive(Debug, Clone)]
pub struct DynamicFlooding {
    /// Pristine copy of the construction-time graph, for `reset`.
    base: Graph,
    churn: ChurnSource,
    dg: DeltaGraph,
    /// Whether any boundary delta has been applied since construction or
    /// the last reset — when false, `reset` skips the `O(m log m)`
    /// overlay rebuild (the zero-churn batch hot path).
    dirty: bool,
    /// Membership bitset of the arcs carrying the message this round
    /// (sized for the current snapshot; rebuilt at every boundary).
    active: ArcSet,
    active_list: Vec<ArcId>,
    next_list: Vec<ArcId>,
    received: Vec<bool>,
    receivers: Vec<NodeId>,
    /// Scratch for boundary remapping: in-flight arcs as endpoint pairs.
    pair_scratch: Vec<(NodeId, NodeId)>,
    round: u32,
    total_messages: u64,
    messages_lost: u64,
    messages_per_round: Vec<u64>,
    record_receipts: bool,
    receipts: Vec<Vec<u32>>,
    informed: Vec<NodeId>,
    /// Round-level observer (shared by clones); `None` costs one predicted
    /// branch per round and nothing else.
    probe: Option<SharedProbe>,
}

impl DynamicFlooding {
    /// Creates a simulator flooding `graph` from `sources` under
    /// `schedule`. Duplicate sources are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn new<I>(graph: &Graph, sources: I, schedule: ChurnSchedule) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        DynamicFlooding::with_source(graph, sources, ChurnSource::Fixed(schedule))
    }

    /// Creates a simulator whose boundary deltas are **streamed** from
    /// `churn` (deterministically identical to flooding under
    /// `ChurnSchedule::generate(graph, churn, horizon)`, but in
    /// `O(current graph)` memory however large the horizon). This is the
    /// constructor behind [`crate::FloodEngine::Dynamic`].
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range.
    pub fn with_spec<I>(graph: &Graph, sources: I, churn: ChurnSpec, horizon: u32) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let source = if churn.is_none() {
            // No shadow state needed for a silent stream.
            ChurnSource::Fixed(ChurnSchedule::empty())
        } else {
            ChurnSource::Streamed(ChurnStream::new(graph, churn, horizon))
        };
        DynamicFlooding::with_source(graph, sources, source)
    }

    fn with_source<I>(graph: &Graph, sources: I, churn: ChurnSource) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut sim = DynamicFlooding {
            base: graph.clone(),
            dg: DeltaGraph::new(graph),
            churn,
            dirty: false,
            active: ArcSet::new(graph.arc_count()),
            active_list: Vec::new(),
            next_list: Vec::new(),
            received: vec![false; n],
            receivers: Vec::new(),
            pair_scratch: Vec::new(),
            round: 0,
            total_messages: 0,
            messages_lost: 0,
            messages_per_round: Vec::new(),
            record_receipts: true,
            receipts: vec![Vec::new(); n],
            informed: Vec::new(),
            probe: None,
        };
        sim.seed_sources(sources);
        sim
    }

    /// Restores the simulator to round 0 on the **base** graph (undoing
    /// all churn) with a fresh source set, keeping the same churn
    /// schedule/spec (a streamed source restarts from its seed). When no
    /// delta was ever applied (the zero-churn case) this reuses every
    /// allocation like [`crate::FrontierFlooding::reset`]; otherwise it
    /// rebuilds the overlay from the pristine base.
    ///
    /// # Panics
    ///
    /// Panics if a source is out of range for the base graph.
    pub fn reset<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        for &v in &self.informed {
            self.receipts[v.index()].clear();
        }
        self.informed.clear();
        // A streamed source restarts from its seed regardless of whether
        // its deltas ever applied — its internal state advances with the
        // rounds it produced.
        if let ChurnSource::Streamed(stream) = &self.churn {
            self.churn = ChurnSource::Streamed(ChurnStream::new(
                &self.base,
                stream.spec(),
                stream.horizon(),
            ));
        }
        if self.dirty {
            let n = self.base.node_count();
            self.dg = DeltaGraph::new(&self.base);
            self.active = ArcSet::new(self.base.arc_count());
            self.active_list.clear();
            // Joins may have grown the per-node state; shrink to base.
            self.received.clear();
            self.received.resize(n, false);
            self.receipts.truncate(n);
            self.dirty = false;
        } else {
            // Nothing was ever edited: clear sparsely, keep allocations —
            // the zero-churn batch hot path.
            for &a in &self.active_list {
                self.active.remove(a);
            }
            self.active_list.clear();
        }
        self.next_list.clear();
        self.receivers.clear();
        self.pair_scratch.clear();
        self.round = 0;
        self.total_messages = 0;
        self.messages_lost = 0;
        self.messages_per_round.clear();
        self.seed_sources(sources);
    }

    /// Inserts the round-1 arcs of `sources` (on the current = base
    /// snapshot), deduplicating via the all-false `received` flags.
    fn seed_sources<I>(&mut self, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = self.dg.node_count();
        debug_assert!(self.receivers.is_empty());
        for v in sources {
            assert!(v.index() < n, "source {v} out of range");
            if !self.received[v.index()] {
                self.received[v.index()] = true;
                self.receivers.push(v);
            }
        }
        for i in 0..self.receivers.len() {
            let v = self.receivers[i];
            self.received[v.index()] = false;
            for (_, out) in self.dg.graph().incident_arcs(v) {
                self.active.insert(out);
                self.active_list.push(out);
            }
        }
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_started(&FloodStart {
                engine: "dynamic",
                nodes: n,
                sources: &self.receivers,
            });
        }
        self.receivers.clear();
    }

    /// Enables or disables per-node receipt recording (enabled by
    /// default); [`crate::FloodBatch`] disables it.
    pub fn set_record_receipts(&mut self, record: bool) {
        self.record_receipts = record;
    }

    /// Attaches (or with `None` detaches) a round-level observer; see
    /// [`crate::obs`]. The next [`DynamicFlooding::reset`] announces the
    /// flood to it; churn boundaries surface as
    /// [`RoundNote::Churn`] on the affected rounds.
    pub fn set_probe(&mut self, probe: Option<SharedProbe>) {
        self.probe = probe;
    }

    /// The **current** topology snapshot (changes at churn boundaries;
    /// equals the base graph before the first nonzero delta).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.dg.graph()
    }

    /// The pristine construction-time graph.
    #[must_use]
    pub fn base_graph(&self) -> &Graph {
        &self.base
    }

    /// The fixed churn schedule driving this flood, or `None` when the
    /// deltas are streamed from a [`ChurnSpec`] (see
    /// [`DynamicFlooding::with_spec`]).
    #[must_use]
    pub fn schedule(&self) -> Option<&ChurnSchedule> {
        match &self.churn {
            ChurnSource::Fixed(schedule) => Some(schedule),
            ChurnSource::Streamed(_) => None,
        }
    }

    /// The spec behind a streamed churn source, or `None` for a fixed
    /// schedule.
    #[must_use]
    pub fn churn_spec(&self) -> Option<ChurnSpec> {
        match &self.churn {
            ChurnSource::Fixed(_) => None,
            ChurnSource::Streamed(stream) => Some(stream.spec()),
        }
    }

    /// Current node count (grows with joins; never shrinks).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.dg.node_count()
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Returns `true` if no arc carries the message.
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        self.active_list.is_empty()
    }

    /// Total messages delivered so far.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// In-flight messages dropped because their link was deleted (or an
    /// endpoint left) at a churn boundary before delivery.
    #[must_use]
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// Messages delivered in each executed round (index 0 = round 1).
    #[must_use]
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages_per_round
    }

    /// The arcs carrying the message into the next round, in increasing
    /// arc order. Arc ids refer to the **current** snapshot.
    #[must_use]
    pub fn in_flight(&self) -> Vec<ArcId> {
        let mut arcs = self.active_list.clone();
        arcs.sort_unstable();
        arcs
    }

    /// Rounds at which `v` received the message (empty if receipts are
    /// not recorded).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the current node count.
    #[must_use]
    pub fn receipts(&self, v: NodeId) -> &[u32] {
        &self.receipts[v.index()]
    }

    /// Number of nodes that have received at least once (0 when receipts
    /// are disabled).
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed.len()
    }

    /// Applies the boundary delta scheduled for `round`, remapping the
    /// in-flight arcs onto the rebuilt snapshot and growing per-node state
    /// for joins. Messages whose edge (or endpoint) vanished are dropped
    /// and counted in `messages_lost`. Returns the probe annotation for
    /// the round: [`RoundNote::Churn`] when a delta was scheduled (even a
    /// fully-skipped one), [`RoundNote::None`] otherwise.
    fn apply_boundary(&mut self, round: u32) -> RoundNote {
        let Some(delta) = self.churn.delta_before(round) else {
            return RoundNote::None;
        };
        let edits = (delta.leave_nodes.len()
            + delta.delete_edges.len()
            + delta.insert_edges.len()
            + delta.join_nodes.len()) as u64;
        let lost_before = self.messages_lost;
        let g_old = self.dg.graph();
        self.pair_scratch.clear();
        for &a in &self.active_list {
            self.pair_scratch.push(g_old.arc_endpoints(a));
        }
        if self.dg.apply(&delta).is_noop() {
            // Nothing changed: the snapshot, arc ids, and in-flight state
            // are all still valid (and reset keeps its fast path).
            return RoundNote::Churn { edits, lost: 0 };
        }
        self.dirty = true;
        let g = self.dg.graph();
        let n = g.node_count();
        if self.received.len() < n {
            self.received.resize(n, false);
            self.receipts.resize(n, Vec::new());
        }
        self.active = ArcSet::new(g.arc_count());
        self.active_list.clear();
        for i in 0..self.pair_scratch.len() {
            let (tail, head) = self.pair_scratch[i];
            if self.dg.is_departed(tail) || self.dg.is_departed(head) {
                self.messages_lost += 1;
                continue;
            }
            match g.arc_between(tail, head) {
                Some(a) => {
                    self.active.insert(a);
                    self.active_list.push(a);
                }
                None => self.messages_lost += 1,
            }
        }
        RoundNote::Churn {
            edits,
            lost: self.messages_lost - lost_before,
        }
    }

    /// Executes one round (applying the boundary delta first); returns the
    /// round number, or `None` if the flood is (or just became)
    /// terminated.
    pub fn step(&mut self) -> Option<u32> {
        if self.active_list.is_empty() {
            return None;
        }
        let round = self.round + 1;
        let note = self.apply_boundary(round);
        if self.active_list.is_empty() {
            // Churn dropped every in-flight message: the flood ended at
            // the previous round; `round` never executes.
            return None;
        }
        self.round = round;
        if let Some(probe) = &self.probe {
            probe.borrow_mut().round_started(round);
        }
        let delivered = self.active_list.len() as u64;
        self.total_messages += delivered;
        self.messages_per_round.push(delivered);

        let g = self.dg.graph();

        // The frontier: each active arc's head, once.
        self.receivers.clear();
        for i in 0..self.active_list.len() {
            let head = g.arc_head(self.active_list[i]);
            if !self.received[head.index()] {
                self.received[head.index()] = true;
                self.receivers.push(head);
            }
        }

        // Local rule: v→w active next iff v received and w→v not active.
        self.next_list.clear();
        for i in 0..self.receivers.len() {
            let v = self.receivers[i];
            if self.record_receipts {
                if self.receipts[v.index()].is_empty() {
                    self.informed.push(v);
                }
                self.receipts[v.index()].push(round);
            }
            for (_, out) in g.incident_arcs(v) {
                if !self.active.contains(out.reversed()) {
                    self.next_list.push(out);
                }
            }
        }

        // Swap generations with sparse bitset updates.
        for &a in &self.active_list {
            self.active.remove(a);
        }
        for &a in &self.next_list {
            self.active.insert(a);
        }
        core::mem::swap(&mut self.active_list, &mut self.next_list);
        for &v in &self.receivers {
            self.received[v.index()] = false;
        }
        if let Some(probe) = &self.probe {
            let lost = match note {
                RoundNote::Churn { lost, .. } => lost,
                _ => 0,
            };
            probe.borrow_mut().round_finished(&RoundRecord {
                round,
                delivered,
                frontier: self.receivers.len(),
                sent: self.active_list.len() as u64,
                lost,
                receivers: &self.receivers,
                note,
            });
        }
        Some(round)
    }

    /// Runs until termination or `max_rounds`. Unlike the static engines,
    /// hitting the cap is a *finding*, not a bug: on a churning topology
    /// termination is no longer guaranteed.
    pub fn run(&mut self, max_rounds: u32) -> Outcome {
        let outcome = loop {
            if self.round >= max_rounds {
                break if self.active_list.is_empty() {
                    Outcome::Terminated {
                        last_active_round: self.round,
                    }
                } else {
                    Outcome::CapReached {
                        rounds_executed: self.round,
                    }
                };
            }
            if self.step().is_none() {
                break Outcome::Terminated {
                    last_active_round: self.round,
                };
            }
        };
        if let Some(probe) = &self.probe {
            probe.borrow_mut().flood_finished(&FloodEnd {
                terminated: self.active_list.is_empty(),
                rounds: self.round,
                total_messages: self.total_messages,
            });
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FrontierFlooding;
    use af_graph::dynamic::{ChurnSpec, GraphDelta};
    use af_graph::generators;

    /// Lock-step bit-identity against the frontier engine: in-flight arcs,
    /// step results, message counters, receipts.
    fn assert_identical_to_frontier(g: &Graph, sources: &[NodeId]) {
        let mut dynamic = DynamicFlooding::new(g, sources.iter().copied(), ChurnSchedule::empty());
        let mut frontier = FrontierFlooding::new(g, sources.iter().copied());
        loop {
            assert_eq!(
                dynamic.in_flight(),
                frontier.in_flight(),
                "round {}",
                dynamic.round()
            );
            let a = dynamic.step();
            let b = frontier.step();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
            assert!(dynamic.round() < 1000, "runaway");
        }
        assert_eq!(dynamic.total_messages(), frontier.total_messages());
        assert_eq!(dynamic.messages_per_round(), frontier.messages_per_round());
        assert_eq!(dynamic.messages_lost(), 0);
        assert_eq!(dynamic.informed_count(), frontier.informed_count());
        for v in g.nodes() {
            assert_eq!(dynamic.receipts(v), frontier.receipts(v), "node {v}");
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_frontier() {
        for (g, s) in [
            (generators::path(7), vec![0usize]),
            (generators::cycle(9), vec![4]),
            (generators::petersen(), vec![0, 7, 9]),
            (generators::grid(3, 4), vec![5]),
            (generators::complete(6), vec![1, 2]),
            (generators::star(6), vec![3]),
        ] {
            let sources: Vec<NodeId> = s.into_iter().map(NodeId::new).collect();
            assert_identical_to_frontier(&g, &sources);
        }
        for seed in 0..6 {
            let g = generators::sparse_connected(30, (seed as usize) * 2, seed);
            assert_identical_to_frontier(&g, &[NodeId::new(seed as usize % 30)]);
        }
    }

    #[test]
    fn deleting_the_only_link_kills_the_message() {
        // Path 0-1-2, flood from 0, cut 1-2 before round 2: node 2 never
        // hears, and the flood dies at round 1.
        let g = generators::path(3);
        let mut cut = ChurnSchedule::empty();
        cut.insert(
            2,
            GraphDelta {
                delete_edges: vec![(1, 2)],
                ..GraphDelta::default()
            },
        );
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], cut);
        assert_eq!(
            sim.run(100),
            Outcome::Terminated {
                last_active_round: 1
            }
        );
        assert_eq!(sim.messages_lost(), 1);
        assert_eq!(sim.total_messages(), 1);
        assert!(sim.receipts(NodeId::new(2)).is_empty());
    }

    #[test]
    fn inserted_edge_carries_the_flood_onward() {
        // Disconnected pair {0-1}, {2-3}: a static flood from 0 informs
        // only 1. Insert 1-2 before round 1 (i.e. before any message
        // moves): the flood crosses the new bridge and reaches 3.
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let mut bridge = ChurnSchedule::empty();
        bridge.insert(
            1,
            GraphDelta {
                insert_edges: vec![(1, 2)],
                ..GraphDelta::default()
            },
        );
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], bridge);
        let outcome = sim.run(100);
        assert!(outcome.is_terminated());
        assert!(!sim.receipts(NodeId::new(3)).is_empty(), "3 was reached");
        assert_eq!(sim.messages_lost(), 0);
    }

    #[test]
    fn joined_node_participates_from_its_round() {
        // C4 flood from 0; a new node joins attached to 1 and 2 before
        // round 2 and must be informed by the continuing flood. The join
        // also creates the triangle 1-2-4 *mid-flood*, which turns the
        // in-flight state into an arbitrary arc configuration of the new
        // graph — and this particular one cycles forever (the paper's
        // arbitrary-configuration non-termination, reached by churn): the
        // run caps out rather than terminating.
        let g = generators::cycle(4);
        let mut join = ChurnSchedule::empty();
        join.insert(
            2,
            GraphDelta {
                join_nodes: vec![vec![1, 2]],
                ..GraphDelta::default()
            },
        );
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], join);
        let outcome = sim.run(100);
        assert_eq!(
            outcome,
            Outcome::CapReached {
                rounds_executed: 100
            }
        );
        assert_eq!(sim.node_count(), 5);
        assert!(!sim.receipts(NodeId::new(4)).is_empty(), "joiner informed");
        assert_eq!(sim.receipts(NodeId::new(4)).first(), Some(&3));
    }

    #[test]
    fn leaving_node_drops_its_in_flight_messages() {
        // Star with hub 0: flood from a leaf; the hub leaves before round
        // 2, so the messages it just emitted toward the other leaves die.
        let g = generators::star(5);
        let mut leave = ChurnSchedule::empty();
        leave.insert(
            2,
            GraphDelta {
                leave_nodes: vec![0],
                ..GraphDelta::default()
            },
        );
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(1)], leave);
        assert_eq!(
            sim.run(100),
            Outcome::Terminated {
                last_active_round: 1
            }
        );
        assert!(sim.messages_lost() > 0);
        assert!(sim.receipts(NodeId::new(2)).is_empty());
    }

    #[test]
    fn delta_before_round_one_edits_the_seeded_arcs() {
        // The round-1 delta applies before any message moves: cutting
        // 0-1 after seeding from 0 drops that arc.
        let g = generators::path(2);
        let mut cut = ChurnSchedule::empty();
        cut.insert(
            1,
            GraphDelta {
                delete_edges: vec![(0, 1)],
                ..GraphDelta::default()
            },
        );
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], cut);
        assert_eq!(
            sim.run(100),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
        assert_eq!(sim.total_messages(), 0);
        assert_eq!(sim.messages_lost(), 1);
    }

    #[test]
    fn churn_can_prevent_termination_within_the_static_cap() {
        // A fresh edge appearing every round can keep re-exciting the
        // flood: under aggressive mixed churn at least one seed runs past
        // the static bound 2D + 1 on C8 (D = 4, bound 9).
        let g = generators::cycle(8);
        let mut exceeded = false;
        for seed in 0..8 {
            let spec = ChurnSpec {
                kind: af_graph::dynamic::ChurnKind::Mix,
                rate_pm: 300,
                seed,
            };
            let schedule = ChurnSchedule::generate(&g, spec, 64);
            let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], schedule);
            let outcome = sim.run(64);
            if outcome.rounds_executed() > 9 {
                exceeded = true;
                break;
            }
        }
        assert!(exceeded, "aggressive churn never outlived the static bound");
    }

    #[test]
    fn reset_restores_the_base_graph_and_state() {
        let g = generators::petersen();
        let spec = ChurnSpec {
            kind: af_graph::dynamic::ChurnKind::Mix,
            rate_pm: 200,
            seed: 5,
        };
        let schedule = ChurnSchedule::generate(&g, spec, 32);
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], schedule.clone());
        let first = sim.run(64);
        // Reset mid-state: same schedule, fresh base ⇒ same record.
        sim.reset([NodeId::new(0)]);
        assert_eq!(sim.round(), 0);
        assert_eq!(sim.total_messages(), 0);
        assert_eq!(sim.messages_lost(), 0);
        assert_eq!(sim.node_count(), g.node_count());
        assert_eq!(sim.graph(), &g);
        let second = sim.run(64);
        assert_eq!(first, second, "reset + same schedule is deterministic");

        // Reset to a different source still floods correctly (zero-churn
        // comparison via a fresh simulator).
        let mut zero = DynamicFlooding::new(&g, [NodeId::new(3)], ChurnSchedule::empty());
        let mut fresh = FrontierFlooding::new(&g, [NodeId::new(3)]);
        assert_eq!(zero.run(100), fresh.run(100));
    }

    #[test]
    fn streamed_spec_floods_identically_to_the_materialized_schedule() {
        for kind in [
            af_graph::dynamic::ChurnKind::Edge,
            af_graph::dynamic::ChurnKind::Nodes,
            af_graph::dynamic::ChurnKind::Mix,
        ] {
            let g = generators::sparse_connected(32, 20, 9);
            let spec = ChurnSpec {
                kind,
                rate_pm: 150,
                seed: 6,
            };
            let cap = 2 * g.node_count() as u32 + 2;
            let schedule = ChurnSchedule::generate(&g, spec, cap);
            let mut fixed = DynamicFlooding::new(&g, [NodeId::new(0)], schedule);
            let mut streamed = DynamicFlooding::with_spec(&g, [NodeId::new(0)], spec, cap);
            assert_eq!(streamed.churn_spec(), Some(spec));
            assert_eq!(streamed.schedule(), None);
            let a = fixed.run(cap);
            let b = streamed.run(cap);
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(fixed.total_messages(), streamed.total_messages());
            assert_eq!(fixed.messages_lost(), streamed.messages_lost());
            assert_eq!(fixed.messages_per_round(), streamed.messages_per_round());

            // Reset restarts the stream from its seed: the rerun matches.
            streamed.reset([NodeId::new(0)]);
            assert_eq!(streamed.run(cap), b, "{kind:?} replay after reset");
        }

        // The zero-rate spec is the empty fixed schedule (no shadow).
        let g = generators::cycle(6);
        let sim = DynamicFlooding::with_spec(&g, [NodeId::new(0)], ChurnSpec::NONE, 100);
        assert!(sim.schedule().is_some_and(ChurnSchedule::is_empty));
    }

    #[test]
    fn receipts_can_be_disabled() {
        let g = generators::cycle(6);
        let mut sim = DynamicFlooding::new(&g, [NodeId::new(0)], ChurnSchedule::empty());
        sim.set_record_receipts(false);
        sim.run(100);
        assert!(sim.receipts(NodeId::new(1)).is_empty());
        assert_eq!(sim.informed_count(), 0);
        assert!(sim.total_messages() > 0);
    }

    #[test]
    fn accessors_and_empty_sources() {
        let g = generators::cycle(5);
        let schedule = ChurnSchedule::empty();
        let sim = DynamicFlooding::new(&g, [], schedule);
        assert!(sim.is_terminated());
        assert_eq!(sim.base_graph(), &g);
        assert!(sim.schedule().is_some_and(ChurnSchedule::is_empty));
        assert_eq!(sim.churn_spec(), None);
        let mut sim = sim;
        assert_eq!(
            sim.run(10),
            Outcome::Terminated {
                last_active_round: 0
            }
        );
    }
}
