//! # af-core
//!
//! The primary contribution of *"On Termination of a Flooding Process"*
//! (Hussak & Trehan, PODC 2019), reproduced as a library: **Amnesiac
//! Flooding** — flooding without a "seen" flag, where each node forwards
//! the message to exactly the neighbours it did not just receive it from.
//!
//! What lives here:
//!
//! * [`AmnesiacFloodingProtocol`] / [`ClassicFloodingProtocol`] — the
//!   paper's protocol (Definition 1.1) and the flag-based baseline, as
//!   [`af_engine::Protocol`] implementations for both the synchronous and
//!   the adversarial asynchronous engine;
//! * [`FrontierFlooding`] — the frontier-sparse bitset simulator built on
//!   the local arc rule (`v→w` fires iff `v` received and `w→v` did not
//!   fire), doing `O(active arcs)` work per round — the hot-path engine;
//! * [`ShardedFlooding`] (module [`sharded`]) — the same rounds executed
//!   across the shards of an [`af_graph::Partition`] by one worker thread
//!   per shard, exchanging boundary activations through channels at a
//!   per-round barrier — the first intra-flood concurrency in the tree,
//!   bit-identical to the frontier engine for any shard count;
//! * [`FastFlooding`] — the scan-all-arcs bitset simulator, an independent
//!   implementation kept as the cross-check and benchmark baseline;
//! * [`BitLaneFlooding`] (module [`bitlane`]) — the bit-parallel engine:
//!   up to 64 **independent** floods packed into the bit lanes of one
//!   `u64` per arc, all advanced by a single CSR pass per round with
//!   word-wide `AND`/`OR`/`ANDNOT` and per-lane termination masks — every
//!   lane bit-identical to [`FrontierFlooding`] on its own source set;
//! * [`DynamicFlooding`] — the frontier engine lifted onto the
//!   [`af_graph::dynamic`] delta-edit overlay: churn batches (edge
//!   insert/delete, node join/leave) apply at round boundaries mid-flood,
//!   and the empty-schedule flood is bit-identical to [`FrontierFlooding`]
//!   — the zero-churn anchor behind experiment E17;
//! * [`AmnesiacFlooding`] / [`flood`] — high-level drivers producing a
//!   [`FloodingRun`] with the paper's round-sets `R_i`, per-node receive
//!   rounds, termination round and message counts;
//! * [`FloodBatch`] — the batched runner: floods a graph from many source
//!   sets while reusing one simulator's allocations;
//! * [`theory`] — the exact-time oracle via the bipartite double cover,
//!   the paper's single-source bounds (`e(v)`, `D`, `2D + 1`), and the
//!   multi-source exact times the paper poses as the next step
//!   (`T = e(S)` for monochromatic-bipartite source sets,
//!   `e(S) < T ≤ e(S) + D + 1` otherwise);
//! * [`roundsets`] — the Theorem 3.1 proof machinery (`R`, `Re`) checked
//!   on concrete runs;
//! * [`detect`] — the suggested application: bipartiteness testing by
//!   flooding;
//! * [`arbitrary`] — the extension experiment: flooding from arbitrary
//!   *arc* configurations, where (unlike the paper's node-initiated
//!   setting) synchronous non-termination is possible and exhaustively
//!   classified;
//! * [`spanning`] — first-receipt spanning trees (provably BFS trees);
//! * [`trace`] — textual renderings of the paper's figures;
//! * [`obs`] — the observability layer: per-round [`obs::FloodProbe`]
//!   callbacks wired through every engine (free when no probe is
//!   attached), NDJSON trace export, and the lock-free metrics primitives
//!   the serving daemon reports through.
//!
//! Every simulator floods from an arbitrary **source set** `S ⊆ V` — a
//! singleton reproduces the paper's main setting, and all engines and the
//! oracle agree for any `S` (the property suites pin set sizes
//! `1, 2, 3, ⌈√n⌉` across every engine, partitioner, and shard count).
//!
//! # Quickstart
//!
//! ```
//! use af_core::{flood, theory};
//! use af_graph::generators;
//!
//! // Figure 3: an even cycle C6 floods for exactly D = 3 rounds.
//! let g = generators::cycle(6);
//! let run = flood(&g, 0.into());
//! assert_eq!(run.termination_round(), Some(3));
//!
//! // The double-cover oracle predicts the same thing without simulating.
//! assert_eq!(theory::predict(&g, [0.into()]).termination_round(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbitrary;
pub mod bitlane;
pub mod detect;
pub mod obs;
pub mod roundsets;
pub mod sharded;
pub mod theory;
pub mod trace;

pub mod spanning;

#[cfg(feature = "serde")]
pub mod api;
pub mod flooder;

mod bitset;
mod dynamic;
mod fast;
mod frontier;
mod protocol;
mod run;

pub use bitlane::BitLaneFlooding;
pub use dynamic::DynamicFlooding;
pub use fast::FastFlooding;
pub use flooder::Flooder;
pub use frontier::FrontierFlooding;
pub use protocol::{AmnesiacFloodingProtocol, ClassicFloodingProtocol, KMemoryFlooding};
pub use run::{
    flood, AmnesiacFlooding, FloodBatch, FloodEngine, FloodStats, FloodingRun, ParseEngineError,
    DEFAULT_SHARD_THREADS,
};
pub use sharded::ShardedFlooding;
