//! Amnesiac flooding from **arbitrary arc configurations** — an extension
//! experiment beyond the paper.
//!
//! Theorem 3.1 proves termination when the flood starts from *node*
//! initiators (each source sends to all its neighbours). The synchronous
//! dynamics, however, are defined on any set of in-flight arcs, and the
//! theorem does **not** extend to that state space: a single message
//! travelling along a cycle orbits it forever (each node forwards to "the
//! other side" and the wave never meets an annihilating counter-wave).
//!
//! Because the synchronous dynamics are deterministic over the finite
//! space of arc sets, every configuration either terminates or enters a
//! limit cycle, and [`classify_configuration`] decides which by hashing
//! the trajectory. [`classify_all_configurations`] does so exhaustively
//! for every one of the `2^(2m)` configurations of a small graph —
//! experiment E12 quantifies how special the node-initiated
//! configurations of the paper really are.

use crate::fast::FastFlooding;
use af_graph::{ArcId, Graph, NodeId};
use std::collections::HashMap;

/// The fate of a synchronous flood from some initial configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncFate {
    /// The flood died out.
    Terminates {
        /// The last round in which any edge carried the message.
        last_active_round: u32,
    },
    /// The flood entered a limit cycle and never terminates.
    Cycles {
        /// Rounds before the recurring configuration is first reached.
        prefix: u32,
        /// Length of the limit cycle.
        period: u32,
    },
}

impl SyncFate {
    /// Returns `true` for the terminating fate.
    #[must_use]
    pub fn terminates(self) -> bool {
        matches!(self, SyncFate::Terminates { .. })
    }
}

/// Decides the fate of the synchronous flood started from `arcs`.
///
/// Deterministic dynamics over a finite state space always resolve; the
/// function needs no cap.
///
/// # Panics
///
/// Panics if an arc is out of range.
///
/// # Examples
///
/// ```
/// use af_core::arbitrary::{classify_configuration, SyncFate};
/// use af_graph::generators;
///
/// let g = generators::cycle(4);
/// // A single in-flight message orbits the cycle forever.
/// let lone = g.arc_between(0.into(), 1.into()).unwrap();
/// assert_eq!(
///     classify_configuration(&g, [lone]),
///     SyncFate::Cycles { prefix: 0, period: 4 }
/// );
/// ```
#[must_use]
pub fn classify_configuration<I>(graph: &Graph, arcs: I) -> SyncFate
where
    I: IntoIterator<Item = ArcId>,
{
    let mut sim = FastFlooding::new_silent_from(graph, arcs);
    let mut seen: HashMap<Vec<u64>, u32> = HashMap::new();
    seen.insert(sim.active_words().to_vec(), 0);
    loop {
        match sim.step() {
            None => {
                return SyncFate::Terminates {
                    last_active_round: sim.round(),
                };
            }
            Some(round) => {
                let key = sim.active_words().to_vec();
                if let Some(&first) = seen.get(&key) {
                    return SyncFate::Cycles {
                        prefix: first,
                        period: round - first,
                    };
                }
                seen.insert(key, round);
            }
        }
    }
}

impl<'g> FastFlooding<'g> {
    /// `from_arcs` with receipt recording disabled (classification does not
    /// need receipts and cycling runs would accumulate them unboundedly).
    fn new_silent_from<I>(graph: &'g Graph, arcs: I) -> Self
    where
        I: IntoIterator<Item = ArcId>,
    {
        let mut sim = FastFlooding::from_arcs(graph, arcs);
        sim.set_record_receipts(false);
        sim
    }
}

/// Exhaustive classification of **every** arc configuration of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurationCensus {
    configurations: u64,
    terminating: u64,
    cycling: u64,
    max_termination_round: u32,
    max_period: u32,
    node_initiated_all_terminate: bool,
    single_arc_cycling: u64,
}

impl ConfigurationCensus {
    /// Total configurations classified (`2^(2m)`).
    #[must_use]
    pub fn configurations(&self) -> u64 {
        self.configurations
    }

    /// Configurations whose flood terminates.
    #[must_use]
    pub fn terminating(&self) -> u64 {
        self.terminating
    }

    /// Configurations whose flood cycles forever.
    #[must_use]
    pub fn cycling(&self) -> u64 {
        self.cycling
    }

    /// Largest termination round among terminating configurations.
    #[must_use]
    pub fn max_termination_round(&self) -> u32 {
        self.max_termination_round
    }

    /// Longest limit-cycle period among cycling configurations.
    #[must_use]
    pub fn max_period(&self) -> u32 {
        self.max_period
    }

    /// Whether every node-initiated configuration (the paper's setting,
    /// any non-empty source set) terminated — Theorem 3.1 says it must.
    #[must_use]
    pub fn node_initiated_all_terminate(&self) -> bool {
        self.node_initiated_all_terminate
    }

    /// How many single-arc configurations cycle (on a cycle graph: all of
    /// them; on a tree: none).
    #[must_use]
    pub fn single_arc_cycling(&self) -> u64 {
        self.single_arc_cycling
    }
}

/// Classifies every one of the `2^(2m)` arc configurations of `graph`,
/// plus every node-initiated configuration, exhaustively.
///
/// # Panics
///
/// Panics if the graph has more than 12 edges (`2^24` configurations is
/// the sanity budget for exhaustive classification).
#[must_use]
pub fn classify_all_configurations(graph: &Graph) -> ConfigurationCensus {
    let m = graph.edge_count();
    assert!(
        m <= 12,
        "exhaustive classification is capped at 12 edges, got {m}"
    );
    let arc_count = graph.arc_count();
    let total = 1u64 << arc_count;

    let mut terminating = 0u64;
    let mut cycling = 0u64;
    let mut max_t = 0u32;
    let mut max_period = 0u32;
    let mut single_arc_cycling = 0u64;

    for mask in 0..total {
        let arcs = (0..arc_count)
            .filter(|&i| mask >> i & 1 == 1)
            .map(ArcId::from_index);
        match classify_configuration(graph, arcs) {
            SyncFate::Terminates { last_active_round } => {
                terminating += 1;
                max_t = max_t.max(last_active_round);
            }
            SyncFate::Cycles { period, .. } => {
                cycling += 1;
                max_period = max_period.max(period);
                if mask.count_ones() == 1 {
                    single_arc_cycling += 1;
                }
            }
        }
    }

    // Node-initiated configurations: every non-empty subset of nodes.
    let n = graph.node_count();
    let mut node_ok = true;
    if n <= 20 {
        for node_mask in 1u64..(1 << n) {
            let sources = (0..n).filter(|&i| node_mask >> i & 1 == 1).map(NodeId::new);
            let mut sim = FastFlooding::new(graph, sources);
            sim.set_record_receipts(false);
            // af-audit: allow(no-lossy-id-cast): n <= 20 in this branch
            if !sim.run(4 * n as u32 + 4).is_terminated() {
                node_ok = false;
            }
        }
    }

    ConfigurationCensus {
        configurations: total,
        terminating,
        cycling,
        max_termination_round: max_t,
        max_period,
        node_initiated_all_terminate: node_ok,
        single_arc_cycling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use af_graph::generators;

    #[test]
    fn single_arc_on_even_cycle_orbits() {
        let g = generators::cycle(4);
        let a = g.arc_between(0.into(), 1.into()).unwrap();
        assert_eq!(
            classify_configuration(&g, [a]),
            SyncFate::Cycles {
                prefix: 0,
                period: 4
            }
        );
    }

    #[test]
    fn single_arc_on_odd_cycle_orbits_with_period_n() {
        let g = generators::cycle(5);
        let a = g.arc_between(2.into(), 3.into()).unwrap();
        match classify_configuration(&g, [a]) {
            SyncFate::Cycles { period, .. } => assert_eq!(period, 5),
            other => panic!("expected a cycle, got {other:?}"),
        }
    }

    #[test]
    fn single_arc_on_a_path_dies_at_the_end() {
        let g = generators::path(5);
        let a = g.arc_between(1.into(), 2.into()).unwrap();
        assert_eq!(
            classify_configuration(&g, [a]),
            SyncFate::Terminates {
                last_active_round: 3
            }
        );
    }

    #[test]
    fn node_initiated_configurations_match_the_simulator() {
        // classify(configuration of v's sends) == flood(v).
        let g = generators::petersen();
        for v in g.nodes() {
            let arcs: Vec<_> = g
                .neighbors(v)
                .iter()
                .map(|&w| g.arc_between(v, w).unwrap())
                .collect();
            let fate = classify_configuration(&g, arcs);
            let run = crate::run::flood(&g, v);
            assert_eq!(
                fate,
                SyncFate::Terminates {
                    last_active_round: run.termination_round().unwrap()
                }
            );
        }
    }

    #[test]
    fn empty_configuration_terminates_at_round_zero() {
        let g = generators::cycle(6);
        assert_eq!(
            classify_configuration(&g, []),
            SyncFate::Terminates {
                last_active_round: 0
            }
        );
    }

    #[test]
    fn census_on_the_triangle() {
        let g = generators::cycle(3);
        let census = classify_all_configurations(&g);
        assert_eq!(census.configurations(), 64);
        assert_eq!(census.terminating() + census.cycling(), 64);
        assert!(census.cycling() > 0, "lone arcs orbit the triangle");
        assert_eq!(census.single_arc_cycling(), 6, "every lone arc orbits");
        assert!(census.node_initiated_all_terminate(), "Theorem 3.1");
    }

    #[test]
    fn census_on_a_tree_has_no_cycling_configs() {
        let g = generators::path(5);
        let census = classify_all_configurations(&g);
        assert_eq!(census.configurations(), 256);
        assert_eq!(census.cycling(), 0, "trees always flush the flood out");
        assert_eq!(census.terminating(), 256);
        assert!(census.node_initiated_all_terminate());
    }

    #[test]
    fn census_on_c4() {
        let g = generators::cycle(4);
        let census = classify_all_configurations(&g);
        assert_eq!(census.configurations(), 256);
        assert!(census.cycling() >= 8, "all 8 lone arcs orbit");
        assert_eq!(census.single_arc_cycling(), 8);
        assert!(census.node_initiated_all_terminate());
    }

    #[test]
    #[should_panic(expected = "capped at 12 edges")]
    fn census_rejects_large_graphs() {
        let _ = classify_all_configurations(&generators::complete(7));
    }
}
