//! The shared request/response schema: **one** serde surface driving
//! in-process execution, the CLI, the benchmark harness, and the
//! `af-serve` wire protocol.
//!
//! A [`FloodRequest`] names everything a flood needs beyond the graph
//! itself — source sets, engine (as its canonical string; see
//! [`FloodEngine`]'s `Display`/`FromStr`), round cap — and
//! [`FloodRequest::execute`] runs it through [`FloodBatch`] exactly the
//! way every other entry point does. Failures come back as a structured
//! [`ErrorResponse`] with a **stable** machine-readable code from
//! [`code`], never as a panic: the daemon forwards them to remote
//! clients verbatim, and the CLI prints them.
//!
//! Requests are validated *before* any simulator is built, so a malformed
//! request (unknown engine, out-of-range source) can be rejected over the
//! wire where the in-process builder API would panic.

use crate::run::{FloodBatch, FloodEngine, FloodStats};
use af_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable error codes carried by [`ErrorResponse::code`].
///
/// These strings are wire protocol: clients match on them, so they only
/// ever grow — renaming or removing one is a breaking protocol change
/// (PROTOCOL.md documents each).
pub mod code {
    /// A request line was not valid JSON, or not a known request shape.
    pub const BAD_REQUEST: &str = "bad_request";
    /// A request line exceeded the server's line-length cap.
    pub const OVERSIZED: &str = "oversized";
    /// The engine string did not parse (see [`crate::FloodEngine`]).
    pub const BAD_ENGINE: &str = "bad_engine";
    /// A source node id is out of range for the graph.
    pub const BAD_SOURCE: &str = "bad_source";
    /// A graph definition (edge list / spec) failed to build.
    pub const BAD_GRAPH: &str = "bad_graph";
    /// The named graph is not registered.
    pub const UNKNOWN_GRAPH: &str = "unknown_graph";
    /// A graph mutation (`GraphDelta`) could not be applied.
    pub const BAD_DELTA: &str = "bad_delta";
    /// The named graph *was* registered but has since been evicted from
    /// a byte-budgeted registry (re-`Load`/`Gen` restores it). Distinct
    /// from [`UNKNOWN_GRAPH`] so clients can tell "never existed" from
    /// "fell out of the LRU".
    pub const NOT_FOUND: &str = "not_found";
    /// The request would exceed the registry's byte budget even after
    /// evicting everything else (one graph or index bigger than the
    /// whole budget).
    pub const OVER_BUDGET: &str = "over_budget";
    /// The server is draining for shutdown and not accepting new work.
    pub const SHUTTING_DOWN: &str = "shutting_down";
}

/// A structured, wire-stable failure: machine-readable `code` (one of the
/// [`code`] constants) plus a human-readable `message`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// One of the [`code`] constants.
    pub code: String,
    /// Human-readable detail; **not** stable, do not match on it.
    pub message: String,
}

impl ErrorResponse {
    /// Builds an error with the given stable code and message.
    #[must_use]
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        ErrorResponse {
            code: code.to_owned(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ErrorResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ErrorResponse {}

/// One flood workload: which source sets to flood from, on which engine,
/// under which round cap. The graph is supplied separately — in process
/// as a `&Graph`, over the wire as a registered graph's name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodRequest {
    /// One flood per set; each set lists base-graph node ids.
    pub source_sets: Vec<Vec<usize>>,
    /// Canonical engine string (see [`FloodEngine`]); empty means the
    /// default engine.
    pub engine: String,
    /// Per-flood round cap; `0` means the default `2n + 2`.
    pub max_rounds: u32,
}

impl FloodRequest {
    /// A request flooding `source_sets` on `engine` with the default cap.
    #[must_use]
    pub fn new(source_sets: Vec<Vec<usize>>, engine: FloodEngine) -> Self {
        FloodRequest {
            source_sets,
            engine: engine.to_string(),
            max_rounds: 0,
        }
    }

    /// A single-set request on the default engine and cap.
    #[must_use]
    pub fn single(sources: Vec<usize>) -> Self {
        FloodRequest {
            source_sets: vec![sources],
            engine: String::new(),
            max_rounds: 0,
        }
    }

    /// Parses the request's engine string ([`code::BAD_ENGINE`] on
    /// failure; the empty string is the default engine).
    pub fn parse_engine(&self) -> Result<FloodEngine, ErrorResponse> {
        if self.engine.is_empty() {
            return Ok(FloodEngine::default());
        }
        self.engine
            .parse()
            .map_err(|e| ErrorResponse::new(code::BAD_ENGINE, format!("{e}")))
    }

    /// Checks every source id against `graph` ([`code::BAD_SOURCE`]) and
    /// the engine string ([`code::BAD_ENGINE`]) without running anything.
    pub fn validate(&self, graph: &Graph) -> Result<FloodEngine, ErrorResponse> {
        let engine = self.parse_engine()?;
        let n = graph.node_count();
        for (i, set) in self.source_sets.iter().enumerate() {
            if let Some(&v) = set.iter().find(|&&v| v >= n) {
                return Err(ErrorResponse::new(
                    code::BAD_SOURCE,
                    format!("source {v} in set {i} out of range for {n} nodes"),
                ));
            }
        }
        Ok(engine)
    }

    /// Validates and executes the request on `graph` through
    /// [`FloodBatch::run_many`] — the same path the benchmark harness and
    /// the daemon's `flood`/`batch` verbs take, so every entry point
    /// reports identical numbers for identical requests.
    pub fn execute(&self, graph: &Graph) -> Result<FloodResponse, ErrorResponse> {
        let engine = self.validate(graph)?;
        let mut batch = FloodBatch::with_engine(graph, engine);
        if self.max_rounds > 0 {
            batch = batch.with_max_rounds(self.max_rounds);
        }
        let sets: Vec<Vec<NodeId>> = self
            .source_sets
            .iter()
            .map(|set| set.iter().copied().map(NodeId::new).collect())
            .collect();
        let stats = batch.run_many(&sets);
        Ok(FloodResponse {
            engine: engine.to_string(),
            floods: stats.iter().map(FloodSummary::from_stats).collect(),
        })
    }
}

/// The scalar outcome of one flood of a [`FloodRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodSummary {
    /// Did the flood terminate within the round cap?
    pub terminated: bool,
    /// Termination round if terminated, else rounds executed (= the cap).
    pub rounds: u32,
    /// Total point-to-point messages delivered.
    pub messages: u64,
}

impl FloodSummary {
    /// Converts a driver-level [`FloodStats`] into the wire shape.
    #[must_use]
    pub fn from_stats(stats: &FloodStats) -> Self {
        FloodSummary {
            terminated: stats.terminated(),
            rounds: stats.outcome().rounds_executed(),
            messages: stats.total_messages(),
        }
    }
}

/// The response to a [`FloodRequest`]: the canonical engine string that
/// actually ran (defaults resolved), and one [`FloodSummary`] per source
/// set, in request order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodResponse {
    /// Canonical string of the engine that executed the floods.
    pub engine: String,
    /// One summary per requested source set, in order.
    pub floods: Vec<FloodSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{flood, AmnesiacFlooding};
    use af_graph::generators;

    #[test]
    fn execute_matches_direct_drivers() {
        let g = generators::petersen();
        let req = FloodRequest::new(vec![vec![0], vec![3, 7]], FloodEngine::Frontier);
        let resp = req.execute(&g).unwrap();
        assert_eq!(resp.engine, "frontier");
        assert_eq!(resp.floods.len(), 2);

        let single = flood(&g, 0.into());
        assert!(resp.floods[0].terminated);
        assert_eq!(Some(resp.floods[0].rounds), single.termination_round());
        assert_eq!(resp.floods[0].messages, single.total_messages());

        let multi = AmnesiacFlooding::multi_source(&g, [3.into(), 7.into()]).run();
        assert_eq!(Some(resp.floods[1].rounds), multi.termination_round());
        assert_eq!(resp.floods[1].messages, multi.total_messages());
    }

    #[test]
    fn all_engines_agree_through_the_request_path() {
        let g = generators::lollipop(4, 5);
        let sets = vec![vec![0], vec![2, 8]];
        let base = FloodRequest::new(sets.clone(), FloodEngine::Frontier)
            .execute(&g)
            .unwrap();
        for engine in ["fast", "sharded:3:bfs", "dynamic:none", "bitlane"] {
            let mut req = FloodRequest::new(sets.clone(), FloodEngine::Frontier);
            req.engine = engine.to_owned();
            let resp = req.execute(&g).unwrap();
            assert_eq!(resp.floods, base.floods, "{engine}");
            assert_eq!(resp.engine, engine);
        }
    }

    #[test]
    fn empty_engine_string_means_default() {
        let g = generators::cycle(5);
        let req = FloodRequest::single(vec![0]);
        assert_eq!(req.parse_engine(), Ok(FloodEngine::Frontier));
        let resp = req.execute(&g).unwrap();
        assert_eq!(resp.engine, "frontier");
    }

    #[test]
    fn max_rounds_caps_each_flood() {
        let g = generators::cycle(3);
        let mut req = FloodRequest::single(vec![0]);
        req.max_rounds = 2;
        let resp = req.execute(&g).unwrap();
        assert!(!resp.floods[0].terminated);
        assert_eq!(resp.floods[0].rounds, 2);
    }

    #[test]
    fn bad_engine_and_bad_source_are_stable_codes() {
        let g = generators::cycle(4);
        let mut req = FloodRequest::single(vec![0]);
        req.engine = "warp".to_owned();
        assert_eq!(req.execute(&g).unwrap_err().code, code::BAD_ENGINE);

        let req = FloodRequest::single(vec![99]);
        let err = req.execute(&g).unwrap_err();
        assert_eq!(err.code, code::BAD_SOURCE);
        assert!(err.message.contains("99"), "{err}");
    }

    #[test]
    fn request_and_response_roundtrip_as_json() {
        let req = FloodRequest {
            source_sets: vec![vec![0, 2], vec![]],
            engine: "sharded:2:contiguous".to_owned(),
            max_rounds: 7,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: FloodRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);

        let g = generators::cycle(6);
        let resp = req.execute(&g).unwrap();
        let json = serde_json::to_string(&resp).unwrap();
        let back: FloodResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);

        let err = ErrorResponse::new(code::UNKNOWN_GRAPH, "no graph named 'g'");
        let json = serde_json::to_string(&err).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, err);
    }
}
